"""Pluggable analysis backends behind one uniform interface.

A backend turns (compiled program, input points, request) into an
:class:`~repro.api.results.AnalysisResult`.  Four ship by default:

* ``herbgrind`` — the paper's shadow-real root-cause analysis,
* ``fpdebug``  — per-op total-error measurement (Benz et al. 2012),
* ``verrou``   — Monte-Carlo-arithmetic output stability (Févotte &
  Lathuilière 2016),
* ``bz``       — cancellation taint to discrete factors (Bao & Zhang
  2013).

All four run on identical compiled programs and input sets, which is
what makes Table-1-style comparisons meaningful.  Third parties add
backends with :func:`register_backend`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

from repro.api.requests import AnalysisRequest
from repro.api.results import (
    AnalysisResult,
    ErrorStats,
    RootCauseResult,
    SpotResult,
)
from repro.machine import isa

InputSets = Sequence[Sequence[float]]


class AnalysisBackend:
    """Interface every analysis backend implements."""

    #: Registry key; subclasses override.
    name = "abstract"

    def run(
        self,
        program: isa.Program,
        points: InputSets,
        request: AnalysisRequest,
    ) -> AnalysisResult:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[[], AnalysisBackend]] = {}


def register_backend(
    name: str, factory: Callable[[], AnalysisBackend]
) -> None:
    """Register (or replace) a backend under ``name``."""
    _REGISTRY[name] = factory


def get_backend(name: str) -> AnalysisBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise KeyError(f"unknown backend {name!r} (known: {known})")
    return factory()


def available_backends() -> List[str]:
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Herbgrind (the paper's analysis)
# ----------------------------------------------------------------------


class HerbgrindBackend(AnalysisBackend):
    """The shadow-real root-cause analysis of the source paper."""

    name = "herbgrind"

    def run(self, program, points, request):
        import dataclasses

        from repro.core.analysis import EngineFeatures, analyze_program
        from repro.core.report import root_cause_report
        from repro.resilience import faults as _faults
        from repro.resilience.errors import EngineFault

        if _faults.active() and request.config.engine == "compiled":
            # Chaos seam for whole-suite fault legs: every call into
            # this method is ladder-wrapped (repro.api.session), and
            # gating on the compiled engine guarantees the ladder's
            # reference rung converges.
            _faults.trip("backend.flaky", EngineFault)
        # The engine's default layer stack — including lockstep
        # batching when the compiled engine is selected (overridable
        # via REPRO_BATCHED=0).  Results are contractually identical
        # across every stack; the layers only change the cost.
        # ``request.features`` (internal — the degradation ladder's
        # sequential rung) overrides the default stack.
        features = request.features
        if request.profile:
            # Same engine layers, plus the per-stage attribution
            # counters (results are unchanged; only extra[] grows).
            features = dataclasses.replace(
                features if features is not None
                else EngineFeatures.for_engine(request.config.engine),
                profile=True,
            )
        analysis, __ = analyze_program(
            program,
            points,
            config=request.config,
            wrap_libraries=request.wrap_libraries,
            libm=request.libm,
            features=features,
        )
        causes = []
        for record in analysis.candidate_records():
            report = root_cause_report(record)
            causes.append(
                RootCauseResult(
                    site_id=record.site_id,
                    op=record.op,
                    loc=record.loc,
                    expression=(
                        None
                        if report.expression is None
                        else _expr_text(report.expression)
                    ),
                    variables=list(report.variables),
                    precondition_clauses=list(report.precondition_clauses),
                    problematic_clauses=list(report.problematic_clauses),
                    example_problematic=report.example_problematic,
                    compensations_detected=record.compensations_detected,
                    local_error=ErrorStats(
                        executions=record.executions,
                        erroneous=record.candidate_executions,
                        max_bits=record.max_local_error,
                        average_bits=record.average_local_error,
                    ),
                )
            )
        spots = []
        for spot in sorted(
            analysis.spot_records.values(), key=lambda s: s.site_id
        ):
            spots.append(
                SpotResult(
                    site_id=spot.site_id,
                    kind=spot.kind,
                    loc=spot.loc,
                    error=ErrorStats(
                        executions=spot.executions,
                        erroneous=spot.erroneous,
                        max_bits=spot.max_error,
                        average_bits=spot.average_error,
                    ),
                    root_cause_sites=sorted(
                        record.site_id for record in spot.influences
                    ),
                )
            )
        extra = {"runs": analysis.runs}
        # Process-local (stripped by to_dict, like "degradation"): which
        # precision tier shadow ops ran at and why escalations fired —
        # surfaced by --profile and aggregated into /v1/stats.
        extra["tier_residency"] = analysis.tier_residency()
        if request.profile:
            profile = analysis.stage_counters.to_dict()
            profile["kernel_cache_hits"] = analysis.kernel_cache_hits
            profile["kernel_cache_misses"] = analysis.kernel_cache_misses
            profile["tier_residency"] = analysis.tier_residency()
            extra["pipeline_profile"] = profile
        static = _static_report(program, request, analysis)
        if static is not None:
            # Process-local, like extra["degradation"]: stripped by
            # AnalysisResult.to_dict(), so serialized results stay
            # byte-identical with the static layer on or off.
            extra["static"] = static
        return AnalysisResult(
            benchmark=request.name,
            backend=self.name,
            seed=request.seed,
            num_points=request.num_points,
            max_output_error=analysis.max_output_error(),
            root_causes=causes,
            spots=spots,
            extra=extra,
            raw=analysis,
        )


def _expr_text(expression) -> str:
    from repro.fpcore.printer import format_expr

    return format_expr(expression)


def _static_report(program, request, analysis):
    """The static layer's report for one dynamic run, or ``None``.

    Enabled by default; ``REPRO_STATIC=0`` turns it off.  The static
    pass runs over the *same* compiled program and precondition box as
    the dynamic analysis and cross-checks its ranking against the
    dynamically flagged candidate sites.  It is strictly advisory: any
    failure inside it is swallowed so the dynamic result is never
    affected.
    """
    import os

    if os.environ.get("REPRO_STATIC", "1") == "0":
        return None
    try:
        from repro.staticanalysis import cross_check, static_report

        report = static_report(
            core=request.core, program=program, name=request.name
        )
        cross_check(report, analysis.candidate_records())
        return report
    except Exception:
        return None


# ----------------------------------------------------------------------
# FpDebug baseline
# ----------------------------------------------------------------------


class FpDebugBackend(AnalysisBackend):
    """Per-operation total-error measurement, FpDebug style."""

    name = "fpdebug"

    def run(self, program, points, request):
        from repro.comparisons.fpdebug import run_fpdebug

        analysis = run_fpdebug(
            program, points, precision=min(request.config.shadow_precision, 256)
        )
        threshold = request.config.local_error_threshold
        causes = []
        records = sorted(
            analysis.records.values(),
            key=lambda r: (-r.max_error, r.loc or ""),
        )
        for index, record in enumerate(records):
            if record.max_error <= threshold:
                continue
            causes.append(
                RootCauseResult(
                    site_id=index + 1,
                    op=record.op,
                    loc=record.loc,
                    expression=None,
                    local_error=ErrorStats(
                        executions=record.executions,
                        erroneous=record.executions,
                        max_bits=record.max_error,
                        average_bits=record.average_error,
                    ),
                )
            )
        return AnalysisResult(
            benchmark=request.name,
            backend=self.name,
            seed=request.seed,
            num_points=request.num_points,
            max_output_error=max(
                (r.max_error for r in analysis.records.values()), default=0.0
            ),
            root_causes=causes,
            extra={"flagged_operations": len(causes)},
            raw=analysis,
        )


# ----------------------------------------------------------------------
# Verrou baseline
# ----------------------------------------------------------------------

#: Stable decimal digits below which an output counts as unstable.
VERROU_DIGIT_THRESHOLD = 5.0

#: Random-rounding re-executions per input point.
VERROU_RUNS = 8


class VerrouBackend(AnalysisBackend):
    """Output stability under random rounding (no localization)."""

    name = "verrou"

    def run(self, program, points, request):
        from repro.comparisons.verrou import run_verrou

        spots: List[SpotResult] = []
        wobble_sums: List[float] = []
        worst = 0.0
        digit_table = []
        for point in points:
            report = run_verrou(
                program, point, runs=VERROU_RUNS, seed=request.seed
            )
            for index in range(len(report.means)):
                digits = report.significant_digits(index)
                wobble_bits = max(0.0, (17.0 - digits) * math.log2(10.0))
                worst = max(worst, wobble_bits)
                while len(spots) <= index:
                    spots.append(
                        SpotResult(
                            site_id=len(spots) + 1, kind="output", loc=None
                        )
                    )
                    wobble_sums.append(0.0)
                spots[index].error.executions += 1
                spots[index].error.max_bits = max(
                    spots[index].error.max_bits, wobble_bits
                )
                wobble_sums[index] += wobble_bits
                if digits < VERROU_DIGIT_THRESHOLD:
                    spots[index].error.erroneous += 1
                digit_table.append(round(digits, 3))
        for spot, total in zip(spots, wobble_sums):
            if spot.error.executions:
                spot.error.average_bits = total / spot.error.executions
        return AnalysisResult(
            benchmark=request.name,
            backend=self.name,
            seed=request.seed,
            num_points=request.num_points,
            max_output_error=worst,
            spots=spots,
            extra={"significant_digits": digit_table, "runs": VERROU_RUNS},
        )


# ----------------------------------------------------------------------
# Bao-Zhang baseline
# ----------------------------------------------------------------------


class BZBackend(AnalysisBackend):
    """Cancellation taint reaching discrete factors (cheap filter)."""

    name = "bz"

    def run(self, program, points, request):
        from repro.comparisons.bz import run_bz

        analysis = run_bz(program, points)
        spots = []
        reports = sorted(
            analysis.factor_reports.values(),
            key=lambda r: (-r.hits, r.kind, r.loc or ""),
        )
        for index, report in enumerate(reports):
            spots.append(
                SpotResult(
                    site_id=index + 1,
                    kind=report.kind,
                    loc=report.loc,
                    error=ErrorStats(
                        executions=report.hits, erroneous=report.hits
                    ),
                )
            )
        return AnalysisResult(
            benchmark=request.name,
            backend=self.name,
            seed=request.seed,
            num_points=request.num_points,
            spots=spots,
            extra={
                "cancellations": analysis.cancellations,
                "suspect_ops": len(analysis.suspect_ops),
            },
            raw=analysis,
        )


register_backend(HerbgrindBackend.name, HerbgrindBackend)
register_backend(FpDebugBackend.name, FpDebugBackend)
register_backend(VerrouBackend.name, VerrouBackend)
register_backend(BZBackend.name, BZBackend)
