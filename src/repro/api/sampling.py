"""Shared input sampling for every analysis entry point.

Historically ``cli.py`` and ``core/driver.py`` each hand-rolled the
log-uniform range sampler; this module is now the single home for it.
The sampler follows Herbie's convention: a range lying entirely on one
side of zero and spanning more than ``LOG_SPAN_RATIO`` binades is
sampled log-uniformly (linear sampling of [1e-12, 1] would essentially
never produce a value below 1e-3, and cancellation benchmarks live in
exactly those tiny regions).  Ranges that straddle zero are handled
explicitly: each side is weighted by its width, and a side spanning
many binades is log-sampled down to a magnitude floor derived from the
range itself, so values near zero remain reachable.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fpcore.ast import FPCore, Num, Op, Var
from repro.fpcore.evaluator import eval_double

#: A one-sided range whose high/low ratio exceeds this is log-sampled.
LOG_SPAN_RATIO = 1e3

#: Default sampling box for arguments without a :pre range.
DEFAULT_RANGE = (-1e9, 1e9)

#: Fraction of draws steered into static hotspot bands when a
#: ``hotspots`` map is supplied (the rest keep baseline coverage).
HOTSPOT_MIX = 0.5


def precondition_box(core: FPCore) -> Dict[str, Tuple[float, float]]:
    """Extract per-argument sampling ranges from the :pre conjunction.

    Non-range clauses are ignored here (they are rejection-tested by
    the sampler); arguments without a range default to ``DEFAULT_RANGE``.
    """
    box: Dict[str, Tuple[float, float]] = {}

    def visit(expr) -> None:
        if isinstance(expr, Op) and expr.op == "and":
            for arg in expr.args:
                visit(arg)
        elif (
            isinstance(expr, Op)
            and expr.op == "<="
            and len(expr.args) == 3
            and isinstance(expr.args[0], Num)
            and isinstance(expr.args[1], Var)
            and isinstance(expr.args[2], Num)
        ):
            low, variable, high = expr.args
            box[variable.name] = (float(low.value), float(high.value))

    if core.pre is not None:
        visit(core.pre)
    for argument in core.arguments:
        box.setdefault(argument, DEFAULT_RANGE)
    return box


def _log_uniform(rng: random.Random, low: float, high: float) -> float:
    """Log-uniform sample from a strictly positive range."""
    return math.exp(rng.uniform(math.log(low), math.log(high)))


def sample_range(
    rng: random.Random,
    low: float,
    high: float,
    zero_span_log: bool = False,
) -> float:
    """Sample one value from [low, high], log-uniformly when wide.

    * ``0 < low < high`` spanning > ``LOG_SPAN_RATIO``: log-uniform.
    * ``low < high < 0`` spanning > ``LOG_SPAN_RATIO``: mirrored
      log-uniform.
    * ``low <= 0 <= high``: linear by default (the historical behavior
      every existing experiment was calibrated against).  With
      ``zero_span_log=True`` a side is chosen with probability
      proportional to its width and its magnitude log-sampled down to
      a floor ``LOG_SPAN_RATIO`` binades below the side's extreme, so
      near-zero inputs actually occur.
    """
    if low > high:
        raise ValueError(f"empty sampling range [{low}, {high}]")
    if low > 0 and high / low > LOG_SPAN_RATIO:
        return _log_uniform(rng, low, high)
    if high < 0 and low / high > LOG_SPAN_RATIO:
        return -_log_uniform(rng, -high, -low)
    if zero_span_log and low < 0 < high:
        width = high - low
        pick_negative = rng.random() < (-low) / width
        magnitude = -low if pick_negative else high
        if magnitude > 0 and not math.isinf(magnitude):
            floor = magnitude / LOG_SPAN_RATIO
            value = _log_uniform(rng, floor, magnitude)
            return -value if pick_negative else value
    return rng.uniform(low, high)


def _sample_hotspot(
    rng: random.Random,
    low: float,
    high: float,
    bands: Sequence[Tuple[float, float, float]],
) -> float:
    """One draw honoring a variable's static hotspot bands.

    With probability :data:`HOTSPOT_MIX` a band is chosen by weight and
    sampled (clamped to the precondition range so guidance can never
    step outside the :pre box); otherwise the draw falls through to the
    baseline :func:`sample_range` behavior.
    """
    if bands and rng.random() < HOTSPOT_MIX:
        pick = rng.random()
        cumulative = 0.0
        for band_low, band_high, weight in bands:
            cumulative += weight
            if pick <= cumulative:
                clamped_low = max(band_low, low)
                clamped_high = min(band_high, high)
                if clamped_low <= clamped_high:
                    return sample_range(rng, clamped_low, clamped_high)
                break
    return sample_range(rng, low, high)


def sample_inputs(
    core: FPCore,
    count: int,
    seed: int = 0,
    max_rejections: int = 1000,
    hotspots: Optional[
        Dict[str, Sequence[Tuple[float, float, float]]]
    ] = None,
) -> List[List[float]]:
    """Sample ``count`` input tuples satisfying the :pre.

    Candidate points are drawn from the :pre's range box via
    :func:`sample_range` and rejection-tested against the full
    precondition; exceeding ``max_rejections`` consecutive failures
    raises ``ValueError`` (the precondition is presumed unsatisfiable
    by box sampling).

    ``hotspots`` optionally maps variable names to weighted bands
    ``(lo, hi, weight)`` from the static analysis
    (:func:`repro.staticanalysis.input_hotspots`): a
    :data:`HOTSPOT_MIX` fraction of each such variable's draws is
    steered into its bands.  When ``hotspots`` is ``None`` (the
    default) the code path — including the RNG draw sequence — is
    identical to the unguided sampler, so existing seeds reproduce
    bit-identical points.
    """
    rng = random.Random(seed)
    box = precondition_box(core)
    points: List[List[float]] = []
    rejections = 0
    while len(points) < count:
        if hotspots:
            point = [
                _sample_hotspot(
                    rng, *box[argument], hotspots[argument]
                )
                if argument in hotspots
                else sample_range(rng, *box[argument])
                for argument in core.arguments
            ]
        else:
            point = [
                sample_range(rng, *box[argument])
                for argument in core.arguments
            ]
        if core.pre is not None:
            env = dict(zip(core.arguments, point))
            try:
                acceptable = bool(eval_double(core.pre, env))
            except Exception:
                acceptable = False
            if not acceptable:
                rejections += 1
                if rejections > max_rejections:
                    raise ValueError(
                        f"{core.name}: cannot satisfy precondition"
                    )
                continue
        # The bound is on *consecutive* rejections: an accepted point
        # proves the precondition satisfiable, so the counter restarts.
        rejections = 0
        points.append(point)
    return points


def sample_box(
    variables: Sequence[str],
    low: float,
    high: float,
    count: int,
    seed: int = 0,
) -> List[List[float]]:
    """Sample ``count`` points from one [low, high] range per variable.

    This is the improver's blind-box sampler (``herbgrind-py improve
    --range``), previously re-implemented inline by the CLI.
    """
    rng = random.Random(seed)
    return [
        [sample_range(rng, low, high) for __ in variables]
        for __ in range(count)
    ]
