"""The typed request half of the :mod:`repro.api` façade.

An :class:`AnalysisRequest` pins down everything needed to reproduce
one analysis — benchmark source, backend, sampling parameters, and the
analysis configuration — and serializes to JSON so requests can be
queued, shipped to worker processes, and replayed.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.config import AnalysisConfig
from repro.fpcore.ast import FPCore
from repro.fpcore.parser import parse_fpcore
from repro.fpcore.printer import format_fpcore

#: Accepted benchmark spellings for convenience constructors.
CoreLike = Union[FPCore, str]


def coerce_core(core: CoreLike) -> FPCore:
    """Accept an :class:`FPCore` or FPCore source text."""
    if isinstance(core, FPCore):
        return core
    return parse_fpcore(core)


def config_to_dict(config: AnalysisConfig) -> Dict[str, Any]:
    """A plain-dict form of an :class:`AnalysisConfig`.

    Resource-guard fields — and the tri-state ``hw_tier`` override —
    are emitted only when set: default requests keep their historical
    digests (the same rule ``profile`` follows on the request itself).
    An unset ``hw_tier`` *must* stay out of the digest for a second
    reason: the hardware tier is result-invisible, so the ambient
    ``REPRO_HWTIER`` default may differ between client and worker
    without splitting the cache.
    """
    data = dataclasses.asdict(config)
    for optional_field in ("deadline_seconds", "op_budget", "hw_tier"):
        if data.get(optional_field) is None:
            data.pop(optional_field, None)
    return data


def config_from_dict(data: Dict[str, Any]) -> AnalysisConfig:
    return AnalysisConfig(**data)


@dataclass
class AnalysisRequest:
    """One benchmark analysis, fully specified.

    ``points`` overrides sampling when given; otherwise ``num_points``
    inputs are drawn from the benchmark's :pre box with ``seed``.
    """

    core: FPCore
    backend: str = "herbgrind"
    num_points: int = 16
    seed: int = 0
    points: Optional[List[List[float]]] = None
    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    wrap_libraries: bool = True
    #: Emit per-stage pipeline attribution counters into the result's
    #: ``extra["pipeline_profile"]`` (Herbgrind backend only).  The
    #: counters cost time on the hot path, so this is opt-in; it is
    #: serialized (and participates in the request digest) only when
    #: set, keeping default digests and result JSON unchanged.
    profile: bool = False
    #: Optional libm override (a dict of IR functions).  In-process
    #: only: it is not serialized and cannot cross a worker boundary.
    libm: Any = field(default=None, compare=False, repr=False)
    #: Optional :class:`~repro.core.analysis.EngineFeatures` override.
    #: Internal — the degradation ladder uses it to turn single layers
    #: off (batched → sequential) without touching the config.  Never
    #: serialized and excluded from the digest: the feature stack is
    #: contractually result-invisible, so two requests differing only
    #: here *should* share a digest.
    features: Any = field(default=None, compare=False, repr=False)

    @classmethod
    def build(
        cls,
        core: CoreLike,
        backend: str = "herbgrind",
        num_points: int = 16,
        seed: int = 0,
        points: Optional[Sequence[Sequence[float]]] = None,
        config: Optional[AnalysisConfig] = None,
        wrap_libraries: bool = True,
        profile: bool = False,
        libm: Any = None,
    ) -> "AnalysisRequest":
        return cls(
            core=coerce_core(core),
            backend=backend,
            num_points=num_points,
            seed=seed,
            points=[list(p) for p in points] if points is not None else None,
            config=config if config is not None else AnalysisConfig(),
            wrap_libraries=wrap_libraries,
            profile=profile,
            libm=libm,
        )

    @property
    def name(self) -> str:
        return self.core.name or "<anonymous>"

    def to_dict(self) -> Dict[str, Any]:
        if self.libm is not None:
            raise ValueError(
                "a libm override cannot cross a process boundary; "
                "run this request in-process (workers=1)"
            )
        data = {
            "core": format_fpcore(self.core),
            "backend": self.backend,
            "num_points": self.num_points,
            "seed": self.seed,
            "points": self.points,
            "config": config_to_dict(self.config),
            "wrap_libraries": self.wrap_libraries,
        }
        if self.profile:
            # Serialized only when set: default requests keep their
            # historical digests and worker payload shape.
            data["profile"] = True
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnalysisRequest":
        return cls(
            core=parse_fpcore(data["core"]),
            backend=data.get("backend", "herbgrind"),
            num_points=data.get("num_points", 16),
            seed=data.get("seed", 0),
            points=data.get("points"),
            config=config_from_dict(data.get("config", {})),
            wrap_libraries=data.get("wrap_libraries", True),
            profile=data.get("profile", False),
        )

    @classmethod
    def from_json(cls, text: str) -> "AnalysisRequest":
        return cls.from_dict(json.loads(text))
