"""The programmatic façade of the reproduction: ``repro.api``.

One stable entry point for every analysis in the repo::

    from repro.api import AnalysisSession

    session = AnalysisSession()
    result = session.analyze("(FPCore (x) :pre (<= 1e15 x 1e16) (- (+ x 1) x))")
    print(result.to_json())

    results = session.analyze_batch(load_corpus(), workers=4)

Subsystems:

* :mod:`repro.api.session`  — the configure-once façade with program
  and input-set caches and multiprocessing batch execution,
* :mod:`repro.api.requests` — typed, JSON-serializable requests,
* :mod:`repro.api.results`  — typed, JSON-serializable results,
* :mod:`repro.api.backends` — the pluggable backend registry
  (herbgrind, fpdebug, verrou, bz),
* :mod:`repro.api.sampling` — the shared precondition-box sampler.

The legacy entry points (``repro.core.analyze_fpcore``,
``repro.core.sample_inputs``, ...) remain as thin shims delegating
here; new code should use the session.
"""

from repro.api.backends import (
    AnalysisBackend,
    BZBackend,
    FpDebugBackend,
    HerbgrindBackend,
    VerrouBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.api.requests import AnalysisRequest
from repro.api.results import (
    RESULT_SCHEMA_VERSION,
    AnalysisResult,
    ErrorStats,
    RootCauseResult,
    SpotResult,
    results_from_json,
    results_to_json,
)
from repro.api.sampling import (
    DEFAULT_RANGE,
    LOG_SPAN_RATIO,
    precondition_box,
    sample_box,
    sample_inputs,
    sample_range,
)
from repro.api.session import AnalysisSession, ResultCache, request_digest
from repro.api.store import ShardedResultStore

__all__ = [
    "AnalysisBackend",
    "AnalysisRequest",
    "AnalysisResult",
    "AnalysisSession",
    "BZBackend",
    "DEFAULT_RANGE",
    "ErrorStats",
    "FpDebugBackend",
    "HerbgrindBackend",
    "LOG_SPAN_RATIO",
    "RESULT_SCHEMA_VERSION",
    "ResultCache",
    "RootCauseResult",
    "ShardedResultStore",
    "SpotResult",
    "VerrouBackend",
    "available_backends",
    "get_backend",
    "precondition_box",
    "register_backend",
    "request_digest",
    "results_from_json",
    "results_to_json",
    "sample_box",
    "sample_inputs",
    "sample_range",
]
