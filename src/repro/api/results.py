"""Typed analysis results with full JSON (de)serialization.

Every backend (Herbgrind, FpDebug, Verrou, BZ) reports through the
same shapes so callers can batch heterogeneous analyses and persist or
ship the outcomes:

* :class:`ErrorStats` — bits-of-error statistics for one site,
* :class:`RootCauseResult` — one candidate root cause (symbolic
  expression, observed input ranges, example problematic input),
* :class:`SpotResult` — one output/branch/conversion spot and the
  site-ids of the root causes that influenced it,
* :class:`AnalysisResult` — the full outcome of one request.

Serialization is deterministic: dictionaries are emitted with sorted
keys and every list is ordered by a stable site key, so the same
request produces byte-identical JSON whether it ran in-process or in a
worker pool (the ``analyze_batch`` parity guarantee).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: Bump when the serialized shape changes incompatibly.
RESULT_SCHEMA_VERSION = 1


@dataclass
class ErrorStats:
    """Bits-of-error statistics for one site (op or spot)."""

    executions: int = 0
    erroneous: int = 0
    max_bits: float = 0.0
    average_bits: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ErrorStats":
        return cls(**data)


@dataclass
class RootCauseResult:
    """One candidate root cause, in report-ready form."""

    site_id: int
    op: str
    loc: Optional[str]
    expression: Optional[str]
    variables: List[str] = field(default_factory=list)
    precondition_clauses: List[str] = field(default_factory=list)
    problematic_clauses: List[str] = field(default_factory=list)
    example_problematic: Optional[Dict[str, float]] = None
    compensations_detected: int = 0
    local_error: ErrorStats = field(default_factory=ErrorStats)

    def fpcore_text(self) -> str:
        """The (FPCore ...) form with the observed-input :pre."""
        if self.expression is None:
            return f"({self.op} <no expression>)"
        arguments = " ".join(self.variables)
        clauses = self.precondition_clauses
        if not clauses:
            pre = ""
        elif len(clauses) == 1:
            pre = f"\n  :pre {clauses[0]}"
        else:
            joined = "\n            ".join(clauses)
            pre = f"\n  :pre (and {joined})"
        return f"(FPCore ({arguments}){pre}\n  {self.expression})"

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["local_error"] = self.local_error.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RootCauseResult":
        data = dict(data)
        data["local_error"] = ErrorStats.from_dict(data["local_error"])
        return cls(**data)


@dataclass
class SpotResult:
    """One spot (output, branch, or conversion) and its influences."""

    site_id: int
    kind: str
    loc: Optional[str]
    error: ErrorStats = field(default_factory=ErrorStats)
    #: site_ids of the root causes whose influence reached this spot.
    root_cause_sites: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["error"] = self.error.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpotResult":
        data = dict(data)
        data["error"] = ErrorStats.from_dict(data["error"])
        return cls(**data)


#: ``extra`` keys that never leave the process: the degradation trail
#: (repro.resilience.ladder), the static report (repro.staticanalysis),
#: and the precision-tier residency counters (hardware/working/full tier
#: attribution).  Stripping them from serialization keeps corpus JSON
#: *byte-identical* across feature stacks — a degraded run matches the
#: clean run, a run with the static layer on (the default) matches
#: ``REPRO_STATIC=0``, and hw-tier on matches off.  All stay on the
#: object for in-process callers.
_LOCAL_EXTRA_KEYS = ("degradation", "static", "tier_residency")


def _portable_extra(extra: Dict[str, Any]) -> Dict[str, Any]:
    if any(key in extra for key in _LOCAL_EXTRA_KEYS):
        return {
            k: v for k, v in extra.items() if k not in _LOCAL_EXTRA_KEYS
        }
    return extra


@dataclass
class AnalysisResult:
    """The outcome of one :class:`~repro.api.requests.AnalysisRequest`.

    ``raw`` optionally carries the backend's native analysis object
    (e.g. a ``HerbgrindAnalysis``) when the analysis ran in-process; it
    is never serialized and is ``None`` for results that crossed a
    process boundary.
    """

    benchmark: str
    backend: str
    seed: int
    num_points: int
    max_output_error: float = 0.0
    root_causes: List[RootCauseResult] = field(default_factory=list)
    spots: List[SpotResult] = field(default_factory=list)
    #: Backend-specific details (e.g. Verrou stability spreads).
    extra: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = RESULT_SCHEMA_VERSION
    raw: Any = field(default=None, compare=False, repr=False)

    @property
    def detected(self) -> bool:
        """Whether the backend registered any erroneous spot."""
        return any(spot.error.erroneous > 0 for spot in self.spots)

    def reported_root_causes(self) -> List[RootCauseResult]:
        """Root causes whose influence reached at least one spot."""
        reached = set()
        for spot in self.spots:
            reached.update(spot.root_cause_sites)
        return [c for c in self.root_causes if c.site_id in reached]

    def __eq__(self, other: Any) -> bool:
        # Process-local extras are invisible to equality for the same
        # reason ``raw`` is compare-excluded: a result that crossed a
        # process boundary must compare equal to its in-process twin.
        if not isinstance(other, AnalysisResult):
            return NotImplemented
        return (
            self.benchmark == other.benchmark
            and self.backend == other.backend
            and self.seed == other.seed
            and self.num_points == other.num_points
            and self.max_output_error == other.max_output_error
            and self.root_causes == other.root_causes
            and self.spots == other.spots
            and self.schema_version == other.schema_version
            and _portable_extra(self.extra) == _portable_extra(other.extra)
        )

    def to_dict(self) -> Dict[str, Any]:
        extra = _portable_extra(self.extra)
        return {
            "schema_version": self.schema_version,
            "benchmark": self.benchmark,
            "backend": self.backend,
            "seed": self.seed,
            "num_points": self.num_points,
            "max_output_error": self.max_output_error,
            "root_causes": [c.to_dict() for c in self.root_causes],
            "spots": [s.to_dict() for s in self.spots],
            "extra": extra,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnalysisResult":
        return cls(
            benchmark=data["benchmark"],
            backend=data["backend"],
            seed=data["seed"],
            num_points=data["num_points"],
            max_output_error=data["max_output_error"],
            root_causes=[
                RootCauseResult.from_dict(c) for c in data["root_causes"]
            ],
            spots=[SpotResult.from_dict(s) for s in data["spots"]],
            extra=data.get("extra", {}),
            schema_version=data.get("schema_version", RESULT_SCHEMA_VERSION),
        )

    @classmethod
    def from_json(cls, text: str) -> "AnalysisResult":
        return cls.from_dict(json.loads(text))


def results_to_json(results: List[AnalysisResult], indent: Optional[int] = 2) -> str:
    """Serialize a batch of results as one JSON array."""
    return json.dumps(
        [r.to_dict() for r in results], indent=indent, sort_keys=True
    )


def results_from_json(text: str) -> List[AnalysisResult]:
    """Deserialize a batch serialized by :func:`results_to_json`."""
    return [AnalysisResult.from_dict(d) for d in json.loads(text)]
