"""The sharded on-disk result store — one format for offline and served paths.

Results are keyed by :func:`repro.api.session.request_digest` (the
SHA-256 of the canonical request JSON) and stored as

    <root>/<digest[:2]>/<digest>.json

— 256-way digest-prefix shards so a production store with millions of
entries never puts more than ~1/256th of them in one directory, and so
concurrent writers (worker processes, multiple server processes over
one store directory) contend on different directories.

Safety properties:

* **Atomic writes.**  Every entry is written to a temp file in the
  *destination shard* and published with ``os.replace`` — readers never
  observe a partial entry, and concurrent writers of the same digest
  race benignly (both write byte-identical canonical JSON; last rename
  wins).
* **Crash tolerance.**  A failed write never raises out of
  :meth:`put_text`; the entry is simply a miss next time.  Stray
  ``.tmp`` files from a killed writer are ignored by readers.
* **Corruption quarantine.**  Every read is validated (non-empty,
  parseable JSON) before it is served.  A zero-byte or truncated entry
  — a killed writer on a filesystem without atomic rename, a torn NFS
  write, bit rot — is renamed to a ``<entry>.json.quarantine`` sidecar
  (kept for inspection, invisible to readers) and reported as a miss,
  so the caller recomputes and rewrites; the store **never raises** on
  corrupt data.  The ``store.read.*`` / ``store.write.*`` fault seams
  (:mod:`repro.resilience.faults`) inject exactly these failures for
  the chaos suite.
* **Legacy compatibility.**  Stores written by the pre-sharded
  ``ResultCache`` kept flat ``<root>/<digest>.json`` entries; those are
  still read (and transparently promoted into the sharded layout) so
  existing cache directories keep working.

The store deals only in digest → JSON *text*.  Parsing and schema
checks stay with the callers (:class:`repro.api.session.ResultCache`,
:mod:`repro.serve.service`), which also lets the serving path ship the
stored bytes verbatim — a warm response is byte-identical to the cold
one by construction.
"""

from __future__ import annotations

import json
import logging
import os
import re
import tempfile
from typing import Dict, Iterator, Optional

from repro.resilience import faults as _faults

logger = logging.getLogger("repro.serve")

#: Exactly the shape request_digest() produces.
_DIGEST_RE = re.compile(r"\A[0-9a-f]{64}\Z")

#: Hex characters of the digest used as the shard directory name.
SHARD_PREFIX_LEN = 2


def is_digest(text: str) -> bool:
    """Whether ``text`` is a well-formed request digest (64 hex chars)."""
    return isinstance(text, str) and _DIGEST_RE.match(text) is not None


class ShardedResultStore:
    """A digest-keyed JSON store over 256 digest-prefix shards.

    Instances are cheap (no I/O at construction) and safe to share
    across threads; the counters are advisory (plain ints, updated
    without locking) and exist for the ``/v1/stats`` endpoint, not for
    correctness.
    """

    def __init__(self, root: str, read_legacy: bool = True) -> None:
        self.root = root
        self.read_legacy = read_legacy
        self.hits = 0
        self.misses = 0
        self.legacy_hits = 0
        self.writes = 0
        self.write_errors = 0
        #: Entries that failed read validation (empty / unparseable).
        self.corrupt = 0
        #: Corrupt entries successfully renamed to their sidecar.
        self.quarantined = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def path(self, digest: str) -> str:
        """The sharded path of ``digest`` (whether or not it exists)."""
        self._check(digest)
        return os.path.join(
            self.root, digest[:SHARD_PREFIX_LEN], f"{digest}.json"
        )

    def legacy_path(self, digest: str) -> str:
        """Where the pre-sharded flat layout kept ``digest``."""
        self._check(digest)
        return os.path.join(self.root, f"{digest}.json")

    @staticmethod
    def _check(digest: str) -> None:
        if not is_digest(digest):
            raise ValueError(f"not a request digest: {digest!r}")

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def get_text(self, digest: str) -> Optional[str]:
        """The stored JSON text for ``digest``, or None on a miss.

        Reads the sharded entry first, then (by default) the legacy
        flat entry, promoting a legacy hit into the sharded layout so
        old store directories migrate incrementally as they are read.
        An entry that fails validation (zero-byte / partial JSON left
        by a killed writer) is quarantined to a sidecar and treated as
        a miss — corruption never raises and never gets served.
        """
        path = self.path(digest)
        text = self._read(path)
        if text is not None:
            if self._valid(text):
                self.hits += 1
                return text
            self._quarantine(path, digest)
        if self.read_legacy:
            legacy = self.legacy_path(digest)
            text = self._read(legacy)
            if text is not None:
                if self._valid(text):
                    self.hits += 1
                    self.legacy_hits += 1
                    self._write(digest, text)  # promote; failure is fine
                    return text
                self._quarantine(legacy, digest)
        self.misses += 1
        return None

    def put_text(self, digest: str, text: str) -> bool:
        """Atomically store ``text`` under ``digest``.

        Returns False (never raises) when the write fails — the result
        was computed and the caller still has it; the store entry is
        just a miss next time.
        """
        self._check(digest)
        ok = self._write(digest, text)
        if ok:
            self.writes += 1
        else:
            self.write_errors += 1
        return ok

    def __contains__(self, digest: str) -> bool:
        if not is_digest(digest):
            return False
        if os.path.exists(self.path(digest)):
            return True
        return self.read_legacy and os.path.exists(self.legacy_path(digest))

    @staticmethod
    def _read(path: str) -> Optional[str]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        if _faults.active():
            # Chaos seams store.read.truncate / store.read.empty: a
            # torn read, exercised like real on-disk corruption.
            text = _faults.corrupt_text("store.read", text)
        return text

    @staticmethod
    def _valid(text: str) -> bool:
        """Whether ``text`` is a non-empty, parseable JSON document."""
        if not text:
            return False
        try:
            json.loads(text)
        except (json.JSONDecodeError, ValueError):
            return False
        return True

    def _quarantine(self, path: str, digest: str) -> None:
        """Move a corrupt entry to its ``.quarantine`` sidecar.

        The sidecar keeps the bad bytes for post-mortem inspection;
        readers never look at it (it doesn't end in ``.json``), so the
        digest reads as a miss and the caller recomputes.  A failed
        rename (e.g. a concurrent reader already moved it) is ignored —
        the entry will be overwritten by the recompute either way.
        """
        self.corrupt += 1
        try:
            os.replace(path, path + ".quarantine")
            self.quarantined += 1
        except OSError:
            return
        logger.warning(
            "store quarantined corrupt entry for digest %s (%s)",
            digest, path,
        )

    def _write(self, digest: str, text: str) -> bool:
        if _faults.active():
            # Chaos seams store.write.truncate / store.write.empty: a
            # killed writer's partial flush, landed atomically so the
            # *read-side* hardening is what gets exercised.
            text = _faults.corrupt_text("store.write", text)
        shard = os.path.join(self.root, digest[:SHARD_PREFIX_LEN])
        tmp = None
        try:
            os.makedirs(shard, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, os.path.join(shard, f"{digest}.json"))
            return True
        except OSError:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def iter_digests(self) -> Iterator[str]:
        """All digests currently stored (sharded and legacy entries)."""
        seen = set()
        try:
            top = os.listdir(self.root)
        except OSError:
            return
        for entry in sorted(top):
            path = os.path.join(self.root, entry)
            if len(entry) == SHARD_PREFIX_LEN and os.path.isdir(path):
                try:
                    names = os.listdir(path)
                except OSError:
                    continue
                for name in sorted(names):
                    digest = name[:-5] if name.endswith(".json") else ""
                    if is_digest(digest) and digest not in seen:
                        seen.add(digest)
                        yield digest
            elif entry.endswith(".json") and is_digest(entry[:-5]):
                if entry[:-5] not in seen:
                    seen.add(entry[:-5])
                    yield entry[:-5]

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_digests())

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "legacy_hits": self.legacy_hits,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
        }
