"""Reproduction of "Finding Root Causes of Floating Point Error" (PLDI 2018).

This package reimplements Herbgrind — a dynamic analysis that finds
*candidate root causes* of floating-point error — on top of from-scratch
Python substrates:

* :mod:`repro.ieee` — IEEE-754 double/single bit manipulation and the
  bits-of-error metric.
* :mod:`repro.bigfloat` — an arbitrary-precision binary floating-point
  library (the paper's MPFR substitute) used for shadow-real execution.
* :mod:`repro.fpcore` — an FPCore (FPBench) frontend and benchmark corpus.
* :mod:`repro.machine` — a low-level IR virtual machine standing in for
  Valgrind/VEX, including a software libm written in the IR itself.
* :mod:`repro.core` — the Herbgrind analysis: shadow reals, influence
  tracking, symbolic expressions via anti-unification, input
  characteristics, compensation detection and library wrapping.
* :mod:`repro.improve` — a mini-Herbie rewrite search used to judge
  improvability of reported root causes.
* :mod:`repro.api` — the programmatic façade: ``AnalysisSession`` with
  cross-call caches, pluggable analysis backends, batch execution over
  a process pool, and JSON-serializable requests/results.
* :mod:`repro.apps` — the paper's case studies (complex plotter,
  Gram-Schmidt, PID controller, Gromacs dihedral kernel, Triangle).
* :mod:`repro.comparisons` — FpDebug / Verrou / BZ baseline analyses.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
