#!/usr/bin/env python3
"""CI smoke test: a real ``repro serve`` process driven end to end.

Launches the CLI server as a subprocess on an ephemeral port, replays
a seeded mix of cold and repeat requests through
:class:`repro.serve.ServeClient`, and asserts the serving guarantees
on every push:

* every served body is byte-identical to an in-process
  ``AnalysisSession.analyze(request).to_json()``,
* concurrent identical requests dedupe to one computation
  (``dedupe_hits`` must be nonzero),
* repeats are served warm (``memory``/``store``, no recomputation),
* SIGKILLing an analysis worker mid-replay loses zero requests: the
  pool respawns the worker and client retries absorb the structured
  500s, with every body still byte-identical,
* SIGTERM drains gracefully and the process exits 0.

Usage:  PYTHONPATH=src python scripts/serve_smoke.py [--slice 6]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.api import AnalysisSession
from repro.core import AnalysisConfig
from repro.fpcore import load_corpus
from repro.serve import ServeClient

LISTENING = "repro-serve listening on http://"


def _worker_pids(server_pid: int) -> "list[int]":
    """Direct children of the server process (the analysis workers).

    Reads ``/proc/<pid>/stat`` — Linux only; callers skip the chaos
    step when the scan comes back empty.
    """
    children = []
    try:
        pids = [int(e) for e in os.listdir("/proc") if e.isdigit()]
    except OSError:
        return children
    for pid in pids:
        try:
            with open(f"/proc/{pid}/stat", "r") as handle:
                fields = handle.read().rsplit(")", 1)[1].split()
        except (OSError, IndexError):
            continue
        if int(fields[1]) == server_pid:  # ppid is field 4 of stat
            children.append(pid)
    return sorted(children)


def _launch(store_dir: str, workers: int) -> "tuple[subprocess.Popen, int]":
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", str(workers), "--store-dir", store_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    while True:
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("server did not announce its port in 60s")
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited early (rc={process.poll()})"
            )
        if LISTENING in line:
            port = int(line.split(LISTENING, 1)[1].split("/")[0]
                       .rsplit(":", 1)[1].split()[0])
            return process, port


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slice", type=int, default=6,
                        help="corpus benchmarks in the replay mix")
    parser.add_argument("--repeats", type=int, default=3,
                        help="warm repeats per benchmark in the replay")
    parser.add_argument("--dedupe-clients", type=int, default=6)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    config = AnalysisConfig(shadow_precision=256)
    session = AnalysisSession(config=config, num_points=3, seed=args.seed)
    requests = []
    for core in load_corpus():
        request = session.request(core)
        try:
            expected = session.analyze(request).to_json()
        except Exception:  # noqa: BLE001 — skip backend-rejected cores
            continue
        requests.append((request, expected))
        if len(requests) >= args.slice:
            break

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as store_dir:
        process, port = _launch(store_dir, args.workers)
        # Drain the server's stdout so it can't block on a full pipe.
        drainer = threading.Thread(
            target=lambda: [None for _ in process.stdout], daemon=True
        )
        drainer.start()
        try:
            client = ServeClient(port=port, timeout=120)
            assert client.health()["status"] == "ok"

            # Seeded replay: every benchmark cold once, then repeats
            # in a shuffled order that must all come back warm.
            rng = random.Random(args.seed)
            for request, expected in requests:
                reply = client.analyze(request)
                assert reply.source == "computed", reply.source
                assert reply.text == expected, (
                    f"parity mismatch on {request.name}"
                )
            replay = [pair for pair in requests
                      for _ in range(args.repeats)]
            rng.shuffle(replay)
            for request, expected in replay:
                reply = client.analyze(request)
                assert reply.source in ("memory", "store"), reply.source
                assert reply.text == expected, (
                    f"warm parity mismatch on {request.name}"
                )

            # Concurrent identical cold requests: exactly one compute.
            # Lots of points makes the analysis slow enough that every
            # client genuinely arrives while it is in flight (a cheap
            # request can finish before the last client connects,
            # turning would-be dedupe hits into memory hits).
            fresh = session.request(
                requests[0][0].core, seed=31337, num_points=512
            )
            barrier = threading.Barrier(args.dedupe_clients)

            def fire():
                with ServeClient(port=port, timeout=120) as one:
                    barrier.wait()
                    return one.analyze(fresh).source

            with concurrent.futures.ThreadPoolExecutor(
                args.dedupe_clients
            ) as executor:
                sources = list(executor.map(
                    lambda _: fire(), range(args.dedupe_clients)
                ))
            stats = client.stats()["service"]
            assert sources.count("computed") <= 1, sources
            assert stats["dedupe_hits"] > 0, stats
            assert stats["computed"] == len(requests) + 1, stats

            # Chaos leg: SIGKILL one analysis worker mid-replay.  The
            # pool must respawn it and the replay must finish with zero
            # failed requests — a kill that lands while the worker is
            # idle is absorbed by the pool's dead-worker resend, one
            # that lands mid-task surfaces as a structured 500 that the
            # client's retry budget absorbs.  Bodies stay byte-exact.
            chaos = []
            for index, (request, _) in enumerate(requests):
                fresh_cold = session.request(
                    request.core, seed=4000 + index
                )
                chaos.append(
                    (fresh_cold, session.analyze(fresh_cold).to_json())
                )
            victims = _worker_pids(process.pid)
            killed = None
            with ServeClient(port=port, timeout=120, retries=3,
                             backoff_base=0.05, jitter_seed=1) as chaotic:
                for index, (request, expected) in enumerate(chaos):
                    if index == 1 and victims:
                        killed = victims[0]
                        os.kill(killed, signal.SIGKILL)
                    reply = chaotic.analyze(request)
                    assert reply.status == 200, reply.status
                    assert reply.text == expected, (
                        f"chaos parity mismatch on {request.name}"
                    )
            if victims:
                assert killed is not None
                pool_stats = client.stats()["pool"]
                assert pool_stats["restarts"] >= 1, pool_stats
            else:
                print("warning: no /proc worker scan; chaos kill "
                      "skipped", file=sys.stderr)
            client.close()
        except BaseException:
            process.kill()
            process.wait()
            raise

        process.send_signal(signal.SIGTERM)
        rc = process.wait(timeout=60)
        if rc != 0:
            print(f"FAIL: server exited {rc} on SIGTERM", file=sys.stderr)
            return 1

    chaos_note = (f"worker {killed} SIGKILLed, 0 failed requests"
                  if killed is not None else "chaos kill skipped")
    print(f"serve smoke ok: {len(requests)} benchmarks cold+warm, "
          f"dedupe_hits={stats['dedupe_hits']}, "
          f"computed={stats['computed']}, {chaos_note}, "
          f"graceful SIGTERM exit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
