"""CI smoke for the static analyzer: `repro lint --json` vs snapshot.

Runs the real CLI (``python -m repro.cli lint --json``) over the whole
bundled corpus and diffs the output against the checked-in snapshot at
``tests/staticanalysis/expected_lint.json``.  The static pass is pure
deterministic double arithmetic, so the JSON must be byte-identical on
every machine; any diff means the analyzer's verdicts changed and the
snapshot must be regenerated *deliberately*::

    PYTHONPATH=src python scripts/lint_smoke.py --update

Exit status: 0 on match (or after --update), 1 on drift.
"""

from __future__ import annotations

import argparse
import difflib
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SNAPSHOT = os.path.join(
    REPO_ROOT, "tests", "staticanalysis", "expected_lint.json"
)


def current_lint_output() -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "--json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        check=True,
    )
    return completed.stdout


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the snapshot from the current analyzer output",
    )
    args = parser.parse_args(argv)

    output = current_lint_output()
    if args.update:
        with open(SNAPSHOT, "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"snapshot updated: {SNAPSHOT}")
        return 0

    if not os.path.exists(SNAPSHOT):
        print(f"missing snapshot {SNAPSHOT}; run with --update", file=sys.stderr)
        return 1
    with open(SNAPSHOT, "r", encoding="utf-8") as handle:
        expected = handle.read()
    if output == expected:
        print("lint smoke: corpus diagnostics match the snapshot")
        return 0
    diff = difflib.unified_diff(
        expected.splitlines(keepends=True),
        output.splitlines(keepends=True),
        fromfile="expected_lint.json",
        tofile="current",
    )
    sys.stderr.writelines(diff)
    print(
        "lint smoke: drift against the snapshot "
        "(regenerate with --update if intended)",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
