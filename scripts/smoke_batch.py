#!/usr/bin/env python3
"""CI smoke test: a time-budgeted corpus batch through AnalysisSession.

Analyzes as much of the 86-benchmark corpus as fits in the budget
(default 30 s) with ``workers=4``, then re-runs the same slice
sequentially and asserts byte-identical JSON — the batch-parity
guarantee of :mod:`repro.api` exercised end to end on every push.

Usage:  python scripts/smoke_batch.py [--budget SECONDS]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import AnalysisSession, results_to_json
from repro.core import AnalysisConfig
from repro.fpcore import load_corpus


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=30.0,
                        help="wall-clock budget in seconds")
    parser.add_argument("--min-benchmarks", type=int, default=20,
                        help="fail if fewer than this many complete")
    args = parser.parse_args(argv)

    corpus = load_corpus()
    session = AnalysisSession(
        config=AnalysisConfig(shadow_precision=192), num_points=6, seed=7
    )

    start = time.perf_counter()
    # Grow the batch in chunks until ~half the budget is spent; the
    # other half pays for the sequential parity re-run.
    done = []
    chunk = 10
    index = 0
    while index < len(corpus) and time.perf_counter() - start < args.budget / 2:
        batch = corpus[index:index + chunk]
        done.extend(session.analyze_batch(batch, workers=4))
        index += len(batch)
    parallel_time = time.perf_counter() - start

    # A fresh session with the result cache off: the parity re-run must
    # actually recompute, not replay the parallel results from cache.
    sequential_session = AnalysisSession(
        config=AnalysisConfig(shadow_precision=192), num_points=6, seed=7,
        result_cache_size=0,
    )
    sequential = sequential_session.analyze_batch(corpus[:index], workers=1)
    total_time = time.perf_counter() - start

    if results_to_json(done) != results_to_json(sequential):
        print("FAIL: parallel and sequential JSON differ", file=sys.stderr)
        return 1
    if index < args.min_benchmarks:
        print(
            f"FAIL: only {index} benchmarks fit the budget "
            f"(need {args.min_benchmarks})",
            file=sys.stderr,
        )
        return 1

    detected = sum(1 for r in done if r.detected)
    print(
        f"smoke batch ok: {index} benchmarks, {detected} with erroneous "
        f"spots, parallel {parallel_time:.1f}s, total {total_time:.1f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
