#!/usr/bin/env python3
"""The Section 3 / Figure 1 case study: the complex function plotter.

Plots arg(f(z)) for f(z) = 1/(sqrt(Re z) - csqrt(Re z + i e^{-20z}))
over R = [0, 1/4] x [-3, 3], first with the textbook complex square
root (speckled, left image of Figure 1), then with the Herbie-repaired
branch form (clean, right image).  Writes both as PGM images and prints
the Herbgrind report that identifies the root-cause fragment.

Run:  python examples/plotter_casestudy.py [width height]
"""

import sys

from repro.apps.plotter import render_pgm, run_plotter
from repro.core import AnalysisConfig, generate_report


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    height = int(sys.argv[2]) if len(sys.argv) > 2 else 36
    config = AnalysisConfig(shadow_precision=256, max_expression_depth=4)

    print(f"plotting {width}x{height} with the naive csqrt ...")
    naive = run_plotter(width=width, height=height, config=config)
    print(
        f"  {naive.incorrect_pixels} incorrect values of"
        f" {naive.total_pixels}"
        f"  (paper: 231878 of 477000 at 795x600)"
    )
    render_pgm(naive, "plotter_before.pgm")

    print("\nHerbgrind report (root causes feeding the output):\n")
    report = generate_report(naive.analysis)
    # Show only the first spot block to keep the demo short.
    print(report.format().split("\n\n")[0])
    for spot in report.spots[:1]:
        for cause in spot.root_causes[:1]:
            print()
            print(cause.fpcore_text())
            example = cause.example_text()
            if example:
                print(f"Example problematic input: {example}")

    print("\nplotting with the repaired csqrt ...")
    fixed = run_plotter(width=width, height=height, fixed=True, config=config)
    print(
        f"  {fixed.incorrect_pixels} incorrect values of {fixed.total_pixels}"
    )
    render_pgm(fixed, "plotter_after.pgm")
    print("\nwrote plotter_before.pgm / plotter_after.pgm (Figure 1)")


if __name__ == "__main__":
    main()
