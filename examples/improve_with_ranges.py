#!/usr/bin/env python3
"""Why input characteristics matter (Section 4.4 / Figure 5b).

The paper's baz function is only problematic near x = 113.  If the
improver samples blindly it may never see the bad region; with the
ranges Herbgrind observed, the repair is found.

Run:  python examples/improve_with_ranges.py
"""

from repro.api import AnalysisSession
from repro.core import AnalysisConfig
from repro.eval import sample_points_for_record
from repro.fpcore import parse_fpcore
from repro.fpcore.printer import format_expr
from repro.improve import improve_expression

SOURCE = """
(FPCore (x)
  :name "paper-baz"
  :pre (<= 100 x 200)
  (- (+ (/ 1 (- x 113)) PI) (/ 1 (- x 113))))
"""


def main() -> None:
    core = parse_fpcore(SOURCE)
    # Exercise baz on a spread of inputs, a few of them near the pole.
    points = [[110.0], [150.0], [190.0], [113.0000001], [112.9999999], [113.001]]
    session = AnalysisSession(config=AnalysisConfig(shadow_precision=256))
    analysis = session.analyze(core, points=points).raw

    causes = analysis.reported_root_causes()
    if not causes:
        print("no root causes reported")
        return
    record = causes[0]
    print("extracted fragment:", format_expr(record.symbolic_expression))
    print("observed ranges (all inputs):")
    for variable, text in record.total_inputs.describe().items():
        print(f"  {variable}: {text}")
    print("observed ranges (erroneous inputs only):")
    for variable, text in record.problematic_inputs.describe().items():
        print(f"  {variable}: {text}")

    variables, points = sample_points_for_record(record, count=16)
    result = improve_expression(record.symbolic_expression, variables, points)
    print(
        f"\nimprovement with observed ranges:"
        f" {result.initial_error:.1f} -> {result.best_error:.1f} bits"
    )
    print(f"  repaired: {format_expr(result.best)}")


if __name__ == "__main__":
    main()
