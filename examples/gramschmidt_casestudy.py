#!/usr/bin/env python3
"""The Section 7 Gram-Schmidt case study.

Polybench 3.2.1's initializer fills column 0 of the input matrix with
zeros; normalizing that column divides by zero and NaNs flood Q and R.
Herbgrind reports 64 bits of error and hands over the zero-vector
problematic input; Polybench 4.2.0 fixed the initializer.

Run:  python examples/gramschmidt_casestudy.py
"""

from repro.apps.gramschmidt import (
    INIT_POLYBENCH_3_2_1,
    INIT_POLYBENCH_4_2_0,
    run_gramschmidt,
)
from repro.core import AnalysisConfig
from repro.fpcore.printer import format_expr

# A modest expression-depth bound makes the zero-vector inputs land in
# the division's *variable* examples rather than inline literals.
CONFIG = AnalysisConfig(shadow_precision=256, max_expression_depth=4)


def main() -> None:
    buggy = run_gramschmidt(
        rows=6, cols=4, initializer=INIT_POLYBENCH_3_2_1, config=CONFIG
    )
    spots = buggy.analysis.erroneous_spots()
    print("Polybench 3.2.1 initializer (A[i][j] = i*j/ni):")
    print(f"  {buggy.nan_outputs} NaN outputs of {len(buggy.outputs)}")
    print(f"  max error: {max(s.max_error for s in spots):.0f} bits"
          " (NaN = maximal error, as in the paper)")

    divisions = [
        r for r in buggy.analysis.reported_root_causes()
        if r.op == "/" and r.loc == "gramschmidt.c:17"
    ]
    if divisions:
        record = divisions[0]
        print("\n  root cause: the normalization division")
        print(f"    {format_expr(record.symbolic_expression)}")
        print(f"    example problematic input: {record.example_problematic}")
        print("    (zero numerator and denominator: the zero vector —")
        print("     an invalid input to Gram-Schmidt, not a bug in it)")

    fixed = run_gramschmidt(
        rows=6, cols=4, initializer=INIT_POLYBENCH_4_2_0, config=CONFIG
    )
    print("\nPolybench 4.2.0 initializer ((i*j % ni)/ni * 100 + 10):")
    print(f"  {fixed.nan_outputs} NaN outputs,"
          f" {len(fixed.analysis.erroneous_spots())} erroneous spots")


if __name__ == "__main__":
    main()
