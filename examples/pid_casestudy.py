#!/usr/bin/env python3
"""The Section 7 PID-controller case study.

The controller's loop runs ``while (t < N)`` with ``t += 0.2``; for
N = 10 the drift of the binary 0.2 makes the loop run 51 times instead
of 50.  The analysis catches the branch divergence and traces it to the
increment — the same family of bug as the 1992 Patriot missile failure.

Run:  python examples/pid_casestudy.py
"""

from repro.apps.pid import run_pid, sweep_bounds
from repro.fpcore.printer import format_expr


def main() -> None:
    print("bound  iterations  exact  divergences")
    for result in sweep_bounds([2.0, 4.0, 6.0, 8.0, 10.0]):
        print(
            f"{result.bound:5.1f}  {result.iterations:10d}"
            f"  {result.expected_iterations:5d}"
            f"  {result.branch_divergences:11d}"
        )

    print("\nroot cause for N = 10:")
    result = run_pid(10.0)
    for cause in result.analysis.reported_root_causes()[:1]:
        print(f"  {format_expr(cause.symbolic_expression)} at {cause.loc}")

    fixed = run_pid(10.0, fixed=True)
    print(
        f"\nrepaired loop (integer counter, i*0.2 < N):"
        f" {fixed.iterations} iterations,"
        f" {fixed.branch_divergences} divergences"
    )


if __name__ == "__main__":
    main()
