#!/usr/bin/env python3
"""The Section 7 Gromacs dihedral-angle case study.

For four nearly colinear atoms (alkyne-like geometry), the acos-based
dihedral routine loses most of its bits to cancellation; the
atan2-based form from the meshing literature is uniformly stable.

Run:  python examples/dihedral_casestudy.py
"""

import random

from repro.apps.dihedral import (
    generic_configuration,
    near_flat_configuration,
    reference_angle,
    run_dihedral,
)
from repro.fpcore.printer import format_expr


def main() -> None:
    rng = random.Random(7)
    flats = [near_flat_configuration(rng) for __ in range(6)]
    generics = [generic_configuration(rng) for __ in range(6)]
    configurations = flats + generics

    naive = run_dihedral(configurations)
    print(
        f"acos formula: {naive.erroneous_angles} of"
        f" {len(configurations)} angles erroneous"
    )
    print("sample (flat configuration):")
    print(f"  computed {naive.angles[0]:.12f}")
    print(f"  true     {reference_angle(flats[0]):.12f}")

    print("\nroot cause (spans vectors threaded through the heap):")
    for cause in naive.analysis.reported_root_causes()[:1]:
        text = format_expr(cause.symbolic_expression)
        print(f"  {cause.op} at {cause.loc}")
        print(f"  {text[:100]}{'...' if len(text) > 100 else ''}")

    fixed = run_dihedral(configurations, fixed=True)
    print(
        f"\natan2 formula: {fixed.erroneous_angles} of"
        f" {len(configurations)} angles erroneous"
    )


if __name__ == "__main__":
    main()
