#!/usr/bin/env python3
"""Quickstart: find the root cause of error in a small program.

We analyse the paper's Section 2.1 example — a program computing
``((x+y) - (x+z)) * x`` across a function boundary — and print the
Herbgrind-style report, then ask the mini-Herbie for a repair.

Run:  python examples/quickstart.py
"""

from repro.api import AnalysisSession
from repro.core import AnalysisConfig, generate_report
from repro.eval import sample_points_for_record
from repro.fpcore import parse_fpcore
from repro.fpcore.printer import format_expr
from repro.improve import improve_expression

SOURCE = """
(FPCore (x y z)
  :name "paper-foo-bar"
  :pre (and (<= 1e12 x 1e16) (<= 0 y 1) (<= 0 z 1))
  (* (- (+ x y) (+ x z)) x))
"""


def main() -> None:
    core = parse_fpcore(SOURCE)

    # 1. Run the dynamic analysis on sampled inputs through the
    #    repro.api session (the single entry point for every backend).
    session = AnalysisSession(
        config=AnalysisConfig(shadow_precision=256), num_points=16
    )
    result = session.analyze(core)
    analysis = result.raw

    # 2. Print the report: spots, root causes, input characteristics.
    #    (result.to_json() is the machine-readable equivalent.)
    report = generate_report(analysis)
    print(report.format())

    # 3. Feed the extracted root cause to the improver.
    causes = analysis.reported_root_causes()
    if not causes:
        print("nothing to improve")
        return
    record = causes[0]
    variables, points = sample_points_for_record(record, count=16)
    result = improve_expression(record.symbolic_expression, variables, points)
    print("Improvement:")
    print(f"  before: {format_expr(result.original)}"
          f"  ({result.initial_error:.1f} bits of error)")
    print(f"  after:  {format_expr(result.best)}"
          f"  ({result.best_error:.1f} bits of error)")


if __name__ == "__main__":
    main()
