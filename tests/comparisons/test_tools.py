"""Tests for the FpDebug / Verrou / BZ comparison analyses."""

import math

from repro.comparisons import run_bz, run_fpdebug, run_verrou
from repro.core import AnalysisConfig, analyze_program
from repro.fpcore import parse_fpcore
from repro.machine import compile_fpcore

CANCEL = "(FPCore (x) (* (- (sqrt (+ x 1)) (sqrt x)) (sqrt x)))"
CLEAN = "(FPCore (x) (* (+ x 1) 2))"
BRANCHY = "(FPCore (x) (if (== (+ x 1) x) 1 0))"

POINTS = [[10.0 ** k] for k in range(0, 14, 2)]


class TestFpDebug:
    def test_detects_errors(self):
        analysis = run_fpdebug(compile_fpcore(parse_fpcore(CANCEL)), POINTS)
        assert analysis.erroneous_operations()

    def test_clean_program(self):
        analysis = run_fpdebug(compile_fpcore(parse_fpcore(CLEAN)), POINTS)
        assert analysis.erroneous_operations() == []

    def test_blames_downstream_ops_too(self):
        """FpDebug measures total error: the innocent multiply that
        consumes the cancelled difference is also flagged — the false
        positive Herbgrind's local error avoids (Table 1 'Local Error')."""
        program = compile_fpcore(parse_fpcore(CANCEL))
        fpdebug = run_fpdebug(program, POINTS)
        flagged_ops = {record.op for record in fpdebug.erroneous_operations()}
        assert "-" in flagged_ops
        assert "*" in flagged_ops  # the innocent one
        herbgrind, __ = analyze_program(
            program, POINTS, config=AnalysisConfig(shadow_precision=192)
        )
        herbgrind_ops = {r.op for r in herbgrind.reported_root_causes()}
        assert "*" not in herbgrind_ops

    def test_reports_locations(self):
        analysis = run_fpdebug(compile_fpcore(parse_fpcore(CANCEL)), POINTS)
        assert all(r.loc for r in analysis.erroneous_operations())


class TestVerrou:
    def test_unstable_output_detected(self):
        report = run_verrou(compile_fpcore(parse_fpcore(CANCEL)), [1e12], runs=8)
        assert report.unstable_outputs() == [0]

    def test_stable_output_not_flagged(self):
        report = run_verrou(compile_fpcore(parse_fpcore(CLEAN)), [3.0], runs=8)
        assert report.unstable_outputs() == []
        assert report.significant_digits(0) > 10

    def test_spread_zero_means_full_digits(self):
        report = run_verrou(
            compile_fpcore(parse_fpcore("(FPCore (x) (* x 2))")), [1.5], runs=4
        )
        assert report.significant_digits(0) == 17.0

    def test_reference_matches_unperturbed(self):
        program = compile_fpcore(parse_fpcore(CLEAN))
        report = run_verrou(program, [3.0], runs=2)
        assert report.reference == [8.0]


class TestBZ:
    def test_cancellation_detected(self):
        analysis = run_bz(compile_fpcore(parse_fpcore(CANCEL)), POINTS)
        assert analysis.cancellations > 0
        kinds = {r.kind for r in analysis.reported_factors()}
        assert "output" in kinds

    def test_branch_factor(self):
        analysis = run_bz(
            compile_fpcore(parse_fpcore(BRANCHY)), [[1e16]]
        )
        # (x+1) == x at 1e16: the compare consumes a cancelled (x+1)-...
        # no subtraction here, so taint only arises if a cancel occurs;
        # use an explicitly cancelling program instead.
        source = "(FPCore (x) (if (< (- (+ x 1) x) 0.5) 1 0))"
        analysis = run_bz(compile_fpcore(parse_fpcore(source)), [[1e16]])
        kinds = {r.kind for r in analysis.reported_factors()}
        assert "branch" in kinds

    def test_clean_program_no_reports(self):
        analysis = run_bz(compile_fpcore(parse_fpcore(CLEAN)), POINTS)
        assert analysis.reported_factors() == []
        assert analysis.cancellations == 0

    def test_false_positive_rate_documented_behaviour(self):
        """Benign cancellation still trips BZ — its design accepts high
        false-positive rates (>80-90% in their paper).  Subtracting two
        nearby doubles is *exact* (Sterbenz), yet the exponent-drop
        heuristic flags it and the report reaches the output factor."""
        source = "(FPCore (x y) (- x y))"
        analysis = run_bz(
            compile_fpcore(parse_fpcore(source)),
            [[1.0000001, 1.0]],
            cancellation_bits=20,
        )
        assert analysis.cancellations > 0
        assert analysis.reported_factors()  # reported despite exactness
