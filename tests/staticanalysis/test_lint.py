"""The lint layer: catalog, severities, known-unstable programs, apps."""

import json
import math

import pytest

from repro.fpcore import load_corpus, parse_fpcore
from repro.staticanalysis import DIAGNOSTIC_CATALOG, lint_core, lint_program
from repro.staticanalysis.lint import (
    SEVERITY_ERROR_BITS,
    SEVERITY_WARNING_BITS,
    severity_for,
)


@pytest.fixture(scope="module")
def corpus_diagnostics():
    return {core.name: lint_core(core) for core in load_corpus()}


class TestCatalog:
    def test_codes_are_documented(self):
        for code, (title, description) in DIAGNOSTIC_CATALOG.items():
            assert code.startswith("S") and len(code) == 4
            assert title and description

    def test_every_emitted_code_is_in_the_catalog(self, corpus_diagnostics):
        for diagnostics in corpus_diagnostics.values():
            for diagnostic in diagnostics:
                assert diagnostic.code in DIAGNOSTIC_CATALOG

    def test_severity_thresholds(self):
        assert severity_for(SEVERITY_ERROR_BITS) == "error"
        assert severity_for(SEVERITY_WARNING_BITS) == "warning"
        assert severity_for(SEVERITY_WARNING_BITS - 0.1) == "info"


class TestKnownUnstable:
    """The acceptance list: programs the paper (and the dynamic
    analysis) identifies as unstable must be statically flagged."""

    @pytest.mark.parametrize(
        "name",
        [
            "paper-csqrt-imag",     # the paper's csqrt case study
            "nmse-ex-3-1",          # sqrt(x+1) - sqrt(x)
            "quadp",                # quadratic formula family
            "quadm",
            "quad-discriminant",
            "heron-area",           # triangle area, naive Heron
            "log1p-naive",
            "diff-squares-naive",
            "hypot-naive",
            "paper-x-plus-1-minus-x",
        ],
    )
    def test_flagged(self, corpus_diagnostics, name):
        severities = {d.severity for d in corpus_diagnostics[name]}
        assert "error" in severities or "warning" in severities, (
            f"{name} should be statically flagged"
        )

    def test_stable_sibling_clean(self, corpus_diagnostics):
        assert corpus_diagnostics["diff-squares-stable"] == []

    def test_cancellation_has_witness_binade(self, corpus_diagnostics):
        cancellations = [
            d
            for d in corpus_diagnostics["diff-squares-naive"]
            if d.code == "S001"
        ]
        assert cancellations
        assert any(d.witness_binade is not None for d in cancellations)


class TestAppKernels:
    def test_pid_kernel_flagged(self):
        from repro.apps.pid import build_pid_program
        from repro.staticanalysis import analyze_program_static

        program = build_pid_program()
        analysis = analyze_program_static(program, [])
        assert analysis.converged
        diagnostics = lint_program(program, analysis=analysis)
        assert any(d.severity in ("error", "warning") for d in diagnostics)

    def test_plotter_kernel_flagged(self):
        from repro.apps.plotter import build_plotter_program
        from repro.staticanalysis import analyze_program_static

        program = build_plotter_program(4, 4)
        analysis = analyze_program_static(program, [])
        assert analysis.converged
        diagnostics = lint_program(program, analysis=analysis)
        assert any(d.severity in ("error", "warning") for d in diagnostics)

    def test_triangle_orient2d_flagged(self):
        from repro.apps.triangle import build_orient2d_program
        from repro.staticanalysis import analyze_program_static

        program = build_orient2d_program()
        analysis = analyze_program_static(program, [])
        assert analysis.converged
        diagnostics = lint_program(program, analysis=analysis)
        assert any(d.code == "S001" for d in diagnostics)


class TestOutputContracts:
    def test_sorted_by_score_desc(self, corpus_diagnostics):
        for diagnostics in corpus_diagnostics.values():
            scores = [d.score_bits for d in diagnostics]
            assert scores == sorted(scores, reverse=True)

    def test_json_safe(self, corpus_diagnostics):
        for diagnostics in corpus_diagnostics.values():
            for diagnostic in diagnostics:
                payload = json.dumps(diagnostic.to_dict())
                decoded = json.loads(payload)
                for key in ("score_bits", "condition_sup", "witness"):
                    value = decoded.get(key)
                    if isinstance(value, float):
                        assert math.isfinite(value)

    def test_min_severity_filters(self):
        core = parse_fpcore(
            "(FPCore (x y) :name \"dsq\" "
            ":pre (and (<= 1e6 x 1e8) (<= 1e6 y 1e8)) "
            "(- (* x x) (* y y)))"
        )
        everything = lint_core(core, min_severity="info")
        errors_only = lint_core(core, min_severity="error")
        assert len(errors_only) <= len(everything)
        assert all(d.severity == "error" for d in errors_only)

    def test_format_mentions_code_and_loc(self):
        core = parse_fpcore(
            "(FPCore (x y) :name \"dsq\" "
            ":pre (and (<= 1e6 x 1e8) (<= 1e6 y 1e8)) "
            "(- (* x x) (* y y)))"
        )
        text = lint_core(core)[0].format()
        assert "S001" in text and "dsq.c:" in text

    def test_snapshot_matches_current_output(self):
        # The CI smoke (scripts/lint_smoke.py) diffs the CLI output
        # against this snapshot; keep the in-process view in sync so a
        # drift is caught by plain pytest too.
        import os

        snapshot_path = os.path.join(
            os.path.dirname(__file__), "expected_lint.json"
        )
        with open(snapshot_path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        current = {
            core.name: [d.to_dict() for d in lint_core(core)]
            for core in load_corpus()
        }
        expected = {
            entry["program"]: entry["diagnostics"]
            for entry in snapshot["programs"]
        }
        assert current == expected
