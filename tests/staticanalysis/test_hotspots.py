"""Hotspot-guided sampling: edge cases and the disabled-path identity."""

import math

import pytest

from repro.api.sampling import precondition_box, sample_inputs
from repro.fpcore import parse_fpcore
from repro.staticanalysis import guided_sample_inputs, input_hotspots

LOG1P_NAIVE = (
    "(FPCore (x) :name \"log1p-naive\" :pre (<= 1e-18 x 1) "
    "(log (+ 1 x)))"
)


class TestInputHotspots:
    def test_log1p_hotspots_favor_tiny_magnitudes(self):
        core = parse_fpcore(LOG1P_NAIVE)
        hotspots = input_hotspots(core)
        assert "x" in hotspots
        bands = hotspots["x"]
        weights = [w for __, __, w in bands]
        assert abs(sum(weights) - 1.0) < 1e-9
        # The statically dangerous regime is x << 1 (log near 1):
        # most of the weight must sit below the range midpoint.
        low_weight = sum(w for lo, hi, w in bands if hi <= 1e-3)
        assert low_weight > 0.5

    def test_benign_program_gets_no_guidance(self):
        core = parse_fpcore(
            "(FPCore (x) :name \"benign\" :pre (<= 1 x 2) (* x x))"
        )
        assert input_hotspots(core) == {}

    def test_zero_spanning_range(self):
        core = parse_fpcore(
            "(FPCore (x) :name \"zs\" :pre (<= -1 x 1) "
            "(log (+ 1 x)))"
        )
        hotspots = input_hotspots(core)
        if "x" in hotspots:
            for lo, hi, weight in hotspots["x"]:
                assert -1.0 <= lo <= hi <= 1.0
                assert weight > 0.0

    def test_point_range_skipped(self):
        core = parse_fpcore(
            "(FPCore (x) :name \"pt\" :pre (<= 2 x 2) (log x))"
        )
        assert "x" not in input_hotspots(core)


class TestGuidedSampling:
    def test_disabled_path_is_rng_identical(self):
        """hotspots=None must reproduce the unguided sampler's draws
        bit for bit — seeds committed in experiments stay valid."""
        core = parse_fpcore(LOG1P_NAIVE)
        baseline = sample_inputs(core, 64, seed=17)
        explicit_none = sample_inputs(core, 64, seed=17, hotspots=None)
        empty_map = sample_inputs(core, 64, seed=17, hotspots={})
        assert baseline == explicit_none == empty_map

    def test_guided_points_respect_precondition(self):
        core = parse_fpcore(LOG1P_NAIVE)
        box = precondition_box(core)
        for point in guided_sample_inputs(core, 128, seed=3):
            (x,) = point
            lo, hi = box["x"]
            assert lo <= x <= hi

    def test_guided_hits_the_dangerous_binades_more(self):
        core = parse_fpcore(LOG1P_NAIVE)
        unguided = sample_inputs(core, 256, seed=5)
        guided = guided_sample_inputs(core, 256, seed=5)
        def tiny(points):
            return sum(1 for (x,) in points if x < 1e-6)

        assert tiny(guided) > tiny(unguided)

    def test_guided_respects_rejection_clauses(self):
        # A :pre with a non-range clause: sampling must keep rejecting
        # against the full precondition, guidance or not.
        core = parse_fpcore(
            "(FPCore (x y) :name \"rej\" "
            ":pre (and (<= 1e-12 x 1) (<= 1e-12 y 1) (< y x)) "
            "(log (/ x y)))"
        )
        for x, y in guided_sample_inputs(core, 32, seed=9):
            assert y < x

    def test_zero_spanning_guided_sampling(self):
        core = parse_fpcore(
            "(FPCore (x) :name \"zs2\" :pre (<= -1 x 1) (log (+ 1 x)))"
        )
        points = guided_sample_inputs(core, 64, seed=11)
        assert len(points) == 64
        for (x,) in points:
            assert -1.0 <= x <= 1.0 and not math.isnan(x)

    def test_unsatisfiable_precondition_still_raises(self):
        core = parse_fpcore(
            "(FPCore (x) :name \"unsat\" "
            ":pre (and (<= 0 x 1) (< x -1)) (log x))"
        )
        with pytest.raises(ValueError):
            guided_sample_inputs(core, 4, seed=0, max_rejections=50)
