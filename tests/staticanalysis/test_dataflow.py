"""The abstract-interpretation fixpoint: scoring, loops, calls, memory."""

import math

from repro.fpcore import parse_fpcore
from repro.machine import FunctionBuilder, Program
from repro.machine.compiler import compile_fpcore
from repro.staticanalysis.dataflow import (
    OVERFLOW_AMP,
    SCORE_CAP,
    analyze_program_static,
)


def _analyze(source, box=None):
    core = parse_fpcore(source)
    program = compile_fpcore(core)
    if box is None:
        from repro.api.sampling import precondition_box

        ranges = precondition_box(core)
        box = [ranges[a] for a in core.arguments]
    return analyze_program_static(program, box)


def _score_at(analysis, loc):
    site = analysis.by_loc().get(loc)
    return 0.0 if site is None else site.score_bits


class TestLocalErrorModel:
    """The site score mirrors the paper's *local error*: rounding
    introduced at this operation, with exactly-representable inputs
    contributing none."""

    def test_naive_difference_of_squares_flagged(self):
        analysis = _analyze(
            "(FPCore (x y) :name \"dsq\" "
            ":pre (and (<= 1e6 x 1e8) (<= 1e6 y 1e8)) "
            "(- (* x x) (* y y)))"
        )
        # The subtraction consumes rounded products and can cancel.
        assert _score_at(analysis, "dsq.c:3") == SCORE_CAP

    def test_stable_difference_of_squares_clean(self):
        analysis = _analyze(
            "(FPCore (x y) :name \"dsqs\" "
            ":pre (and (<= 1e6 x 1e8) (<= 1e6 y 1e8)) "
            "(* (- x y) (+ x y)))"
        )
        # x - y cancels, but both operands are exact reads: the shadow
        # arguments round to themselves, so the site's local error is
        # zero — exactly why the dynamic analysis never flags it.
        assert max((s.score_bits for s in analysis.sites), default=0.0) < 5.0

    def test_cancellation_needs_rounded_operands(self):
        # x + 1 - x: the outer subtraction cancels AND its left operand
        # carries the addition's rounding -> flagged.
        analysis = _analyze(
            "(FPCore (x) :name \"p1\" :pre (<= 1e15 x 1e16) "
            "(- (+ x 1) x))"
        )
        assert _score_at(analysis, "p1.c:3") == SCORE_CAP

    def test_domain_edge_log(self):
        analysis = _analyze(
            "(FPCore (x) :name \"lg\" :pre (<= 1e-18 x 1e-15) "
            "(log (+ 1 x)))"
        )
        site = analysis.by_loc()["lg.c:3"]
        assert site.op == "log"
        assert site.score_bits == SCORE_CAP
        assert "domain-edge" in site.flags


class TestOverflow:
    def test_overflow_charged_at_producer_and_consumer(self):
        analysis = _analyze(
            "(FPCore (x y) :name \"hn\" "
            ":pre (and (<= 1e160 x 1e170) (<= 1e160 y 1e170)) "
            "(sqrt (+ (* x x) (* y y))))"
        )
        by_loc = analysis.by_loc()
        # Producer: x*x can saturate to inf from finite inputs.
        producer = by_loc["hn.c:1"]
        assert "overflow" in producer.flags
        assert producer.amp >= OVERFLOW_AMP
        # Consumer: sqrt of a may-inf value is where the dynamic run
        # observes the ~61-bit inf-vs-finite local error.
        consumer = by_loc["hn.c:4"]
        assert "inf-propagation" in consumer.flags
        assert consumer.score_bits >= 60.0

    def test_no_overflow_taint_in_modest_ranges(self):
        analysis = _analyze(
            "(FPCore (x) :name \"sq\" :pre (<= 1.0 x 1e3) (sqrt (* x x)))"
        )
        for site in analysis.sites:
            assert "overflow" not in site.flags
            assert "inf-propagation" not in site.flags


class TestBranches:
    def test_close_comparison_is_a_branch_site(self):
        analysis = _analyze(
            "(FPCore (x y) :name \"br\" "
            ":pre (and (<= 0 x 1) (<= 0 y 1)) "
            "(if (< (- (+ x y) y) x) 1 0))"
        )
        branches = [s for s in analysis.sites if s.kind == "branch"]
        assert branches
        assert any("unstable-branch" in s.flags for s in branches)

    def test_branch_refinement_narrows_taken_edge(self):
        # if x < 1 then sqrt(1 - x): refinement on the taken edge must
        # prove 1 - x > 0, so sqrt cannot be a domain violation.
        analysis = _analyze(
            "(FPCore (x) :name \"rf\" :pre (<= 0 x 10) "
            "(if (< x 1) (sqrt (- 1 x)) 0))"
        )
        sqrt_sites = [s for s in analysis.sites if s.op == "sqrt"]
        assert sqrt_sites
        assert all(
            "domain-violation" not in s.flags for s in sqrt_sites
        )


class TestLoops:
    def test_widening_terminates_loop(self):
        analysis = _analyze(
            "(FPCore (n) :name \"acc\" :pre (<= 1 n 1000) "
            "(while (< i n) ((i 0 (+ i 1)) (s 0 (+ s 0.1))) s))"
        )
        assert analysis.converged
        assert analysis.visits < 10_000

    def test_accumulated_loop_error_flagged(self):
        analysis = _analyze(
            "(FPCore (n) :name \"acc2\" :pre (<= 1 n 1000) "
            "(while (< i n) ((i 0 (+ i 1)) (s 0 (+ s 0.1))) s))"
        )
        adds = [s for s in analysis.sites if s.op == "+"]
        assert any(s.score_bits > 5.0 for s in adds)


class TestInterprocedural:
    def _program_with_call(self):
        helper = FunctionBuilder("square", params=("a",))
        result = helper.op("*", "a", "a", loc="helper:1")
        helper.ret(result)

        main = FunctionBuilder("main")
        x = main.read(loc="main:arg-x")
        squared = main.call("square", x, loc="main:1")
        y = main.read(loc="main:arg-y")
        ysq = main.call("square", y, loc="main:2")
        diff = main.op("-", squared, ysq, loc="main:3")
        main.out(diff, loc="main:out")
        main.halt()

        program = Program()
        program.add(helper.build())
        program.add(main.build())
        return program

    def test_user_calls_are_analyzed_through(self):
        analysis = analyze_program_static(
            self._program_with_call(), [(1e6, 1e8), (1e6, 1e8)]
        )
        assert analysis.converged
        # The subtraction of two rounded call results can cancel.
        site = analysis.by_loc().get("main:3")
        assert site is not None and site.score_bits > 5.0

    def test_recursion_terminates(self):
        fn = FunctionBuilder("loop", params=("a",))
        bumped = fn.op("+", "a", fn.const(1.0), loc="rec:1")
        result = fn.call("loop", bumped, loc="rec:2")
        fn.ret(result)

        main = FunctionBuilder("main")
        x = main.read(loc="rec:arg")
        out = main.call("loop", x, loc="rec:3")
        main.out(out, loc="rec:out")
        main.halt()

        program = Program()
        program.add(fn.build())
        program.add(main.build())
        analysis = analyze_program_static(program, [(0.0, 1.0)])
        assert analysis.visits < 100_000  # bounded by CALL_DEPTH_LIMIT


class TestMemory:
    def test_store_load_roundtrip_strong_update(self):
        main = FunctionBuilder("main")
        x = main.read(loc="m:arg")
        addr = main.const_int(16)
        main.store(addr, x, loc="m:1")
        loaded = main.load(addr, loc="m:2")
        doubled = main.op("+", loaded, loaded, loc="m:3")
        main.out(doubled, loc="m:out")
        main.halt()
        program = Program()
        program.add(main.build())
        analysis = analyze_program_static(program, [(1.0, 2.0)])
        site = analysis.by_loc()["m:3"]
        # The loaded value kept its [1,2] range: x + x stays in [2,4],
        # far from cancellation.
        assert site.result_lo >= 2.0 - 1e-9
        assert site.result_hi <= 4.0 + 1e-9


class TestRankedOutput:
    def test_ranked_sorts_by_score(self):
        analysis = _analyze(
            "(FPCore (x y) :name \"dsq\" "
            ":pre (and (<= 1e6 x 1e8) (<= 1e6 y 1e8)) "
            "(- (* x x) (* y y)))"
        )
        ranked = analysis.ranked(threshold=0.0)
        scores = [s.score_bits for s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_scores_are_finite_and_capped(self):
        analysis = _analyze(
            "(FPCore (x) :name \"lgx\" :pre (<= 0.5 x 2) (log x))"
        )
        for site in analysis.sites:
            assert not math.isnan(site.score_bits)
            assert site.score_bits <= SCORE_CAP
