"""Interval domain: soundness (randomized containment) and lattice laws."""

import math
import random

import pytest

from repro.staticanalysis.intervals import (
    TOP,
    Interval,
    binade,
    int_transfer,
    transfer,
)

#: Concrete double semantics per op (arity, fn), mirroring the
#: machine engine.
_CONCRETE = {
    "+": (2, lambda a, b: a + b),
    "-": (2, lambda a, b: a - b),
    "*": (2, lambda a, b: a * b),
    "/": (2, lambda a, b: a / b),
    "neg": (1, lambda a: -a),
    "fabs": (1, abs),
    "sqrt": (1, math.sqrt),
    "cbrt": (1, lambda a: math.copysign(abs(a) ** (1.0 / 3.0), a)),
    "exp": (1, math.exp),
    "log": (1, math.log),
    "log2": (1, math.log2),
    "log1p": (1, math.log1p),
    "expm1": (1, math.expm1),
    "sin": (1, math.sin),
    "cos": (1, math.cos),
    "tan": (1, math.tan),
    "asin": (1, math.asin),
    "acos": (1, math.acos),
    "atan": (1, math.atan),
    "atan2": (2, math.atan2),
    "sinh": (1, math.sinh),
    "cosh": (1, math.cosh),
    "tanh": (1, math.tanh),
    "asinh": (1, math.asinh),
    "atanh": (1, math.atanh),
    "hypot": (2, math.hypot),
    "pow": (2, math.pow),
    "fmin": (2, min),
    "fmax": (2, max),
    "copysign": (2, math.copysign),
    "fdim": (2, lambda a, b: max(a - b, 0.0)),
    "fmod": (2, math.fmod),
    "remainder": (2, math.remainder),
    "trunc": (1, lambda a: float(math.trunc(a))),
    "floor": (1, lambda a: float(math.floor(a))),
    "ceil": (1, lambda a: float(math.ceil(a))),
    "fma": (3, lambda a, b, c: a * b + c),
}

#: Boxes exercising sign changes, zero crossings, wide magnitudes,
#: singular points (1.0 for log, ±1 for atanh), and huge ranges.
_BOXES = [
    (0.5, 2.0),
    (-2.0, 2.0),
    (1e-12, 1e12),
    (-1e9, -1e-9),
    (0.9, 1.1),
    (-0.99, 0.99),
    (1.0, 1e300),
    (-5e-324, 5e-324),
]


def _sample(rng, lo, hi):
    if lo == hi:
        return lo
    if lo > 0 and hi / lo > 1e6:
        return math.exp(rng.uniform(math.log(lo), math.log(hi)))
    return rng.uniform(lo, hi)


class TestContainment:
    """For random concrete args inside the abstract box, the concrete
    double result must lie inside (or NaN must be admitted by) the
    transfer result."""

    @pytest.mark.parametrize("op", sorted(_CONCRETE))
    def test_transfer_contains_concrete(self, op):
        arity, fn = _CONCRETE[op]
        rng = random.Random(hash(op) & 0xFFFF)
        checked = 0
        for trial in range(400):
            boxes = [
                _BOXES[rng.randrange(len(_BOXES))] for __ in range(arity)
            ]
            args = [Interval(lo, hi) for lo, hi in boxes]
            abstract = transfer(op, args)
            concrete_args = [_sample(rng, lo, hi) for lo, hi in boxes]
            try:
                value = fn(*concrete_args)
            except (ValueError, OverflowError, ZeroDivisionError):
                # A domain/range error concretely maps to NaN or ±inf
                # in IEEE semantics; either is admitted by TOP-ish
                # results and may_nan covers the NaN cases.  The
                # containment claim is only about finite evaluations.
                continue
            if isinstance(value, complex):
                continue
            if math.isnan(value):
                assert abstract.may_nan, (
                    f"{op}{concrete_args} is NaN but {abstract} denies it"
                )
                continue
            checked += 1
            assert abstract.lo <= value <= abstract.hi or (
                math.isinf(value)
                and (abstract.lo == value or abstract.hi == value)
            ), f"{op}{concrete_args} = {value} outside {abstract}"
        assert checked > 0

    def test_unknown_op_is_top(self):
        result = transfer("mystery-op", [Interval(1.0, 2.0)])
        assert result.lo == -math.inf and result.hi == math.inf

    def test_int_transfer_contains(self):
        rng = random.Random(7)
        for op, fn in [
            ("iadd", lambda a, b: a + b),
            ("isub", lambda a, b: a - b),
            ("imul", lambda a, b: a * b),
        ]:
            x, y = Interval(-9.0, 7.0), Interval(2.0, 5.0)
            abstract = int_transfer(op, x, y)
            for __ in range(100):
                a = rng.randint(-9, 7)
                b = rng.randint(2, 5)
                assert abstract.lo <= fn(a, b) <= abstract.hi


class TestNaNTracking:
    def test_inf_minus_inf(self):
        result = transfer("-", [TOP, TOP])
        assert result.may_nan

    def test_sqrt_of_mixed_sign(self):
        result = transfer("sqrt", [Interval(-1.0, 4.0)])
        assert result.may_nan
        assert result.hi == 2.0

    def test_sqrt_of_positive_is_clean(self):
        result = transfer("sqrt", [Interval(1.0, 4.0)])
        assert not result.may_nan
        assert (result.lo, result.hi) == (1.0, 2.0)

    def test_log_of_possibly_nonpositive(self):
        assert transfer("log", [Interval(-1.0, 2.0)]).may_nan
        assert not transfer("log", [Interval(0.5, 2.0)]).may_nan

    def test_nan_endpoint_becomes_top(self):
        v = Interval(math.nan, 1.0)
        assert v.may_nan
        assert v.lo == -math.inf


class TestLattice:
    def test_hull_is_commutative_and_contains(self):
        a, b = Interval(0.0, 2.0), Interval(1.0, 5.0, may_nan=True)
        h = a.hull(b)
        assert h.lo == 0.0 and h.hi == 5.0 and h.may_nan
        h2 = b.hull(a)
        assert (h2.lo, h2.hi, h2.may_nan) == (h.lo, h.hi, h.may_nan)

    def test_widen_jumps_growing_endpoints(self):
        older = Interval(0.0, 1.0)
        newer = Interval(-0.5, 2.0)
        widened = older.widen(newer)
        assert widened.lo == -math.inf and widened.hi == math.inf

    def test_widen_keeps_stable_endpoints(self):
        older = Interval(0.0, 1.0)
        newer = Interval(0.0, 2.0)
        widened = older.widen(newer)
        assert widened.lo == 0.0
        assert widened.hi == math.inf

    def test_meet_refines(self):
        refined = Interval(0.0, 10.0).meet(hi=3.0)
        assert (refined.lo, refined.hi) == (0.0, 3.0)

    def test_meet_empty_is_none(self):
        assert Interval(0.0, 1.0).meet(lo=2.0) is None

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)


class TestQueries:
    def test_overflow_underflow_flags(self):
        assert Interval(1e308, math.inf).may_overflow()
        assert not Interval(0.0, 1e300).may_overflow()
        assert Interval(1e-320, 1.0).may_underflow()
        assert not Interval(1e-300, 1.0).may_underflow()

    def test_binade(self):
        assert binade(1.0) == 0
        assert binade(1.5) == 0
        assert binade(2.0) == 1
        assert binade(0.25) == -2
        assert binade(0.0) is None
        assert binade(math.inf) is None
