"""StaticReport attach/strip parity and the cross_check contract."""

import json

import pytest

from repro.api import AnalysisSession
from repro.core import AnalysisConfig
from repro.fpcore import parse_fpcore
from repro.staticanalysis import StaticReport, cross_check, static_report

DSQ = (
    "(FPCore (x y) :name \"dsq\" "
    ":pre (and (<= 1e6 x 1e8) (<= 1e6 y 1e8)) "
    "(- (* x x) (* y y)))"
)


def _session():
    return AnalysisSession(
        config=AnalysisConfig(shadow_precision=128), num_points=4, seed=0
    )


class TestAttach:
    def test_report_attached_by_default(self):
        result = _session().analyze(parse_fpcore(DSQ))
        report = result.extra.get("static")
        assert isinstance(report, StaticReport)
        assert report.program == "dsq"
        assert report.converged
        assert report.agreement is not None

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STATIC", "0")
        result = _session().analyze(parse_fpcore(DSQ))
        assert "static" not in result.extra

    def test_serialization_is_byte_identical_on_and_off(self, monkeypatch):
        core = parse_fpcore(DSQ)
        with_static = _session().analyze(core)
        monkeypatch.setenv("REPRO_STATIC", "0")
        without_static = _session().analyze(core)
        assert "static" in with_static.extra
        assert "static" not in without_static.extra
        assert with_static.to_json() == without_static.to_json()
        assert "static" not in json.loads(with_static.to_json()).get(
            "extra", {}
        )

    def test_strip_preserves_other_extra_keys(self):
        result = _session().analyze(parse_fpcore(DSQ))
        result.extra["note"] = "kept"
        assert result.to_dict()["extra"].get("note") == "kept"
        assert "static" not in result.to_dict()["extra"]


class TestRankedLocs:
    def test_threshold_filters_sites(self):
        report = static_report(core=parse_fpcore(DSQ))
        everything = set(report.ranked_locs(threshold=-1.0))
        ranked = set(report.ranked_locs())
        assert ranked <= everything
        assert "dsq.c:3" in ranked  # the cancelling subtraction


class TestCrossCheck:
    def _record(self, loc, bits):
        return type("Rec", (), {"loc": loc, "max_local_error": bits})()

    def test_matched_and_missed(self):
        report = static_report(core=parse_fpcore(DSQ))
        records = [
            self._record("dsq.c:3", 45.0),       # statically ranked
            self._record("nowhere.c:9", 12.0),   # unknown to static
        ]
        agreement = cross_check(report, records)
        assert agreement["matched"] == ["dsq.c:3"]
        assert [m["loc"] for m in agreement["missed"]] == ["nowhere.c:9"]
        assert agreement["fraction"] == pytest.approx(0.5)
        assert report.agreement is agreement

    def test_empty_records_are_vacuously_full_agreement(self):
        report = static_report(core=parse_fpcore(DSQ))
        agreement = cross_check(report, [])
        assert agreement["dynamic_sites"] == 0
        assert agreement["fraction"] == 1.0

    def test_accepts_serialized_record_shape(self):
        report = static_report(core=parse_fpcore(DSQ))
        stats = type("Stats", (), {"max_bits": 30.0})()
        record = type("Rec", (), {"loc": "dsq.c:3", "local_error": stats})()
        agreement = cross_check(report, [record])
        assert agreement["matched"] == ["dsq.c:3"]

    def test_report_round_trips_through_json(self):
        report = static_report(core=parse_fpcore(DSQ))
        cross_check(report, [])
        payload = json.dumps(report.to_dict(), sort_keys=True)
        decoded = json.loads(payload)
        assert decoded["program"] == "dsq"
        assert decoded["agreement"]["fraction"] == 1.0
