"""Condition-number suprema: formulas, singularities, witnesses."""

import math

from repro.staticanalysis.condition import EXACT_OPS, condition
from repro.staticanalysis.intervals import Interval, transfer


def _cond(op, *boxes):
    args = [Interval(lo, hi) for lo, hi in boxes]
    return condition(op, args, transfer(op, args))


class TestCancellation:
    def test_subtraction_spanning_zero_is_unbounded(self):
        conds = _cond("-", (1.0, 2.0), (1.0, 2.0))
        assert conds.sups == (math.inf, math.inf)

    def test_subtraction_well_separated_is_modest(self):
        conds = _cond("-", (10.0, 11.0), (1.0, 2.0))
        # |x| / |x - y| <= 11 / 8
        assert 1.0 <= conds.max_sup <= 11.0 / 8.0 + 1e-12

    def test_addition_same_sign_is_benign(self):
        conds = _cond("+", (1.0, 2.0), (1.0, 2.0))
        assert conds.max_sup <= 1.0

    def test_witness_is_largest_magnitude_endpoint(self):
        conds = _cond("-", (1.0, 2.0), (1.0, 2.0))
        assert conds.witnesses[0] == 2.0

    def test_fma_cancellation_over_product(self):
        # a*b in [1, 4], c in [-4, -1]: the add can cancel totally.
        conds = _cond("fma", (1.0, 2.0), (1.0, 2.0), (-4.0, -1.0))
        assert math.isinf(conds.max_sup)


class TestMultiplicative:
    def test_mul_div_are_unit(self):
        assert _cond("*", (1e-5, 1e5), (-3.0, 7.0)).max_sup == 1.0
        assert _cond("/", (1.0, 2.0), (3.0, 4.0)).max_sup == 1.0

    def test_sqrt_is_half(self):
        assert _cond("sqrt", (1.0, 100.0)).max_sup == 0.5

    def test_exp_grows_with_argument(self):
        assert _cond("exp", (0.0, 700.0)).max_sup == 700.0


class TestLogFamily:
    def test_log_singular_at_one(self):
        conds = _cond("log", (0.5, 2.0))
        assert math.isinf(conds.max_sup)
        assert conds.witnesses[0] == 1.0

    def test_log_away_from_one_is_finite(self):
        conds = _cond("log", (math.e, math.e**2))
        assert conds.max_sup <= 1.0 + 1e-12

    def test_log_approaching_one_blows_up(self):
        near = _cond("log", (1.0 + 1e-12, 2.0))
        far = _cond("log", (1.5, 2.0))
        assert near.max_sup > 1e10 > far.max_sup

    def test_log1p_singular_at_minus_one(self):
        conds = _cond("log1p", (-0.999999, 1.0))
        assert conds.max_sup > 1e4


class TestTrig:
    def test_sin_near_pi_is_singular(self):
        conds = _cond("sin", (3.0, 3.3))
        assert conds.max_sup > 1e10

    def test_sin_near_zero_is_benign(self):
        # x cot x -> 1 as x -> 0: the zero at the origin is removable.
        conds = _cond("sin", (-0.5, 0.5))
        assert conds.max_sup < 10.0

    def test_sin_huge_range_terminates_fast(self):
        # Regression: pole enumeration over wide ranges must use
        # k-index arithmetic, not iterate over every period.
        conds = _cond("sin", (-1e9, 1e9))
        assert math.isinf(conds.max_sup) or conds.max_sup > 1e8

    def test_cos_near_half_pi(self):
        conds = _cond("cos", (1.5, 1.6))
        assert conds.max_sup > 1e10


class TestInverse:
    def test_asin_near_one(self):
        conds = _cond("asin", (0.9999999, 1.0))
        assert conds.max_sup > 1e3

    def test_atanh_near_one(self):
        conds = _cond("atanh", (0.99, 1.0))
        assert conds.max_sup > 1e2


class TestPow:
    def test_pow_cond_in_x_is_exponent(self):
        conds = _cond("pow", (2.0, 3.0), (10.0, 10.0))
        assert conds.sups[0] == 10.0

    def test_pow_cond_in_y_involves_log(self):
        conds = _cond("pow", (math.e, math.e), (1.0, 5.0))
        # |y ln x| = |y| at x = e
        assert abs(conds.sups[1] - 5.0) < 1e-9


class TestRho:
    def test_exact_ops_contribute_no_rounding(self):
        for op in ("neg", "fabs", "fmin", "fmax", "copysign"):
            boxes = [(1.0, 2.0)] * (1 if op in ("neg", "fabs") else 2)
            assert _cond(op, *boxes).rho == 0.0
            assert op in EXACT_OPS

    def test_rounding_ops_contribute_one_ulp(self):
        assert _cond("+", (1.0, 2.0), (1.0, 2.0)).rho == 1.0
        assert _cond("sqrt", (1.0, 4.0)).rho == 1.0

    def test_inf_over_inf_guard(self):
        # Saturated argument intervals must not produce NaN sups.
        conds = _cond("+", (1e308, math.inf), (1e308, math.inf))
        for sup in conds.sups:
            assert not math.isnan(sup)
