"""The static-vs-dynamic agreement contract, corpus-wide.

Every dynamically flagged root-cause location must be statically
ranked (a site at the same loc scoring above the dynamic threshold),
or appear in :data:`ALLOWLIST` with a written reason.  Interval
analysis over-approximates, so the static pass ranking *extra* sites
is fine; missing a dynamically confirmed one is a bug unless the miss
is a documented interval-domain limitation.
"""

import pytest

from repro.api import AnalysisSession
from repro.core import AnalysisConfig
from repro.fpcore import load_corpus
from repro.staticanalysis import cross_check, static_report

#: Dynamic sites the static pass is excused from ranking, with the
#: reason.  Keyed by (benchmark name, loc).  Currently empty: the
#: corpus agreement is 100%.
ALLOWLIST = {
    # ("midpoint-stable", "midpoint-stable.c:1"):
    #     "interval domain cannot express the a/(b-a) correlation",
}

MIN_AGREEMENT = 0.80


@pytest.fixture(scope="module")
def corpus_results():
    session = AnalysisSession(
        config=AnalysisConfig(shadow_precision=256), num_points=8, seed=0
    )
    corpus = load_corpus()
    return [(core, session.analyze(core)) for core in corpus]


def test_every_dynamic_site_is_statically_ranked(corpus_results):
    matched = 0
    missed = []
    for core, result in corpus_results:
        dynamic_locs = sorted({c.loc for c in result.root_causes if c.loc})
        if not dynamic_locs:
            continue
        report = result.extra.get("static")
        if report is None:
            report = static_report(core=core)
        ranked = set(report.ranked_locs())
        for loc in dynamic_locs:
            if loc in ranked:
                matched += 1
            elif (core.name, loc) in ALLOWLIST:
                matched += 1
            else:
                missed.append((core.name, loc))
    total = matched + len(missed)
    assert total > 0, "corpus produced no dynamic root causes at all"
    fraction = matched / total
    assert fraction >= MIN_AGREEMENT, (
        f"static-dynamic agreement {fraction:.1%} < {MIN_AGREEMENT:.0%}; "
        f"missed: {missed}"
    )
    # Stronger check: every miss must be allowlisted (the fraction
    # gate is the acceptance criterion; this keeps the allowlist
    # honest and forces a written reason for every new disagreement).
    assert not missed, f"unallowlisted static misses: {missed}"


def test_allowlist_entries_are_real_locations(corpus_results):
    """Allowlist rot check: every excused loc must still be one the
    dynamic analysis actually flags."""
    dynamic = {
        (core.name, cause.loc)
        for core, result in corpus_results
        for cause in result.root_causes
        if cause.loc
    }
    for key, reason in ALLOWLIST.items():
        assert reason, f"allowlist entry {key} needs a reason"
        assert key in dynamic, f"allowlist entry {key} is stale"


def test_agreement_recorded_on_attached_report(corpus_results):
    """The backend's attach path must have run cross_check itself."""
    for core, result in corpus_results:
        report = result.extra.get("static")
        if report is None:
            continue
        assert report.agreement is not None
        agreement = cross_check(report, [])
        assert agreement["fraction"] == 1.0  # vacuous truth: no records
