"""Shared harness for the serving tests.

``ServerHarness`` runs a real :class:`repro.serve.ReproServer` (real
sockets, real worker processes) on a background thread's event loop so
synchronous tests can drive it with :class:`repro.serve.ServeClient`.

``selective_worker_main`` is a drop-in for the pool's default worker
that reads directives out of the benchmark *name* — ``crash-me`` dies
with ``os._exit``, ``slowpoke`` sleeps before computing — so tests can
provoke worker crashes, timeouts, and queue backpressure with plain,
valid ``AnalysisRequest`` payloads flowing through the full stack.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve.server import ReproServer
from repro.serve.service import AnalysisService

#: Seconds a "slowpoke" benchmark stalls its worker.
SLOW_SECONDS = 0.6


def selective_worker_main(conn):
    """The default analysis worker, plus test directives by name."""
    import os
    import time

    from repro.api.requests import AnalysisRequest
    from repro.api.session import _execute

    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break
        if payload is None:
            break
        replies = []
        for data in payload:
            core = data.get("core", "") if isinstance(data, dict) else ""
            if "crash-me" in core:
                os._exit(3)
            if "slowpoke" in core:
                time.sleep(SLOW_SECONDS)
            try:
                request = AnalysisRequest.from_dict(data)
                replies.append(("ok", _execute(request).to_json()))
            except Exception as exc:  # noqa: BLE001
                replies.append(("error", type(exc).__name__, str(exc)))
        conn.send(replies)


class ServerHarness:
    """One server + service on a dedicated event-loop thread."""

    def __init__(self, **service_kwargs) -> None:
        self.service = None
        self.server = None
        self.port = None
        self.error = None
        self._loop = None
        self._stop_event = None
        self._drain = True
        self._stopped = False
        self._ready = threading.Event()
        self._service_kwargs = service_kwargs
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._amain()), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("server did not come up in 60s")
        if self.error is not None:
            raise self.error

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self.service = AnalysisService(**self._service_kwargs)
            self.server = ReproServer(self.service)
            _, self.port = await self.server.start()
        except Exception as exc:  # noqa: BLE001 — reported to the test
            self.error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop(drain=self._drain)

    def stop(self, drain: bool = True) -> None:
        if self._stopped or self.error is not None:
            return
        self._stopped = True
        self._drain = drain
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=60)
        if self._thread.is_alive():
            raise RuntimeError("server did not shut down in 60s")

    def client(self):
        from repro.serve.client import ServeClient

        return ServeClient(port=self.port)


@pytest.fixture()
def selective_worker():
    """The directive-aware worker main (tests/ has no package path)."""
    return selective_worker_main


@pytest.fixture()
def harness_factory():
    """Build harnesses that are always stopped at test exit."""
    created = []

    def make(**service_kwargs) -> ServerHarness:
        harness = ServerHarness(**service_kwargs)
        created.append(harness)
        return harness

    yield make
    for harness in created:
        harness.stop()
