"""End-to-end serving tests: real sockets, real worker processes.

The headline guarantees pinned here:

* served ``AnalysisResult`` JSON is **byte-identical** to an
  in-process :class:`AnalysisSession` for the same request, across
  engine × precision-policy × substrate,
* N identical concurrent requests perform exactly one computation,
* queue saturation is HTTP 429, worker death is structured 500,
  analysis timeout is structured 504 — never a hung connection,
* graceful shutdown drains in-flight work,
* multiple server processes share one store directory.
"""

import concurrent.futures
import http.client
import json
import threading

import pytest

from repro.api import AnalysisSession, request_digest
from repro.api.store import ShardedResultStore
from repro.bigfloat.backend import substrate_provider
from repro.core import AnalysisConfig
from repro.serve import ServeError, WorkerPool

CORE = "(FPCore (x) :name \"t\" :pre (<= 1e16 x 1e17) (- (+ x 1) x))"
CLEAN = "(FPCore (x) :name \"ok\" :pre (<= 1 x 2) (+ x 1))"
SLOW = "(FPCore (x) :name \"slowpoke\" :pre (<= 1 x 2) (+ x 1))"
CRASH = "(FPCore (x) :name \"crash-me\" :pre (<= 1 x 2) (+ x 1))"
FAST = AnalysisConfig(shadow_precision=96)


def _session(config=FAST):
    return AnalysisSession(config=config, num_points=3)


class TestRoundTripParity:
    def test_served_json_matches_in_process_across_stacks(
        self, harness_factory, tmp_path
    ):
        harness = harness_factory(
            store=ShardedResultStore(str(tmp_path)), workers=2
        )
        with harness.client() as client:
            for engine in ("compiled", "reference"):
                for policy in ("fixed", "adaptive"):
                    for substrate in ("python", "native"):
                        config = AnalysisConfig(
                            shadow_precision=256, engine=engine,
                            precision_policy=policy, substrate=substrate,
                        )
                        session = _session(config)
                        request = session.request(CORE)
                        expected = session.analyze(request).to_json()
                        reply = client.analyze(request)
                        label = (engine, policy, substrate)
                        assert reply.status == 200, label
                        assert reply.text == expected, label
                        assert reply.digest == request_digest(request)
                        # And again, warm: same bytes from the store.
                        warm = client.analyze(request)
                        assert warm.text == expected, label
                        assert warm.source in ("memory", "store")

    def test_get_result_and_health_and_stats(
        self, harness_factory, tmp_path
    ):
        harness = harness_factory(
            store=ShardedResultStore(str(tmp_path)), workers=1
        )
        session = _session()
        request = session.request(CORE)
        with harness.client() as client:
            assert client.health()["status"] == "ok"
            with pytest.raises(ServeError) as excinfo:
                client.result_text(request_digest(request))
            assert excinfo.value.status == 404
            assert excinfo.value.error_type == "not_found"
            computed = client.analyze(request)
            stored = client.result_text(request_digest(request))
            assert stored.text == computed.text
            stats = client.stats()
            assert stats["service"]["computed"] == 1
            assert stats["pool"]["workers"] == 1
            assert stats["store"]["writes"] == 1

    def test_unknown_route_and_method(self, harness_factory):
        harness = harness_factory(workers=1)
        with harness.client() as client:
            with pytest.raises(ServeError) as excinfo:
                client._exchange("GET", "/v2/nope")
            assert excinfo.value.status == 404
            with pytest.raises(ServeError) as excinfo:
                client._exchange("POST", "/v1/health", {})
            assert excinfo.value.status == 405

    def test_malformed_json_body_is_400(self, harness_factory):
        harness = harness_factory(workers=1)
        conn = http.client.HTTPConnection(
            "127.0.0.1", harness.port, timeout=30
        )
        try:
            conn.request("POST", "/v1/analyze", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["type"] == "invalid_json"
        finally:
            conn.close()


class TestConcurrency:
    def test_identical_concurrent_requests_compute_once(
        self, harness_factory, tmp_path
    ):
        harness = harness_factory(
            store=ShardedResultStore(str(tmp_path)), workers=2
        )
        # Enough points that the analysis is still in flight when the
        # last client's request lands — otherwise late arrivals become
        # memory hits instead of dedupe hits and the test flakes.
        request = _session().request(CORE, num_points=256)
        n = 6
        barrier = threading.Barrier(n)

        def fire():
            with harness.client() as client:
                barrier.wait()
                reply = client.analyze(request)
                return reply.source, reply.text

        with concurrent.futures.ThreadPoolExecutor(n) as executor:
            outcomes = list(executor.map(
                lambda _: fire(), range(n)
            ))
        texts = {text for _, text in outcomes}
        assert len(texts) == 1  # everyone saw the same bytes
        with harness.client() as client:
            stats = client.stats()
        assert stats["service"]["computed"] == 1  # exactly one run
        assert stats["service"]["dedupe_hits"] >= 1

    def test_backpressure_returns_429(self, harness_factory,
                                      selective_worker):
        pool = WorkerPool(workers=1, queue_limit=1, timeout=None,
                          worker_main=selective_worker)
        harness = harness_factory(pool=pool)
        session = _session()
        # Distinct digests so dedupe cannot absorb the flood.
        slow_requests = [
            session.request(SLOW, seed=i).to_dict() for i in range(8)
        ]

        def fire(data):
            with harness.client() as client:
                try:
                    return client.analyze(data).status
                except ServeError as error:
                    return error.status

        with concurrent.futures.ThreadPoolExecutor(8) as executor:
            statuses = list(executor.map(fire, slow_requests))
        # The worker holds one, the queue one more; the rest are shed.
        assert statuses.count(429) >= 1
        assert statuses.count(200) >= 1
        assert all(status in (200, 429) for status in statuses)
        with harness.client() as client:
            assert client.stats()["service"]["rejected"] >= 1

    def test_worker_crash_is_structured_500(self, harness_factory,
                                            selective_worker):
        pool = WorkerPool(workers=1, worker_main=selective_worker)
        harness = harness_factory(pool=pool)
        session = _session()
        with harness.client() as client:
            with pytest.raises(ServeError) as excinfo:
                client.analyze(session.request(CRASH))
            assert excinfo.value.status == 500
            assert excinfo.value.error_type == "worker_crashed"
            assert excinfo.value.digest == request_digest(
                session.request(CRASH)
            )
            # The pool respawned: the server still serves.
            assert client.analyze(session.request(CLEAN)).status == 200

    def test_timeout_is_structured_504(self, harness_factory,
                                       selective_worker):
        pool = WorkerPool(workers=1, timeout=0.2,
                          worker_main=selective_worker)
        harness = harness_factory(pool=pool)
        session = _session()
        with harness.client() as client:
            with pytest.raises(ServeError) as excinfo:
                client.analyze(session.request(SLOW))
            assert excinfo.value.status == 504
            assert excinfo.value.error_type == "analysis_timeout"
            assert client.analyze(session.request(CLEAN)).status == 200
            assert client.stats()["service"]["timeouts"] == 1


class TestMultiProcessStore:
    def test_two_servers_share_one_store(self, harness_factory, tmp_path):
        store_root = str(tmp_path)
        first = harness_factory(
            store=ShardedResultStore(store_root), workers=1
        )
        second = harness_factory(
            store=ShardedResultStore(store_root), workers=1
        )
        request = _session().request(CORE)
        with first.client() as client:
            cold = client.analyze(request)
        assert cold.source == "computed"
        with second.client() as client:
            warm = client.analyze(request)
        assert warm.source == "store"  # no recomputation on server two
        assert warm.text == cold.text


class TestGracefulShutdown:
    def test_inflight_request_completes_through_drain(
        self, harness_factory, selective_worker
    ):
        pool = WorkerPool(workers=1, timeout=None,
                          worker_main=selective_worker)
        harness = harness_factory(pool=pool)
        request = _session().request(SLOW)
        outcome = {}

        def fire():
            with harness.client() as client:
                reply = client.analyze(request)
                outcome["status"] = reply.status
                outcome["source"] = reply.source

        thread = threading.Thread(target=fire)
        thread.start()
        # Wait until the slow request is actually on the worker.
        deadline = threading.Event()
        for _ in range(200):
            if harness.service.pool.stats()["active"] > 0:
                break
            deadline.wait(0.01)
        harness.stop(drain=True)  # must wait for the in-flight reply
        thread.join(timeout=60)
        assert outcome == {"status": 200, "source": "computed"}
        # And the listener is really gone now.
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection(
                "127.0.0.1", harness.port, timeout=5
            )
            conn.request("GET", "/v1/health")
            conn.getresponse()


def test_native_substrate_resolution_is_visible():
    # The parity matrix above exercises substrate="native"; on a box
    # without gmpy2/mpmath it resolves to the python kernels — either
    # way the serving results must match in-process ones, which the
    # matrix asserts.  This pins which provider actually served it.
    assert substrate_provider("native") in ("gmpy2", "mpmath", "python")
