"""The sharded result store: layout, atomicity, legacy compatibility,
and concurrent multi-process safety."""

import hashlib
import json
import multiprocessing
import os

import pytest

from repro.api.store import ShardedResultStore, is_digest


def _digest(tag) -> str:
    return hashlib.sha256(str(tag).encode()).hexdigest()


def _json_files(root):
    found = []
    for dirpath, _, names in os.walk(root):
        found.extend(os.path.join(dirpath, n)
                     for n in names if n.endswith(".json"))
    return sorted(found)


class TestLayout:
    def test_sharded_path(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        digest = _digest("a")
        assert store.path(digest) == os.path.join(
            str(tmp_path), digest[:2], f"{digest}.json"
        )

    def test_roundtrip(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        digest = _digest("a")
        text = json.dumps({"v": 1})
        assert store.get_text(digest) is None
        assert store.put_text(digest, text)
        assert store.get_text(digest) == text
        assert digest in store
        assert os.path.exists(store.path(digest))
        assert store.stats()["hits"] == 1
        assert store.stats()["misses"] == 1
        assert store.stats()["writes"] == 1

    def test_rejects_non_digest_keys(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        for bad in ("", "abc", "../../etc/passwd", "A" * 64, "g" * 64,
                    _digest("x")[:-1]):
            assert not is_digest(bad)
            with pytest.raises(ValueError):
                store.path(bad)
            assert bad not in store

    def test_overwrite_is_atomic_last_wins(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        digest = _digest("a")
        store.put_text(digest, '{"v": "first"}')
        store.put_text(digest, '{"v": "second"}')
        assert store.get_text(digest) == '{"v": "second"}'
        assert len(_json_files(tmp_path)) == 1

    def test_iter_and_len(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        digests = {_digest(i) for i in range(20)}
        for d in digests:
            store.put_text(d, "{}")
        assert set(store.iter_digests()) == digests
        assert len(store) == 20

    def test_unwritable_root_is_not_fatal(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file, not a directory")
        store = ShardedResultStore(str(blocker))
        assert store.put_text(_digest("a"), "{}") is False
        assert store.stats()["write_errors"] == 1
        assert store.get_text(_digest("a")) is None


class TestLegacyLayout:
    def test_flat_entries_are_read_and_promoted(self, tmp_path):
        digest = _digest("legacy")
        flat = tmp_path / f"{digest}.json"
        flat.write_text('{"legacy": true}')
        store = ShardedResultStore(str(tmp_path))
        assert digest in store
        assert store.get_text(digest) == '{"legacy": true}'
        assert store.stats()["legacy_hits"] == 1
        # Promoted: the sharded copy now exists and is preferred.
        assert os.path.exists(store.path(digest))
        assert store.get_text(digest) == '{"legacy": true}'
        assert store.stats()["legacy_hits"] == 1  # second read: sharded

    def test_legacy_read_can_be_disabled(self, tmp_path):
        digest = _digest("legacy")
        (tmp_path / f"{digest}.json").write_text("{}")
        store = ShardedResultStore(str(tmp_path), read_legacy=False)
        assert store.get_text(digest) is None
        assert digest not in store

    def test_iter_covers_both_layouts_without_duplicates(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        sharded = _digest("s")
        both = _digest("b")
        legacy = _digest("l")
        store.put_text(sharded, "{}")
        store.put_text(both, "{}")
        (tmp_path / f"{both}.json").write_text("{}")
        (tmp_path / f"{legacy}.json").write_text("{}")
        assert sorted(store.iter_digests()) == sorted(
            {sharded, both, legacy}
        )


def _writer_job(args):
    """Worker: hammer one shared store with interleaved writes/reads."""
    root, worker_id, rounds = args
    store = ShardedResultStore(root)
    ok = 0
    for round_no in range(rounds):
        # Everyone writes the same digests (same canonical payload, as
        # identical requests produce) plus a private one.
        shared = _digest(f"shared-{round_no}")
        private = _digest(f"private-{worker_id}-{round_no}")
        payload = json.dumps({"round": round_no}, sort_keys=True)
        store.put_text(shared, payload)
        store.put_text(private, payload)
        read = store.get_text(shared)
        if read is not None and json.loads(read)["round"] in range(rounds):
            ok += 1
    return ok


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required",
)
class TestConcurrentMultiProcess:
    def test_parallel_writers_one_store(self, tmp_path):
        root = str(tmp_path)
        workers, rounds = 4, 25
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(workers) as pool:
            results = pool.map(
                _writer_job, [(root, i, rounds) for i in range(workers)]
            )
        # Every interleaved read saw a complete, parseable entry.
        assert results == [rounds] * workers
        store = ShardedResultStore(root)
        # rounds shared + workers*rounds private entries, all readable.
        assert len(store) == rounds + workers * rounds
        for digest in store.iter_digests():
            json.loads(store.get_text(digest))
        # Atomic writes leave no temp droppings behind.
        leftovers = [
            name for _, __, names in os.walk(root) for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestTruncatedWriteRegression:
    """A killed writer's partial entry must read as a miss, not a
    crash or a served half-result (regression for the read-side
    hardening; the full corruption matrix lives in
    ``tests/resilience/test_store_corruption.py``)."""

    def test_injected_truncated_write_is_quarantined(self, tmp_path):
        from repro.resilience import faults

        store = ShardedResultStore(str(tmp_path))
        digest = _digest("torn")
        payload = json.dumps({"value": 42})
        with faults.injected("store.write.truncate:times=1"):
            store.put_text(digest, payload)
        assert store.get_text(digest) is None          # never served
        assert os.path.exists(store.path(digest) + ".quarantine")
        assert store.stats()["quarantined"] == 1
        store.put_text(digest, payload)                # recompute path
        assert store.get_text(digest) == payload
