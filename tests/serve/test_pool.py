"""The supervised worker pool: replies, timeouts, crashes, backpressure,
and graceful shutdown — all at the pool layer, below HTTP."""

import time

import pytest

from repro.core import AnalysisConfig
from repro.api import AnalysisSession
from repro.serve.pool import (
    AnalysisTimeout,
    PoolClosed,
    QueueFull,
    WorkerCrashed,
    WorkerPool,
)

CORE = "(FPCore (x) :name \"t\" :pre (<= 1e16 x 1e17) (- (+ x 1) x))"
FAST = AnalysisConfig(shadow_precision=96)


def echo_worker_main(conn):
    """Replies ("ok", repr(payload-item)) without any analysis."""
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break
        if payload is None:
            break
        conn.send([("ok", repr(item)) for item in payload])


def sleepy_worker_main(conn):
    """Sleeps item["seconds"] per item before echoing."""
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break
        if payload is None:
            break
        replies = []
        for item in payload:
            time.sleep(item.get("seconds", 0.0))
            replies.append(("ok", "slept"))
        conn.send(replies)


def crashy_worker_main(conn):
    """Dies hard on {"crash": True}, echoes otherwise."""
    import os

    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break
        if payload is None:
            break
        if any(item.get("crash") for item in payload):
            os._exit(3)
        conn.send([("ok", "fine") for _ in payload])


class TestDispatch:
    def test_echo_roundtrip_in_shard_order(self):
        with WorkerPool(workers=2, worker_main=echo_worker_main) as pool:
            future = pool.submit([{"a": 1}, {"b": 2}])
            assert future.result(timeout=10) == [
                ("ok", repr({"a": 1})), ("ok", repr({"b": 2}))
            ]
            assert pool.stats()["completed"] == 1

    def test_real_analysis_matches_in_process_json(self):
        session = AnalysisSession(config=FAST, num_points=3)
        request = session.request(CORE)
        expected = session.analyze(request).to_json()
        with WorkerPool(workers=1) as pool:
            [reply] = pool.submit([request.to_dict()]).result(
                timeout=120
            )
        # The third element, when present, is the process-local sidecar
        # (degradation trail / tier residency) — never part of the JSON.
        tag, text = reply[0], reply[1]
        assert tag == "ok"
        assert text == expected

    def test_analysis_failure_is_a_reply_not_an_exception(self):
        # A free variable the compiler rejects: the worker answers
        # ("error", ...) and stays alive for the next task.
        bad = {"core": "(FPCore (x) (+ x y))", "num_points": 2}
        good = {"core": CORE, "num_points": 2,
                "config": {"shadow_precision": 96}}
        with WorkerPool(workers=1) as pool:
            [reply] = pool.submit([bad]).result(timeout=60)
            assert reply[0] == "error"
            assert reply[1]  # the exception type name
            [reply] = pool.submit([good]).result(timeout=120)
            assert reply[0] == "ok"
            assert pool.stats()["crashes"] == 0
            assert pool.stats()["restarts"] == 0


class TestSupervision:
    def test_timeout_kills_and_recovers(self):
        with WorkerPool(workers=1, timeout=0.3,
                        worker_main=sleepy_worker_main) as pool:
            slow = pool.submit([{"seconds": 30.0}])
            with pytest.raises(AnalysisTimeout):
                slow.result(timeout=30)
            # The worker was killed and respawned; the pool still works.
            quick = pool.submit([{"seconds": 0.0}])
            assert quick.result(timeout=30) == [("ok", "slept")]
            stats = pool.stats()
            assert stats["timeouts"] == 1
            assert stats["restarts"] >= 1

    def test_per_submit_timeout_overrides_pool_default(self):
        with WorkerPool(workers=1, timeout=60.0,
                        worker_main=sleepy_worker_main) as pool:
            future = pool.submit([{"seconds": 30.0}], timeout=0.2)
            with pytest.raises(AnalysisTimeout):
                future.result(timeout=30)

    def test_crash_surfaces_and_recovers(self):
        with WorkerPool(workers=1,
                        worker_main=crashy_worker_main) as pool:
            doomed = pool.submit([{"crash": True}])
            with pytest.raises(WorkerCrashed):
                doomed.result(timeout=30)
            fine = pool.submit([{}])
            assert fine.result(timeout=30) == [("ok", "fine")]
            stats = pool.stats()
            assert stats["crashes"] == 1
            assert stats["restarts"] >= 1


class TestBackpressureAndShutdown:
    def test_bounded_queue_rejects_when_full(self):
        with WorkerPool(workers=1, queue_limit=1, timeout=None,
                        worker_main=sleepy_worker_main) as pool:
            running = pool.submit([{"seconds": 1.0}])
            # Give the dispatcher a moment to take the running task off
            # the queue, then fill the single remaining slot.
            deadline = time.monotonic() + 5
            while pool.stats()["active"] == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            queued = pool.submit([{"seconds": 0.0}])
            with pytest.raises(QueueFull):
                pool.submit([{"seconds": 0.0}])
            assert running.result(timeout=30) == [("ok", "slept")]
            assert queued.result(timeout=30) == [("ok", "slept")]

    def test_drain_close_finishes_queued_work(self):
        pool = WorkerPool(workers=2, worker_main=echo_worker_main)
        futures = [pool.submit([{"i": i}]) for i in range(10)]
        pool.close(drain=True)
        assert [f.result(timeout=1) for f in futures] == [
            [("ok", repr({"i": i}))] for i in range(10)
        ]

    def test_submit_after_close_raises(self):
        pool = WorkerPool(workers=1, worker_main=echo_worker_main)
        pool.close()
        with pytest.raises(PoolClosed):
            pool.submit([{}])

    def test_nondrain_close_cancels_queued_tasks(self):
        pool = WorkerPool(workers=1, timeout=None,
                          worker_main=sleepy_worker_main)
        running = pool.submit([{"seconds": 0.5}])
        deadline = time.monotonic() + 5
        while pool.stats()["active"] == 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        queued = [pool.submit([{"seconds": 0.0}]) for _ in range(3)]
        pool.close(drain=False)
        # The running task still delivers; the queued ones were cancelled.
        assert running.result(timeout=30) == [("ok", "slept")]
        assert all(f.cancelled() for f in queued)
