"""The transport-free serving core: warm layers, in-flight dedupe,
structured errors, and batch sharding — driven directly as coroutines."""

import asyncio
import json

import pytest

from repro.api import AnalysisSession, request_digest
from repro.api.store import ShardedResultStore
from repro.core import AnalysisConfig
from repro.serve.service import AnalysisService

CORE = "(FPCore (x) :name \"t\" :pre (<= 1e16 x 1e17) (- (+ x 1) x))"
CLEAN = "(FPCore (x) :name \"ok\" :pre (<= 1 x 2) (+ x 1))"
FAST = AnalysisConfig(shadow_precision=96)


def _request(core=CORE, **overrides):
    session = AnalysisSession(config=FAST, num_points=3)
    return session.request(core, **overrides)


def _expected_json(request):
    return AnalysisSession(config=FAST, num_points=3).analyze(
        request
    ).to_json()


async def _closed(service, coro):
    try:
        return await coro
    finally:
        await service.close()


class TestSinglePath:
    def test_cold_then_memory_then_store(self, tmp_path):
        request = _request()
        expected = _expected_json(request)

        async def scenario():
            store = ShardedResultStore(str(tmp_path))
            service = AnalysisService(store=store, workers=1)
            first = await service.analyze_payload(request.to_dict())
            second = await service.analyze_payload(request.to_dict())
            await service.close()
            # A different process over the same store dir: warm.
            fresh = AnalysisService(store=ShardedResultStore(
                str(tmp_path)), workers=1)
            third = await fresh.analyze_payload(request.to_dict())
            await fresh.close()
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert (first.status, first.source) == (200, "computed")
        assert first.digest == request_digest(request)
        assert first.body == expected  # byte-identical to in-process
        assert (second.status, second.source) == (200, "memory")
        assert second.body == expected
        assert (third.status, third.source) == (200, "store")
        assert third.body == expected

    def test_invalid_request_is_structured_400(self):
        async def scenario():
            service = AnalysisService(workers=1)
            return await _closed(
                service, service.analyze_payload({"core": "(not fpcore"})
            )

        outcome = asyncio.run(scenario())
        assert outcome.status == 400
        assert json.loads(outcome.body)["error"]["type"] == \
            "invalid_request"

    def test_analysis_failure_is_structured_500_with_digest(self):
        # Parses as a request but the compiler rejects the free `y`.
        bad = {"core": "(FPCore (x) (+ x y))", "num_points": 2,
               "config": {"shadow_precision": 96}}

        async def scenario():
            service = AnalysisService(workers=1)
            return await _closed(service, service.analyze_payload(bad))

        outcome = asyncio.run(scenario())
        assert outcome.status == 500
        error = json.loads(outcome.body)["error"]
        assert error["type"] == "analysis_error"
        assert error["digest"] == outcome.digest
        assert error["message"]  # carries the exception type + text

    def test_lookup_digest(self, tmp_path):
        request = _request()

        async def scenario():
            service = AnalysisService(
                store=ShardedResultStore(str(tmp_path)), workers=1
            )
            computed = await service.analyze_payload(request.to_dict())
            hit = service.lookup_digest(computed.digest)
            miss = service.lookup_digest("0" * 64)
            bad = service.lookup_digest("nope")
            await service.close()
            return computed, hit, miss, bad

        computed, hit, miss, bad = asyncio.run(scenario())
        assert hit.status == 200 and hit.body == computed.body
        assert miss.status == 404
        assert json.loads(miss.body)["error"]["type"] == "not_found"
        assert bad.status == 400


class TestDedupe:
    def test_concurrent_identical_requests_compute_once(self):
        request = _request()
        n = 8

        async def scenario():
            service = AnalysisService(workers=2)
            outcomes = await asyncio.gather(*(
                service.analyze_payload(request.to_dict())
                for _ in range(n)
            ))
            counters = service.counters
            await service.close()
            return outcomes, counters

        outcomes, counters = asyncio.run(scenario())
        assert all(o.status == 200 for o in outcomes)
        assert len({o.body for o in outcomes}) == 1
        assert counters.computed == 1  # exactly one computation
        assert counters.dedupe_hits == n - 1
        sources = sorted(o.source for o in outcomes)
        assert sources.count("computed") == 1
        assert sources.count("dedupe") == n - 1

    def test_waiters_see_the_failure_too(self):
        bad = {"core": "(FPCore (x) (+ x y))", "num_points": 2,
               "config": {"shadow_precision": 96}}

        async def scenario():
            service = AnalysisService(workers=1)
            outcomes = await asyncio.gather(*(
                service.analyze_payload(dict(bad)) for _ in range(4)
            ))
            counters = service.counters
            await service.close()
            return outcomes, counters

        outcomes, counters = asyncio.run(scenario())
        assert all(o.status == 500 for o in outcomes)
        assert counters.analysis_errors == 1  # one run, shared outcome


class TestBatch:
    def test_batch_mixed_warm_duplicate_and_invalid(self, tmp_path):
        erroneous = _request()
        clean = _request(CLEAN)
        expected = _expected_json(erroneous)

        async def scenario():
            service = AnalysisService(
                store=ShardedResultStore(str(tmp_path)), workers=2
            )
            await service.analyze_payload(erroneous.to_dict())  # pre-warm
            outcome = await service.analyze_batch_payload({
                "requests": [
                    erroneous.to_dict(),     # warm
                    clean.to_dict(),         # cold
                    clean.to_dict(),         # duplicate of the cold one
                    {"core": "(broken"},     # invalid
                ],
            })
            counters = service.counters
            await service.close()
            return outcome, counters

        outcome, counters = asyncio.run(scenario())
        envelope = json.loads(outcome.body)
        assert outcome.status == 207  # one entry failed
        assert envelope["count"] == 4 and envelope["errors"] == 1
        results = envelope["results"]
        assert json.dumps(results[0], indent=2, sort_keys=True) == expected
        assert results[1] == results[2]  # duplicate computed once
        assert results[3]["error"]["type"] == "invalid_request"
        assert counters.computed == 2  # the pre-warm + the clean core
        assert counters.dedupe_hits == 1

    def test_batch_shards_steal_across_workers(self):
        requests = [_request(CLEAN, seed=i) for i in range(6)]

        async def scenario():
            service = AnalysisService(workers=2, batch_shard_size=1)
            outcome = await service.analyze_batch_payload(
                {"requests": [r.to_dict() for r in requests]}
            )
            pool_stats = service.pool.stats()
            await service.close()
            return outcome, pool_stats

        outcome, pool_stats = asyncio.run(scenario())
        envelope = json.loads(outcome.body)
        assert outcome.status == 200 and envelope["errors"] == 0
        # 6 one-request shards drained through the shared queue.
        assert pool_stats["completed"] == 6
        session = AnalysisSession(config=FAST, num_points=3)
        for request, entry in zip(requests, envelope["results"]):
            assert json.dumps(entry, indent=2, sort_keys=True) == \
                session.analyze(request).to_json()

    def test_batch_rejects_malformed_envelope(self):
        async def scenario():
            service = AnalysisService(workers=1)
            a = await service.analyze_batch_payload({"nope": []})
            b = await service.analyze_batch_payload(
                {"requests": [], "shard_size": 0}
            )
            await service.close()
            return a, b

        a, b = asyncio.run(scenario())
        assert a.status == 400
        assert b.status == 400


class TestStats:
    def test_stats_shape(self, tmp_path):
        async def scenario():
            service = AnalysisService(
                store=ShardedResultStore(str(tmp_path)), workers=1
            )
            await service.analyze_payload(_request().to_dict())
            stats = service.stats()
            await service.close()
            return stats

        stats = asyncio.run(scenario())
        assert stats["service"]["computed"] == 1
        assert stats["pool"]["workers"] == 1
        assert stats["store"]["writes"] == 1
        assert stats["inflight"] == 0
        assert stats["draining"] is False
        # Every computed result ships a residency sidecar; the fixed
        # policy runs everything at the full tier.
        assert stats["tier_residency"]["hw_kernel_ops"] == 0

    def test_stats_aggregate_hw_tier_residency(self):
        config = AnalysisConfig(
            shadow_precision=96, precision_policy="adaptive"
        )
        session = AnalysisSession(config=config, num_points=3)
        request = session.request(CLEAN)

        async def scenario():
            service = AnalysisService(workers=1)
            await service.analyze_payload(request.to_dict())
            stats = service.stats()
            await service.close()
            return stats

        stats = asyncio.run(scenario())
        residency = stats["tier_residency"]
        assert residency["hw_tier"] == 1
        assert residency["hw_kernel_ops"] > 0
