"""Tests for the mini-Herbie: patterns, rules, simplifier, search."""

import math

import pytest

from repro.fpcore import parse_expr
from repro.fpcore.ast import If, Num, Op, Var
from repro.fpcore.printer import format_expr
from repro.improve import (
    ErrorEvaluator,
    SearchSettings,
    all_rules,
    improve_expression,
    instantiate,
    match,
    positions,
    replace_at,
    rewrite_everywhere,
    rules_by_name,
    simplify,
)


class TestPatterns:
    def test_simple_match(self):
        bindings = match(parse_expr("(+ a b)"), parse_expr("(+ x 1)"))
        assert bindings == {"a": Var("x"), "b": Num(1)}

    def test_nonlinear_pattern(self):
        pattern = parse_expr("(- a a)")
        assert match(pattern, parse_expr("(- x x)")) is not None
        assert match(pattern, parse_expr("(- x y)")) is None

    def test_literal_pattern(self):
        pattern = parse_expr("(+ a 1)")
        assert match(pattern, parse_expr("(+ x 1)")) is not None
        assert match(pattern, parse_expr("(+ x 2)")) is None

    def test_operator_mismatch(self):
        assert match(parse_expr("(+ a b)"), parse_expr("(- x y)")) is None

    def test_instantiate(self):
        result = instantiate(
            parse_expr("(/ (- a b) c)"),
            {"a": Var("p"), "b": Var("q"), "c": Num(2)},
        )
        assert result == parse_expr("(/ (- p q) 2)")

    def test_instantiate_unbound(self):
        with pytest.raises(KeyError):
            instantiate(parse_expr("(+ a b)"), {"a": Var("x")})

    def test_positions_enumeration(self):
        expr = parse_expr("(+ (* x y) z)")
        paths = [path for path, __ in positions(expr)]
        assert () in paths and (0,) in paths and (0, 1) in paths and (1,) in paths

    def test_replace_at(self):
        expr = parse_expr("(+ (* x y) z)")
        replaced = replace_at(expr, (0, 1), Var("w"))
        assert replaced == parse_expr("(+ (* x w) z)")

    def test_rewrite_everywhere_finds_all_sites(self):
        expr = parse_expr("(+ (+ a 0) (+ b 0))")
        rule = rules_by_name()["add-zero"]
        results = rewrite_everywhere(expr, rule.lhs, rule.rhs)
        assert parse_expr("(+ a (+ b 0))") in results
        assert parse_expr("(+ (+ a 0) b)") in results


class TestRules:
    def test_rule_count(self):
        assert len(all_rules()) > 60

    def test_rules_are_sound_on_samples(self):
        """Spot-check each rule numerically at a benign point."""
        import random

        from repro.fpcore.ast import free_variables
        from repro.fpcore.evaluator import EvaluationError, eval_double

        rng = random.Random(7)
        checked = 0
        for rule in all_rules():
            variables = set(free_variables(rule.lhs)) | set(
                free_variables(rule.rhs)
            )
            for __ in range(5):
                env = {v: rng.uniform(0.2, 2.0) for v in variables}
                try:
                    left = eval_double(rule.lhs, env)
                    right = eval_double(rule.rhs, env)
                except (EvaluationError, OverflowError):
                    continue
                if math.isnan(left) or math.isnan(right):
                    continue
                assert left == pytest.approx(right, rel=1e-6, abs=1e-9), rule.name
                checked += 1
        assert checked > 100


class TestSimplify:
    CASES = [
        ("(+ x 0)", "x"),
        ("(* x 1)", "x"),
        ("(* x 0)", "0"),
        ("(- x x)", "0"),
        ("(/ x 1)", "x"),
        ("(+ 1 2)", "3"),
        ("(* 3 (+ 1 1))", "6"),
        ("(/ 1 2)", "1/2"),
        ("(- (- x))", "x"),
        ("(sqrt 4)", "2"),
        ("(pow x 1)", "x"),
        ("(pow x 0)", "1"),
        ("(- 0 x)", "(- x)"),
    ]

    @pytest.mark.parametrize("source,expected", CASES)
    def test_simplification(self, source, expected):
        assert simplify(parse_expr(source)) == parse_expr(expected)

    def test_exact_rational_folding(self):
        # (1/3) * 3 folds to exactly 1, no rounding.
        assert simplify(parse_expr("(* 1/3 3)")) == parse_expr("1")

    def test_sqrt_of_non_square_not_folded(self):
        result = simplify(parse_expr("(sqrt 2)"))
        assert result == parse_expr("(sqrt 2)")

    def test_nested(self):
        result = simplify(parse_expr("(+ (* x 0) (* 1 y))"))
        assert result == parse_expr("y")


class TestErrorEvaluator:
    def test_exact_expression_zero_error(self):
        expr = parse_expr("(+ x x)")
        evaluator = ErrorEvaluator(expr, ["x"], [[1.0], [2.5], [1e10]])
        assert evaluator.average_error(expr) == 0.0

    def test_cancellation_scores_badly(self):
        expr = parse_expr("(- (+ x 1) x)")
        evaluator = ErrorEvaluator(expr, ["x"], [[1e16]])
        assert evaluator.average_error(expr) > 50
        assert evaluator.average_error(parse_expr("1")) == 0.0

    def test_invalid_candidate_max_error(self):
        expr = parse_expr("(+ x 1)")
        evaluator = ErrorEvaluator(expr, ["x"], [[1.0]])
        assert evaluator.average_error(parse_expr("(+ x unbound)")) == 64.0

    def test_subset_shares_truth(self):
        expr = parse_expr("(* x 2)")
        evaluator = ErrorEvaluator(expr, ["x"], [[1.0], [2.0], [3.0]])
        sub = evaluator.subset([0, 2])
        assert sub.points == [[1.0], [3.0]]
        assert sub.truth == [evaluator.truth[0], evaluator.truth[2]]


class TestSearch:
    def test_sqrt_conjugate_found(self):
        points = [[10.0 ** k] for k in range(0, 15, 2)]
        result = improve_expression(
            parse_expr("(- (sqrt (+ x 1)) (sqrt x))"), ["x"], points
        )
        assert result.improved()
        assert result.best_error < 2.0

    def test_constant_collapse(self):
        points = [[10.0 ** k] for k in range(10, 17)]
        result = improve_expression(parse_expr("(- (+ x 1) x)"), ["x"], points)
        assert result.best == parse_expr("1")

    def test_expm1_found(self):
        points = [[10.0 ** -k] for k in range(6, 14)]
        result = improve_expression(parse_expr("(- (exp x) 1)"), ["x"], points)
        assert format_expr(result.best) == "(expm1 x)"

    def test_log1p_found(self):
        points = [[10.0 ** -k] for k in range(10, 17)]
        result = improve_expression(parse_expr("(log (+ 1 x))"), ["x"], points)
        assert format_expr(result.best) == "(log1p x)"

    def test_tan_half_angle_found(self):
        points = [[10.0 ** -k] for k in range(1, 8)]
        result = improve_expression(
            parse_expr("(/ (- 1 (cos x)) (sin x))"), ["x"], points
        )
        assert result.improved()

    def test_csqrt_fragment_improved(self):
        # The paper's Section 3 expression: sqrt(x^2+y^2) - x with tiny y.
        points = [[0.1 * (i + 1), 1e-9 * (i + 1)] for i in range(8)]
        result = improve_expression(
            parse_expr("(- (sqrt (+ (* x x) (* y y))) x)"), ["x", "y"], points
        )
        assert result.improved()
        assert result.best_error < 5.0

    def test_stable_expression_not_degraded(self):
        points = [[float(k)] for k in range(1, 9)]
        result = improve_expression(parse_expr("(* (+ x 1) 2)"), ["x"], points)
        assert result.best_error <= result.initial_error
        assert result.initial_error == 0.0

    def test_settings_budget_respected(self):
        settings = SearchSettings(beam_width=2, generations=1,
                                  max_candidates_per_generation=50)
        points = [[10.0 ** k] for k in range(0, 15, 2)]
        result = improve_expression(
            parse_expr("(- (sqrt (+ x 1)) (sqrt x))"), ["x"], points,
            settings=settings,
        )
        assert result.initial_error > 0

    def test_regime_split(self):
        """A spec needing different forms per sign of x: the regime
        inference should synthesize a branch."""
        # sqrt(x^2+y^2) - x: catastrophic for x > 0 (tiny y), benign for
        # x < 0; the paper's repair branches on the sign of x.
        points = [[0.25 * (i + 1), 1e-9] for i in range(5)]
        points += [[-0.25 * (i + 1), 1e-9] for i in range(5)]
        result = improve_expression(
            parse_expr("(- (sqrt (+ (* x x) (* y y))) x)"), ["x", "y"], points
        )
        assert result.improved()
        # Either a branch was synthesized or a single uniformly-better
        # form was found; both count, but check branches are reachable.
        if isinstance(result.best, If):
            assert result.regime_variable in ("x", "y")
