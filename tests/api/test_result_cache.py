"""Tests for session-level result caching (LRU + on-disk store)."""

import json
import os

import pytest

from repro.api import (
    AnalysisBackend,
    AnalysisResult,
    AnalysisSession,
    register_backend,
    request_digest,
    results_to_json,
)
from repro.core import AnalysisConfig

ERRONEOUS = "(FPCore (x) :name \"t\" :pre (<= 1e16 x 1e17) (- (+ x 1) x))"
CLEAN = "(FPCore (x) :name \"ok\" :pre (<= 1 x 2) (+ x 1))"
FAST = AnalysisConfig(shadow_precision=192)


class CountingBackend(AnalysisBackend):
    """A backend that counts how many times it actually runs."""

    name = "counting-cache"
    runs = 0

    def run(self, program, points, request):
        type(self).runs += 1
        return AnalysisResult(
            benchmark=request.name,
            backend=self.name,
            seed=request.seed,
            num_points=request.num_points,
            extra={"points_seen": len(points)},
        )


@pytest.fixture()
def counting_backend():
    register_backend(CountingBackend.name, CountingBackend)
    CountingBackend.runs = 0
    yield CountingBackend
    import repro.api.backends as backends_mod

    backends_mod._REGISTRY.pop(CountingBackend.name, None)


class TestRequestDigest:
    def test_stable_across_equivalent_requests(self):
        session = AnalysisSession(config=FAST, num_points=4)
        a = session.request(ERRONEOUS)
        b = session.request(ERRONEOUS)
        assert request_digest(a) == request_digest(b)

    def test_varies_with_every_knob(self):
        session = AnalysisSession(config=FAST, num_points=4)
        base = request_digest(session.request(ERRONEOUS))
        assert request_digest(session.request(CLEAN)) != base
        assert request_digest(session.request(ERRONEOUS, seed=1)) != base
        assert request_digest(
            session.request(ERRONEOUS, num_points=5)
        ) != base
        assert request_digest(
            session.request(ERRONEOUS, backend="fpdebug")
        ) != base
        assert request_digest(
            session.request(
                ERRONEOUS, config=FAST.with_(local_error_threshold=6.0)
            )
        ) != base
        assert request_digest(
            session.request(
                ERRONEOUS, config=FAST.with_(precision_policy="adaptive")
            )
        ) != base

    def test_varies_with_engine(self):
        # Engines are report-identical, but cached results from
        # different engines must still never alias: the digest covers
        # the engine choice like every other config knob.
        session = AnalysisSession(config=FAST, num_points=4)
        compiled = request_digest(
            session.request(ERRONEOUS, config=FAST.with_(engine="compiled"))
        )
        reference = request_digest(
            session.request(ERRONEOUS, config=FAST.with_(engine="reference"))
        )
        assert compiled != reference

    def test_engine_roundtrips_through_request_serialization(self):
        from repro.api import AnalysisRequest

        session = AnalysisSession(
            config=FAST.with_(engine="reference"), num_points=4
        )
        request = session.request(ERRONEOUS)
        rebuilt = AnalysisRequest.from_json(request.to_json())
        assert rebuilt.config.engine == "reference"
        assert request_digest(rebuilt) == request_digest(request)

    def test_varies_with_result_schema_version(self, monkeypatch):
        # A schema bump must invalidate persisted entries.
        import repro.api.session as session_mod

        session = AnalysisSession(config=FAST, num_points=4)
        request = session.request(ERRONEOUS)
        before = request_digest(request)
        monkeypatch.setattr(
            session_mod, "RESULT_SCHEMA_VERSION",
            session_mod.RESULT_SCHEMA_VERSION + 1,
        )
        assert request_digest(request) != before


class TestMemoryCache:
    def test_identical_request_runs_once(self, counting_backend):
        session = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4
        )
        first = session.analyze(ERRONEOUS)
        second = session.analyze(ERRONEOUS)
        assert counting_backend.runs == 1
        assert second is first
        assert session.result_hits == 1
        assert session.result_misses == 1

    def test_different_config_reruns(self, counting_backend):
        session = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4
        )
        session.analyze(ERRONEOUS)
        session.analyze(ERRONEOUS, seed=3)
        assert counting_backend.runs == 2

    def test_cache_disabled(self, counting_backend):
        session = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4,
            result_cache_size=0,
        )
        session.analyze(ERRONEOUS)
        session.analyze(ERRONEOUS)
        assert counting_backend.runs == 2
        assert session.result_hits == 0

    def test_lru_eviction(self, counting_backend):
        session = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4,
            result_cache_size=1,
        )
        session.analyze(ERRONEOUS)
        session.analyze(CLEAN)       # evicts ERRONEOUS
        session.analyze(ERRONEOUS)   # must re-run
        assert counting_backend.runs == 3

    def test_libm_override_not_cached(self, counting_backend):
        from repro.machine import build_libm

        libm = build_libm()
        session = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=2
        )
        session.analyze(ERRONEOUS, libm=libm)
        session.analyze(ERRONEOUS, libm=libm)
        assert counting_backend.runs == 2

    def test_clear_caches_drops_results(self, counting_backend):
        session = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4
        )
        session.analyze(ERRONEOUS)
        session.clear_caches()
        session.analyze(ERRONEOUS)
        assert counting_backend.runs == 2


def _disk_entries(cache_dir):
    """All persisted result files under the sharded cache layout."""
    found = []
    for root, _dirs, files in os.walk(cache_dir):
        found.extend(os.path.join(root, name) for name in files
                     if name.endswith(".json"))
    return sorted(found)


class TestDiskCache:
    def test_results_persist_across_sessions(self, counting_backend,
                                             tmp_path):
        cache_dir = str(tmp_path / "results")
        first = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4,
            cache_dir=cache_dir,
        )
        cold = first.analyze(ERRONEOUS)
        assert counting_backend.runs == 1
        assert len(_disk_entries(cache_dir)) == 1

        second = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4,
            cache_dir=cache_dir,
        )
        warm = second.analyze(ERRONEOUS)
        assert counting_backend.runs == 1  # served from disk
        assert warm.to_json() == cold.to_json()
        assert warm.raw is None  # disk results carry no raw analysis

    def test_disk_entries_are_canonical_sharded_json(
        self, counting_backend, tmp_path
    ):
        cache_dir = str(tmp_path / "results")
        session = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4,
            cache_dir=cache_dir,
        )
        result = session.analyze(ERRONEOUS)
        digest = request_digest(session.request(ERRONEOUS))
        # Entries shard by digest prefix: <dir>/<digest[:2]>/<digest>.json
        expected = os.path.join(cache_dir, digest[:2], f"{digest}.json")
        assert _disk_entries(cache_dir) == [expected]
        with open(expected, encoding="utf-8") as fh:
            assert json.load(fh) == result.to_dict()

    def test_disk_only_cache(self, counting_backend, tmp_path):
        # result_cache_size=0 with a cache_dir keeps the disk layer.
        cache_dir = str(tmp_path / "results")
        session = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4,
            cache_dir=cache_dir, result_cache_size=0,
        )
        session.analyze(ERRONEOUS)
        session.analyze(ERRONEOUS)
        assert counting_backend.runs == 1  # second call hit the disk
        assert len(_disk_entries(cache_dir)) == 1

    def test_unwritable_cache_dir_is_not_fatal(self, counting_backend,
                                               tmp_path):
        # A cache_dir that is actually a file: writes fail, analysis
        # still returns its result.
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        session = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4,
            cache_dir=str(blocker),
        )
        result = session.analyze(ERRONEOUS)
        assert result.benchmark == "t"
        assert counting_backend.runs == 1

    def test_corrupt_entry_is_a_miss(self, counting_backend, tmp_path):
        cache_dir = str(tmp_path / "results")
        session = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4,
            cache_dir=cache_dir,
        )
        session.analyze(ERRONEOUS)
        [entry] = _disk_entries(cache_dir)
        with open(entry, "w") as fh:
            fh.write("{not json")
        fresh = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4,
            cache_dir=cache_dir,
        )
        fresh.analyze(ERRONEOUS)
        assert counting_backend.runs == 2

    def test_legacy_flat_entry_is_read_and_promoted(
        self, counting_backend, tmp_path
    ):
        # Pre-sharding cache dirs stored results flat as
        # <dir>/<digest>.json; they must stay readable, and a hit gets
        # promoted into the sharded layout for the next reader.
        cache_dir = str(tmp_path / "results")
        seeder = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4,
            cache_dir=cache_dir,
        )
        seeder.analyze(ERRONEOUS)
        digest = request_digest(seeder.request(ERRONEOUS))
        sharded = os.path.join(cache_dir, digest[:2], f"{digest}.json")
        legacy = os.path.join(cache_dir, f"{digest}.json")
        os.rename(sharded, legacy)  # demote to the legacy flat layout
        os.rmdir(os.path.dirname(sharded))

        fresh = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4,
            cache_dir=cache_dir,
        )
        fresh.analyze(ERRONEOUS)
        assert counting_backend.runs == 1  # served from the legacy file
        assert os.path.exists(sharded)  # and promoted on the way


class TestBatchCaching:
    def test_warm_batch_skips_the_pool(self):
        session = AnalysisSession(config=FAST, num_points=4, seed=11)
        cold = session.analyze_batch([ERRONEOUS, CLEAN], workers=2)
        warm = session.analyze_batch([ERRONEOUS, CLEAN], workers=2)
        assert results_to_json(cold) == results_to_json(warm)
        assert session.result_hits == 2

    def test_duplicates_within_a_batch_run_once(self, counting_backend):
        session = AnalysisSession(
            config=FAST, backend=counting_backend.name, num_points=4
        )
        results = session.analyze_batch(
            [ERRONEOUS, ERRONEOUS, ERRONEOUS], workers=1
        )
        assert counting_backend.runs == 1
        assert len({id(r) for r in results}) == 1

    def test_mixed_hit_miss_batch_order_preserved(self):
        session = AnalysisSession(config=FAST, num_points=4, seed=11)
        session.analyze(ERRONEOUS)
        results = session.analyze_batch([CLEAN, ERRONEOUS], workers=2)
        assert [r.benchmark for r in results] == ["ok", "t"]
        # Cached result reused; fresh one computed in the pool.
        assert session.result_hits == 1
