"""JSON (de)serialization round-trips for requests and results."""

import json

from repro.api import (
    AnalysisRequest,
    AnalysisResult,
    AnalysisSession,
    ErrorStats,
    RootCauseResult,
    SpotResult,
    results_from_json,
    results_to_json,
)
from repro.core import AnalysisConfig
from repro.fpcore import parse_fpcore

ERRONEOUS = "(FPCore (x) :name \"t\" :pre (<= 1e16 x 1e17) (- (+ x 1) x))"
FAST = AnalysisConfig(shadow_precision=192)


class TestRequestRoundtrip:
    def test_roundtrip_preserves_fields(self):
        request = AnalysisRequest.build(
            ERRONEOUS,
            backend="fpdebug",
            num_points=7,
            seed=3,
            config=FAST.with_(local_error_threshold=2.5),
        )
        back = AnalysisRequest.from_json(request.to_json())
        assert back.backend == "fpdebug"
        assert back.num_points == 7
        assert back.seed == 3
        assert back.config.local_error_threshold == 2.5
        assert back.config.shadow_precision == 192
        assert back.name == "t"

    def test_explicit_points_roundtrip(self):
        request = AnalysisRequest.build(
            ERRONEOUS, points=[[1e16], [2e16]]
        )
        back = AnalysisRequest.from_json(request.to_json())
        assert back.points == [[1e16], [2e16]]

    def test_core_text_accepted(self):
        request = AnalysisRequest.build(ERRONEOUS)
        assert request.core.name == "t"
        parsed = AnalysisRequest.build(parse_fpcore(ERRONEOUS))
        assert parsed.core.name == "t"


class TestResultRoundtrip:
    def test_synthetic_roundtrip(self):
        result = AnalysisResult(
            benchmark="b",
            backend="herbgrind",
            seed=1,
            num_points=4,
            max_output_error=12.5,
            root_causes=[
                RootCauseResult(
                    site_id=3,
                    op="-",
                    loc="b.c:1",
                    expression="(- (+ x0 1) x0)",
                    variables=["x0"],
                    precondition_clauses=["(<= 1 x0 2)"],
                    problematic_clauses=[],
                    example_problematic={"x0": 1.5},
                    local_error=ErrorStats(4, 4, 62.0, 62.0),
                )
            ],
            spots=[
                SpotResult(
                    site_id=5,
                    kind="output",
                    loc="b.c:out",
                    error=ErrorStats(4, 4, 12.5, 12.5),
                    root_cause_sites=[3],
                )
            ],
            extra={"runs": 4},
        )
        back = AnalysisResult.from_json(result.to_json())
        assert back == result
        assert back.detected
        assert [c.site_id for c in back.reported_root_causes()] == [3]

    def test_real_analysis_roundtrip(self):
        session = AnalysisSession(config=FAST, num_points=4)
        result = session.analyze(ERRONEOUS)
        back = AnalysisResult.from_json(result.to_json())
        # ``raw`` is never serialized and is excluded from equality.
        assert back == result
        assert back.raw is None
        assert result.raw is not None
        assert back.to_json() == result.to_json()

    def test_json_is_deterministic_and_sorted(self):
        session = AnalysisSession(config=FAST, num_points=4)
        text = session.analyze(ERRONEOUS).to_json()
        data = json.loads(text)
        assert list(data) == sorted(data)
        assert text == session.analyze(ERRONEOUS).to_json()

    def test_fpcore_text_rendering(self):
        cause = RootCauseResult(
            site_id=1,
            op="-",
            loc=None,
            expression="(- a b)",
            variables=["a", "b"],
            precondition_clauses=["(<= 0 a 1)", "(<= 0 b 1)"],
        )
        text = cause.fpcore_text()
        assert text.startswith("(FPCore (a b)")
        assert ":pre (and" in text
        assert "(- a b)" in text


class TestBatchSerialization:
    def test_batch_roundtrip(self):
        session = AnalysisSession(config=FAST, num_points=4)
        results = session.analyze_batch(
            [ERRONEOUS, "(FPCore (x) :name \"ok\" :pre (<= 1 x 2) (+ x 1))"]
        )
        text = results_to_json(results)
        back = results_from_json(text)
        assert back == results
        assert results_to_json(back) == text
