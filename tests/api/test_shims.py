"""The legacy entry points must delegate to repro.api.

These tests pin the deprecation contract: ``repro.core.analyze_fpcore``
and the sampling helpers are thin shims over the façade, so every
caller — CLI, driver, eval pipeline — exercises one code path, and the
analysis shim warns ``DeprecationWarning`` (every in-repo example,
benchmark, and script has been migrated to the session API).
"""

import warnings

import pytest

from repro.api import AnalysisSession
from repro.api import sampling as api_sampling
from repro.core import AnalysisConfig
from repro.core import driver as legacy_driver
from repro.core.analysis import HerbgrindAnalysis
from repro.fpcore import parse_fpcore

ERRONEOUS = "(FPCore (x) :name \"t\" :pre (<= 1e16 x 1e17) (- (+ x 1) x))"
FAST = AnalysisConfig(shadow_precision=192)


def analyze_fpcore(*args, **kwargs):
    """The shim under test, with its (pinned) warning silenced."""
    from repro.core import analyze_fpcore as shim

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return shim(*args, **kwargs)


class TestDeprecation:
    def test_analyze_fpcore_warns(self):
        from repro.core import analyze_fpcore as shim

        with pytest.warns(DeprecationWarning, match="AnalysisSession"):
            shim(parse_fpcore(ERRONEOUS), config=FAST, num_points=2, seed=1)


class TestSamplingShims:
    def test_driver_sampler_is_api_sampler(self):
        assert legacy_driver.sample_inputs is api_sampling.sample_inputs
        assert (
            legacy_driver.precondition_box is api_sampling.precondition_box
        )

    def test_package_reexports_are_api_functions(self):
        from repro.core import precondition_box, sample_inputs

        assert sample_inputs is api_sampling.sample_inputs
        assert precondition_box is api_sampling.precondition_box


class TestAnalyzeFpcoreShim:
    def test_delegates_to_session(self, monkeypatch):
        calls = []
        original = AnalysisSession.analyze

        def spy(self, core, **overrides):
            calls.append((core, overrides))
            return original(self, core, **overrides)

        monkeypatch.setattr(AnalysisSession, "analyze", spy)
        analysis = analyze_fpcore(
            parse_fpcore(ERRONEOUS), config=FAST, num_points=4, seed=2
        )
        assert len(calls) == 1
        assert isinstance(analysis, HerbgrindAnalysis)

    def test_matches_session_result(self):
        core = parse_fpcore(ERRONEOUS)
        legacy = analyze_fpcore(core, config=FAST, num_points=4, seed=2)
        session = AnalysisSession(config=FAST, num_points=4, seed=2)
        modern = session.analyze(core)
        assert legacy.max_output_error() == modern.max_output_error
        assert len(legacy.reported_root_causes()) == len(
            modern.reported_root_causes()
        )

    def test_explicit_points_respected(self):
        analysis = analyze_fpcore(
            parse_fpcore(ERRONEOUS), points=[[1e16], [2e16], [4e16]],
            config=FAST,
        )
        assert analysis.runs == 3


class TestPipelineDelegation:
    def test_evaluate_benchmark_routes_through_session(self, monkeypatch):
        from repro.eval import evaluate_benchmark

        calls = []
        original = AnalysisSession.analyze

        def spy(self, core, **overrides):
            calls.append(core)
            return original(self, core, **overrides)

        monkeypatch.setattr(AnalysisSession, "analyze", spy)
        evaluate_benchmark(
            parse_fpcore(ERRONEOUS), config=FAST, num_points=4
        )
        assert len(calls) == 1

    def test_evaluate_suite_shares_one_session(self, monkeypatch):
        from repro.eval import evaluate_suite

        sessions = []
        original = AnalysisSession.analyze

        def spy(self, core, **overrides):
            sessions.append(self)
            return original(self, core, **overrides)

        monkeypatch.setattr(AnalysisSession, "analyze", spy)
        cores = [
            parse_fpcore(ERRONEOUS),
            parse_fpcore('(FPCore (x) :name "ok" :pre (<= 1 x 2) (+ x 1))'),
        ]
        evaluate_suite(cores, config=FAST, num_points=4)
        assert len(sessions) == 2
        assert sessions[0] is sessions[1]


class TestCliDelegation:
    def test_cli_analyze_routes_through_session(self, monkeypatch, capsys):
        from repro.cli import main

        calls = []
        original = AnalysisSession.analyze

        def spy(self, core, **overrides):
            calls.append(core)
            return original(self, core, **overrides)

        monkeypatch.setattr(AnalysisSession, "analyze", spy)
        assert main(["analyze", ERRONEOUS, "--points", "4",
                     "--precision", "192"]) == 0
        assert len(calls) == 1

    def test_cli_corpus_routes_through_batch(self, monkeypatch, capsys):
        from repro.cli import main

        calls = []
        original = AnalysisSession.analyze_batch

        def spy(self, cores, workers=1, **overrides):
            calls.append(list(cores))
            return original(self, cores, workers=workers, **overrides)

        monkeypatch.setattr(AnalysisSession, "analyze_batch", spy)
        assert main(["corpus", "--name", "paper-x-plus-1-minus-x",
                     "--points", "4", "--precision", "192"]) == 0
        assert len(calls) == 1 and len(calls[0]) == 1
