"""Tests for the AnalysisSession façade: caching, backends, batch."""

import pytest

from repro.api import (
    AnalysisBackend,
    AnalysisResult,
    AnalysisSession,
    available_backends,
    get_backend,
    register_backend,
    results_to_json,
)
from repro.core import AnalysisConfig
from repro.core.analysis import HerbgrindAnalysis
from repro.fpcore import load_corpus, parse_fpcore

ERRONEOUS = "(FPCore (x) :name \"t\" :pre (<= 1e16 x 1e17) (- (+ x 1) x))"
CLEAN = "(FPCore (x) :name \"ok\" :pre (<= 1 x 2) (+ x 1))"
FAST = AnalysisConfig(shadow_precision=192)


class TestSessionBasics:
    def test_analyze_erroneous(self):
        session = AnalysisSession(config=FAST, num_points=4)
        result = session.analyze(ERRONEOUS)
        assert result.detected
        assert result.max_output_error > 50
        assert result.reported_root_causes()
        assert isinstance(result.raw, HerbgrindAnalysis)

    def test_analyze_clean(self):
        session = AnalysisSession(config=FAST, num_points=4)
        result = session.analyze(CLEAN)
        assert not result.detected
        assert result.root_causes == []

    def test_explicit_points_override_sampling(self):
        session = AnalysisSession(config=FAST)
        result = session.analyze(ERRONEOUS, points=[[1e16], [5e16]])
        assert result.raw.runs == 2

    def test_accepts_core_object_and_text(self):
        session = AnalysisSession(config=FAST, num_points=4)
        a = session.analyze(ERRONEOUS)
        b = session.analyze(parse_fpcore(ERRONEOUS))
        assert a.to_json() == b.to_json()

    def test_unknown_override_rejected(self):
        session = AnalysisSession(config=FAST)
        with pytest.raises(TypeError, match="num_point"):
            session.analyze(ERRONEOUS, num_point=8)  # typo'd key

    def test_overrides_with_prebuilt_request_rejected(self):
        from repro.api import AnalysisRequest

        session = AnalysisSession(config=FAST)
        request = AnalysisRequest.build(ERRONEOUS, num_points=4, config=FAST)
        with pytest.raises(TypeError, match="prebuilt"):
            session.analyze(request, seed=42)

    def test_verrou_average_below_max_on_mixed_stability(self):
        # One wobbling point and one exactly-stable point: the serialized
        # average must be a true average, not the max.
        session = AnalysisSession(config=FAST)
        result = session.analyze(
            ERRONEOUS, backend="verrou", points=[[1e16], [1.5]]
        )
        spot = result.spots[0]
        assert spot.error.executions == 2
        assert 0.0 < spot.error.average_bits < spot.error.max_bits


class TestSessionCaching:
    def test_program_and_points_cached_across_calls(self):
        session = AnalysisSession(config=FAST, num_points=4)
        first = session.analyze(ERRONEOUS)
        stats = session.cache_stats()
        assert stats["programs"] == 1
        assert stats["input_sets"] == 1
        second = session.analyze(ERRONEOUS)
        stats = session.cache_stats()
        # The identical request is served whole from the result cache
        # (program/input caches are not even consulted again).
        assert stats["result_hits"] == 1
        assert stats["programs"] == 1
        assert second is first
        assert first.to_json() == second.to_json()

    def test_program_and_points_reused_without_result_cache(self):
        session = AnalysisSession(
            config=FAST, num_points=4, result_cache_size=0
        )
        first = session.analyze(ERRONEOUS)
        second = session.analyze(ERRONEOUS)
        stats = session.cache_stats()
        assert stats["hits"] >= 2  # program + points reused
        assert second is not first
        assert first.to_json() == second.to_json()

    def test_compiled_is_cached_identity(self):
        session = AnalysisSession(config=FAST)
        assert session.compiled(ERRONEOUS) is session.compiled(ERRONEOUS)

    def test_sampled_keyed_by_count_and_seed(self):
        session = AnalysisSession(config=FAST)
        a = session.sampled(ERRONEOUS, count=4, seed=0)
        b = session.sampled(ERRONEOUS, count=4, seed=1)
        c = session.sampled(ERRONEOUS, count=4, seed=0)
        assert a is c
        assert a != b

    def test_clear_caches(self):
        session = AnalysisSession(config=FAST, num_points=4)
        session.analyze(ERRONEOUS)
        session.clear_caches()
        assert session.cache_stats() == {
            "programs": 0, "input_sets": 0, "input_set_capacity": 1024,
            "hits": 0, "misses": 0,
            "results": 0, "result_hits": 0, "result_misses": 0,
        }

    def test_point_cache_is_lru_bounded(self):
        session = AnalysisSession(config=FAST, point_cache_size=2)
        a = session.sampled(ERRONEOUS, count=4, seed=0)
        session.sampled(ERRONEOUS, count=4, seed=1)
        # Touch seed=0 so seed=1 is the least recently used entry.
        assert session.sampled(ERRONEOUS, count=4, seed=0) is a
        session.sampled(ERRONEOUS, count=4, seed=2)
        stats = session.cache_stats()
        assert stats["input_sets"] == 2
        assert stats["input_set_capacity"] == 2
        # seed=1 was evicted, seed=0 survived.
        assert session.sampled(ERRONEOUS, count=4, seed=0) is a
        misses = session.cache_misses
        session.sampled(ERRONEOUS, count=4, seed=1)
        assert session.cache_misses == misses + 1

    def test_point_cache_size_zero_disables_caching(self):
        session = AnalysisSession(config=FAST, point_cache_size=0)
        a = session.sampled(ERRONEOUS, count=4, seed=0)
        b = session.sampled(ERRONEOUS, count=4, seed=0)
        assert a is not b
        assert a == b
        assert session.cache_stats()["input_sets"] == 0


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert {"herbgrind", "fpdebug", "verrou", "bz"} <= set(
            available_backends()
        )

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("nope")

    def test_every_builtin_backend_runs(self):
        session = AnalysisSession(config=FAST, num_points=4)
        for name in ("herbgrind", "fpdebug", "verrou", "bz"):
            result = session.analyze(ERRONEOUS, backend=name)
            assert result.backend == name
            assert result.benchmark == "t"

    def test_fpdebug_flags_erroneous_op(self):
        session = AnalysisSession(config=FAST, num_points=4)
        result = session.analyze(ERRONEOUS, backend="fpdebug")
        assert result.root_causes
        assert result.root_causes[0].expression is None
        assert result.max_output_error > 50

    def test_verrou_marks_unstable_output(self):
        session = AnalysisSession(config=FAST, num_points=4)
        result = session.analyze(ERRONEOUS, backend="verrou")
        assert result.spots
        assert result.detected

    def test_custom_backend_registration(self):
        class CountingBackend(AnalysisBackend):
            name = "counting"

            def run(self, program, points, request):
                return AnalysisResult(
                    benchmark=request.name,
                    backend=self.name,
                    seed=request.seed,
                    num_points=request.num_points,
                    extra={"points_seen": len(points)},
                )

        register_backend("counting", CountingBackend)
        try:
            session = AnalysisSession(
                config=FAST, backend="counting", num_points=4
            )
            result = session.analyze(ERRONEOUS)
            assert result.backend == "counting"
            assert result.extra == {"points_seen": 4}
        finally:
            import repro.api.backends as backends_mod

            backends_mod._REGISTRY.pop("counting", None)


class TestBatch:
    def test_sequential_batch_preserves_order(self):
        session = AnalysisSession(config=FAST, num_points=4)
        results = session.analyze_batch([CLEAN, ERRONEOUS])
        assert [r.benchmark for r in results] == ["ok", "t"]

    def test_parallel_matches_sequential_byte_identical(self):
        # The acceptance criterion: >= 20 corpus benchmarks, workers=4,
        # byte-identical JSON against sequential execution, same seed.
        corpus = load_corpus()[:20]
        session = AnalysisSession(config=FAST, num_points=4, seed=11)
        sequential = session.analyze_batch(corpus, workers=1)
        parallel = session.analyze_batch(corpus, workers=4)
        assert len(sequential) == 20
        assert results_to_json(sequential) == results_to_json(parallel)

    def test_parallel_results_carry_no_raw(self):
        session = AnalysisSession(config=FAST, num_points=4)
        results = session.analyze_batch([ERRONEOUS, CLEAN], workers=2)
        assert all(r.raw is None for r in results)

    def test_batch_backend_override(self):
        session = AnalysisSession(config=FAST, num_points=4)
        results = session.analyze_batch(
            [ERRONEOUS, CLEAN], workers=2, backend="bz"
        )
        assert all(r.backend == "bz" for r in results)

    def test_libm_override_rejected_across_processes(self):
        from repro.machine import build_libm

        session = AnalysisSession(config=FAST, num_points=2)
        with pytest.raises(ValueError, match="process boundary"):
            session.analyze_batch(
                [ERRONEOUS, CLEAN], workers=2, libm=build_libm()
            )
