"""Tests for the shared sampler and precondition-box extraction."""

import math
import multiprocessing
import random

import pytest

from repro.api.sampling import (
    DEFAULT_RANGE,
    precondition_box,
    sample_box,
    sample_inputs,
    sample_range,
)
from repro.fpcore import parse_fpcore


class TestPreconditionBox:
    def test_single_range(self):
        core = parse_fpcore("(FPCore (x) :pre (<= 1 x 10) x)")
        assert precondition_box(core) == {"x": (1.0, 10.0)}

    def test_conjunction(self):
        core = parse_fpcore(
            "(FPCore (x y) :pre (and (<= -2 x 2) (<= 0.5 y 1.5)) (+ x y))"
        )
        box = precondition_box(core)
        assert box == {"x": (-2.0, 2.0), "y": (0.5, 1.5)}

    def test_missing_range_defaults(self):
        core = parse_fpcore("(FPCore (x y) :pre (<= 1 x 2) (+ x y))")
        box = precondition_box(core)
        assert box["x"] == (1.0, 2.0)
        assert box["y"] == DEFAULT_RANGE

    def test_no_precondition(self):
        core = parse_fpcore("(FPCore (x) x)")
        assert precondition_box(core) == {"x": DEFAULT_RANGE}

    def test_non_range_clauses_ignored(self):
        core = parse_fpcore(
            "(FPCore (x) :pre (and (<= 1 x 10) (!= x 5)) x)"
        )
        assert precondition_box(core) == {"x": (1.0, 10.0)}


class TestSampleRange:
    def test_tight_range(self):
        rng = random.Random(0)
        for __ in range(100):
            value = sample_range(rng, 1.0, 1.0 + 1e-12)
            assert 1.0 <= value <= 1.0 + 1e-12

    def test_degenerate_range(self):
        rng = random.Random(0)
        assert sample_range(rng, 3.5, 3.5) == 3.5

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            sample_range(random.Random(0), 2.0, 1.0)

    def test_positive_log_scale(self):
        rng = random.Random(1)
        values = [sample_range(rng, 1e-12, 1.0) for __ in range(400)]
        assert all(1e-12 <= v <= 1.0 for v in values)
        # Log-uniform: a fair share of samples must be tiny — linear
        # sampling would essentially never go below 1e-3.
        assert sum(1 for v in values if v < 1e-3) > 100

    def test_negative_log_scale(self):
        rng = random.Random(2)
        values = [sample_range(rng, -1.0, -1e-12) for __ in range(400)]
        assert all(-1.0 <= v <= -1e-12 for v in values)
        assert sum(1 for v in values if v > -1e-3) > 100

    def test_negative_log_scale_mirrors_positive(self):
        pos = [
            sample_range(random.Random(7), 1e-9, 1e3) for __ in range(50)
        ]
        neg = [
            sample_range(random.Random(7), -1e3, -1e-9) for __ in range(50)
        ]
        assert neg == [-v for v in pos]

    def test_zero_span_linear_by_default(self):
        rng = random.Random(3)
        values = [sample_range(rng, -1e9, 1e9) for __ in range(200)]
        assert all(-1e9 <= v <= 1e9 for v in values)
        # Linear: essentially no tiny magnitudes.
        assert sum(1 for v in values if abs(v) < 1.0) == 0

    def test_zero_span_log_mode(self):
        rng = random.Random(4)
        values = [
            sample_range(rng, -1e9, 1e9, zero_span_log=True)
            for __ in range(400)
        ]
        assert all(-1e9 <= v <= 1e9 for v in values)
        assert any(v < 0 for v in values) and any(v > 0 for v in values)
        # Log-magnitude: small values are actually reachable now.
        assert sum(1 for v in values if abs(v) < 1e8) > 100

    def test_zero_span_log_asymmetric_weighting(self):
        rng = random.Random(5)
        values = [
            sample_range(rng, -1.0, 1e6, zero_span_log=True)
            for __ in range(500)
        ]
        negatives = sum(1 for v in values if v < 0)
        # The negative side is one millionth of the width.
        assert negatives < 25


class TestSampleInputs:
    def test_count_and_bounds(self):
        core = parse_fpcore("(FPCore (x) :pre (<= 2 x 3) x)")
        points = sample_inputs(core, 10, seed=1)
        assert len(points) == 10
        assert all(2.0 <= p[0] <= 3.0 for p in points)

    def test_rejection_clause_respected(self):
        core = parse_fpcore(
            "(FPCore (x) :pre (and (<= 0 x 10) (< 5 x)) x)"
        )
        points = sample_inputs(core, 20, seed=0)
        assert all(p[0] > 5.0 for p in points)

    def test_rejection_limit_exhaustion(self):
        # The box is [0, 10] but the extra clause is unsatisfiable.
        core = parse_fpcore(
            "(FPCore (x) :pre (and (<= 0 x 10) (< 20 x)) x)"
        )
        with pytest.raises(ValueError, match="cannot satisfy"):
            sample_inputs(core, 1, seed=0, max_rejections=50)

    def test_hard_but_satisfiable_precondition(self):
        # Regression: the rejection bound is on *consecutive* failures.
        # ~5% acceptance over 100 points used to accumulate ~1900 total
        # rejections and spuriously trip max_rejections=1000; with the
        # counter reset on every accepted point it never comes close.
        core = parse_fpcore(
            "(FPCore (x) :pre (and (<= 0 x 1) (< x 0.05)) x)"
        )
        points = sample_inputs(core, 100, seed=3, max_rejections=1000)
        assert len(points) == 100
        assert all(p[0] < 0.05 for p in points)

    def test_seed_determinism(self):
        core = parse_fpcore("(FPCore (x y) :pre (and (<= 1e-9 x 1e9) (<= -5 y 5)) (+ x y))")
        a = sample_inputs(core, 8, seed=42)
        b = sample_inputs(core, 8, seed=42)
        c = sample_inputs(core, 8, seed=43)
        assert a == b
        assert a != c


def _sample_in_subprocess(args):
    source, count, seed = args
    return sample_inputs(parse_fpcore(source), count, seed=seed)


class TestCrossProcessDeterminism:
    def test_same_seed_across_processes(self):
        source = (
            "(FPCore (x y) :pre (and (<= 1e-12 x 1e3) (<= -7 y 7)) (* x y))"
        )
        local = sample_inputs(parse_fpcore(source), 12, seed=9)
        with multiprocessing.Pool(2) as pool:
            remote = pool.map(
                _sample_in_subprocess, [(source, 12, 9), (source, 12, 9)]
            )
        assert remote[0] == local
        assert remote[1] == local


class TestSampleBox:
    def test_shape_and_bounds(self):
        points = sample_box(["a", "b"], 1e-3, 1e3, 16, seed=0)
        assert len(points) == 16
        assert all(len(p) == 2 for p in points)
        assert all(1e-3 <= v <= 1e3 for p in points for v in p)

    def test_matches_legacy_cli_sampling(self):
        # The CLI's old inline loop: one log-uniform draw per variable.
        low, high = 1e-3, 1e3
        rng = random.Random(5)
        expected = []
        for __ in range(6):
            expected.append(
                [
                    math.exp(rng.uniform(math.log(low), math.log(high)))
                    for __v in ("x", "y")
                ]
            )
        assert sample_box(["x", "y"], low, high, 6, seed=5) == expected
