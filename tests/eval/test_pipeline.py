"""Tests for the Section 8.1 oracle and evaluation pipeline."""

import pytest

from repro.core import AnalysisConfig
from repro.eval import (
    evaluate_benchmark,
    evaluate_suite,
    oracle_judge,
    sample_points_for_record,
)
from repro.fpcore import corpus_by_name, parse_fpcore
from repro.improve import SearchSettings

FAST = AnalysisConfig(shadow_precision=192)
FAST_SEARCH = SearchSettings(
    beam_width=3, generations=2, max_candidates_per_generation=600
)


class TestOracle:
    def test_erroneous_benchmark_detected(self):
        core = parse_fpcore(
            "(FPCore (x) :pre (<= 1e16 x 1e17) (- (+ x 1) x))"
        )
        verdict = oracle_judge(core, num_points=8)
        assert verdict.has_significant_error
        assert verdict.max_error > 50

    def test_clean_benchmark(self):
        core = parse_fpcore("(FPCore (x) :pre (<= 1 x 100) (* x 2))")
        verdict = oracle_judge(core, num_points=8)
        assert not verdict.has_significant_error
        assert verdict.improvement is None

    def test_improvability_judged(self):
        core = parse_fpcore(
            "(FPCore (x) :pre (<= 1 x 1e12) (- (sqrt (+ x 1)) (sqrt x)))"
        )
        verdict = oracle_judge(core, num_points=10, settings=FAST_SEARCH)
        assert verdict.has_significant_error
        assert verdict.improvable

    def test_loop_benchmarks_not_improved(self):
        core = corpus_by_name()["loop-tenth-accumulate"]
        verdict = oracle_judge(core, num_points=4)
        # Loops are measured but not fed to the rewrite search.
        assert verdict.improvement is None


class TestSamplePoints:
    def analysis_record(self, source, points):
        from repro.api import AnalysisSession

        session = AnalysisSession(config=FAST, result_cache_size=0)
        analysis = session.analyze(
            parse_fpcore(source), points=[list(p) for p in points]
        ).raw
        causes = analysis.reported_root_causes()
        assert causes
        return causes[0]

    def test_points_within_observed_ranges(self):
        record = self.analysis_record(
            "(FPCore (x) (- (+ x 1) x))", [[1e16], [3e16], [9e16]]
        )
        variables, points = sample_points_for_record(record, count=12)
        assert variables
        axis = [p[0] for p in points]
        assert all(1e15 <= v <= 1e17 for v in axis)

    def test_problematic_ranges_prioritized(self):
        # baz: pole at 113; problematic points must appear in samples.
        source = """
        (FPCore (x)
          (- (+ (/ 1 (- x 113)) PI) (/ 1 (- x 113))))
        """
        record = self.analysis_record(
            source, [[150.0], [190.0], [113.0000001], [112.9999999]]
        )
        variables, points = sample_points_for_record(record, count=16)
        near_pole = [p for p in points if abs(p[0]) > 1e5 or abs(p[0]) < 1e-5]
        # The generalized variable is z = 1/(x-113): huge near the pole.
        assert variables


class TestEvaluateBenchmark:
    def test_end_to_end_success(self):
        core = parse_fpcore(
            '(FPCore (x) :name "t" :pre (<= 1 x 1e12)'
            " (- (sqrt (+ x 1)) (sqrt x)))"
        )
        outcome = evaluate_benchmark(
            core, config=FAST, num_points=10, settings=FAST_SEARCH
        )
        assert outcome.oracle.has_significant_error
        assert outcome.herbgrind_detected
        assert outcome.reported_count >= 1
        assert outcome.herbgrind_improvable
        assert outcome.improved_expression is not None

    def test_clean_benchmark_outcome(self):
        core = parse_fpcore(
            '(FPCore (x) :name "c" :pre (<= 1 x 10) (* (+ x 1) 2))'
        )
        outcome = evaluate_benchmark(core, config=FAST, num_points=6)
        assert not outcome.oracle.has_significant_error
        assert not outcome.herbgrind_detected
        assert outcome.reported_count == 0

    def test_suite_summary_counts(self):
        corpus = [
            parse_fpcore(
                '(FPCore (x) :name "bad" :pre (<= 1e16 x 1e17) (- (+ x 1) x))'
            ),
            parse_fpcore('(FPCore (x) :name "good" :pre (<= 1 x 10) (+ x 1))'),
        ]
        summary = evaluate_suite(
            corpus, config=FAST, num_points=8, settings=FAST_SEARCH
        )
        assert summary.total == 2
        assert summary.oracle_erroneous == 1
        assert summary.herbgrind_detected == 1
        assert summary.herbgrind_improvable == 1
        assert summary.end_to_end_rate() == 1.0

    def test_empty_suite_rate(self):
        summary = evaluate_suite([], config=FAST)
        assert summary.end_to_end_rate() == 1.0
