"""Vectorized lane kernels vs their scalar namesakes, bit for bit.

The contract of :mod:`repro.machine.lanes` is exact: every lane the
vector pass accepts (``ok``) must carry *precisely* the bits the scalar
path would have produced — the machine value against
``DOUBLE_HANDLERS``, the double-double components and exactness flag
against the kernels in :mod:`repro.bigfloat.doubledouble`.  A single
mismatched bit would break the batched engine's byte-identity
guarantee, so the comparison here is on the raw IEEE encodings
(``struct.pack``), which distinguishes ``-0.0`` from ``0.0`` and NaN
payloads from each other.

The operand pool concentrates on the adversarial geography: subnormals,
signed zeros, infinities, NaN, near-overflow magnitudes, the Dekker
splitting limit, the deep-underflow guard band, exact cancellations,
and wide double-double pairs.
"""

from __future__ import annotations

import math
import random
import struct

import pytest

from repro.bigfloat.doubledouble import (
    DD_KERNELS,
    DoubleDouble,
    dd_sqrt,
    two_sum,
)
from repro.bigfloat.functions import DOUBLE_HANDLERS
from repro.machine import lanes

if not lanes.HAVE_NUMPY:  # pragma: no cover - the pure CI leg
    pytest.skip("numpy unavailable; vectorized lanes are off",
                allow_module_level=True)


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


class _Shadow:
    """The minimal shadow shape split_column consumes."""

    def __init__(self, real):
        self.real = real


SPECIALS = [
    0.0, -0.0, 1.0, -1.0, 1.5, -2.0, math.inf, -math.inf, math.nan,
    5e-324, -5e-324, 2.2250738585072014e-308, 1.7976931348623157e308,
    math.ldexp(1.0, 970), math.ldexp(1.0, -960), math.ldexp(1.0, -970),
    math.ldexp(1.0, 1023), math.ldexp(1.0, -1060), 1e16, 1.0 + 2 ** -52,
]


def operand_pool(rng: random.Random, n: int):
    """(value, shadow) lanes mixing specials, wide pairs, and leaves."""
    vals, shads = [], []
    for _ in range(n):
        shape = rng.randrange(6)
        if shape == 0:
            hi = rng.choice(SPECIALS)
            lo = 0.0
        elif shape == 1:
            hi = math.ldexp(rng.random() + 0.5, rng.randint(-1074, 1023))
            hi = -hi if rng.random() < 0.5 else hi
            lo = 0.0
        else:
            hi = math.ldexp(rng.random() + 0.5, rng.randint(-340, 340))
            hi = -hi if rng.random() < 0.5 else hi
            lo = math.ldexp(rng.random() - 0.5,
                            math.frexp(hi)[1] - 54)
            hi, lo = two_sum(hi, lo)
        if shape == 5:
            # An unfilled opaque lane: shadow None, machine value only.
            vals.append(hi)
            shads.append(None)
        else:
            vals.append(hi)
            shads.append(_Shadow(DoubleDouble(hi, lo)))
    return vals, shads


def scalar_components(shadow, value):
    if shadow is None:
        return value, 0.0
    return shadow.real.hi, shadow.real.lo


class TestDDBinaryBitIdentity:
    @pytest.mark.parametrize("op", sorted(lanes.DD_BINARY_OPS))
    def test_fuzz_matches_scalar_kernels(self, op):
        rng = random.Random(0x1A0E5 + ord(op[0]))
        checked = 0
        for _ in range(25):
            avals, ashads = operand_pool(rng, 80)
            bvals, bshads = operand_pool(rng, 80)
            cols = lanes.dd_binary_columns(op, avals, ashads,
                                           bvals, bshads)
            if cols is None:
                continue
            zh, zl, exact, ok = cols
            for i in range(80):
                if not ok[i]:
                    continue
                xh, xl = scalar_components(ashads[i], avals[i])
                yh, yl = scalar_components(bshads[i], bvals[i])
                outcome = DD_KERNELS[op](xh, xl, yh, yl)
                assert outcome is not None, \
                    (op, xh, xl, yh, yl, "vector accepted a promote lane")
                sh, sl, sexact = outcome
                assert bits(zh[i]) == bits(sh), (op, xh, xl, yh, yl)
                assert bits(zl[i]) == bits(sl), (op, xh, xl, yh, yl)
                assert bool(exact[i]) == sexact, (op, xh, xl, yh, yl)
                checked += 1
        assert checked > 500, f"too few accepted lanes exercised: {checked}"

    def test_cancellation_lanes(self):
        # x + (-x) and near-cancellations: the scalar kernel's exact
        # path must be reproduced (or the lane rejected), never changed.
        rng = random.Random(0x1A0F0)
        avals, ashads, bvals, bshads = [], [], [], []
        for _ in range(64):
            hi = math.ldexp(rng.random() + 0.5, rng.randint(-40, 40))
            lo = math.ldexp(rng.random() - 0.5, math.frexp(hi)[1] - 54)
            hi, lo = two_sum(hi, lo)
            avals.append(hi)
            ashads.append(_Shadow(DoubleDouble(hi, lo)))
            flip = rng.random() < 0.5
            bvals.append(-hi)
            bshads.append(_Shadow(
                DoubleDouble(-hi, -lo if flip else 0.0)))
        cols = lanes.dd_binary_columns("+", avals, ashads, bvals, bshads)
        assert cols is not None
        zh, zl, exact, ok = cols
        for i in range(64):
            if not ok[i]:
                continue
            outcome = DD_KERNELS["+"](
                avals[i], ashads[i].real.lo, bvals[i], bshads[i].real.lo
            )
            assert outcome is not None
            assert bits(zh[i]) == bits(outcome[0])
            assert bits(zl[i]) == bits(outcome[1])


class TestDDUnaryBitIdentity:
    def test_sqrt_fuzz_matches_scalar_kernel(self):
        rng = random.Random(0x1A100)
        checked = 0
        for _ in range(40):
            avals, ashads = operand_pool(rng, 80)
            cols = lanes.dd_unary_columns("sqrt", avals, ashads)
            if cols is None:
                continue
            zh, zl, exact, ok = cols
            for i in range(80):
                if not ok[i]:
                    continue
                xh, xl = scalar_components(ashads[i], avals[i])
                outcome = dd_sqrt(xh, xl)
                assert outcome is not None, (xh, xl)
                assert bits(zh[i]) == bits(outcome[0]), (xh, xl)
                assert bits(zl[i]) == bits(outcome[1]), (xh, xl)
                assert bool(exact[i]) == outcome[2], (xh, xl)
                checked += 1
        assert checked > 300


class TestMachineColumns:
    @pytest.mark.parametrize("op", sorted(lanes.MACHINE_BINARY_OPS))
    def test_binary_matches_double_handlers(self, op):
        rng = random.Random(0x1A110 + ord(op[0]))
        handler = DOUBLE_HANDLERS[op]
        for _ in range(30):
            n = 64
            avals = [rng.choice(SPECIALS) if rng.random() < 0.4
                     else math.ldexp(rng.random() + 0.5,
                                     rng.randint(-1074, 1023))
                     for _ in range(n)]
            bvals = [rng.choice(SPECIALS) if rng.random() < 0.4
                     else math.ldexp(rng.random() + 0.5,
                                     rng.randint(-1074, 1023))
                     for _ in range(n)]
            col = lanes.machine_binary(op, avals, bvals, handler)
            assert col is not None
            for i in range(n):
                assert bits(col[i]) == bits(handler(avals[i], bvals[i])), \
                    (op, avals[i], bvals[i])

    @pytest.mark.parametrize("op", sorted(lanes.MACHINE_UNARY_OPS))
    def test_unary_matches_double_handlers(self, op):
        rng = random.Random(0x1A120 + ord(op[0]))
        handler = DOUBLE_HANDLERS[op]
        for _ in range(30):
            n = 64
            avals = [rng.choice(SPECIALS) if rng.random() < 0.5
                     else math.ldexp(rng.random() + 0.5,
                                     rng.randint(-1074, 1023))
                     for _ in range(n)]
            col = lanes.machine_unary(op, avals, handler)
            assert col is not None
            for i in range(n):
                assert bits(col[i]) == bits(handler(avals[i])), \
                    (op, avals[i])

    def test_division_by_zero_lanes_use_scalar_glue(self):
        handler = DOUBLE_HANDLERS["/"]
        avals = [1.0, -1.0, 0.0, -0.0, math.nan, math.inf, 2.0, 3.0]
        bvals = [0.0, -0.0, 0.0, -0.0, 0.0, 0.0, -0.0, 1.0]
        col = lanes.machine_binary("/", avals, bvals, handler)
        assert col is not None
        for i, (a, b) in enumerate(zip(avals, bvals)):
            assert bits(col[i]) == bits(handler(a, b)), (a, b)

    def test_negative_sqrt_lanes_use_scalar_glue(self):
        handler = DOUBLE_HANDLERS["sqrt"]
        avals = [-1.0, 4.0, -0.0, 0.0, -math.inf, math.inf, 2.0, -4.0]
        col = lanes.machine_unary("sqrt", avals, handler)
        assert col is not None
        for i, a in enumerate(avals):
            assert bits(col[i]) == bits(handler(a)), a


class TestGates:
    def test_short_columns_fall_back(self):
        handler = DOUBLE_HANDLERS["+"]
        short = [1.0] * (lanes.MIN_LANES - 1)
        assert lanes.machine_binary("+", short, short, handler) is None
        shads = [_Shadow(DoubleDouble(1.0))] * (lanes.MIN_LANES - 1)
        assert lanes.dd_binary_columns("+", short, shads, short, shads) \
            is None

    def test_uncovered_ops_fall_back(self):
        vals = [1.0] * 16
        shads = [_Shadow(DoubleDouble(1.0))] * 16
        assert lanes.machine_binary("fmod", vals, vals, min) is None
        assert lanes.dd_binary_columns("fmod", vals, shads, vals, shads) \
            is None
        assert lanes.dd_unary_columns("neg", vals, shads) is None

    def test_split_column_masks_non_hardware_lanes(self):
        vals = [1.0, 2.0, math.nan, 4.0]
        shads = [
            _Shadow(DoubleDouble(1.0)),
            _Shadow(object()),   # a BigFloat-tier lane
            None,                # opaque lane with a NaN machine value
            None,                # opaque lane with a finite value
        ]
        hi, lo, ok = lanes.split_column(vals, shads)
        assert ok == [True, False, False, True]
        assert (hi[0], lo[0]) == (1.0, 0.0)
        assert (hi[3], lo[3]) == (4.0, 0.0)

    def test_split_column_without_hardware_lanes_returns_none(self):
        vals = [1.0, 2.0]
        shads = [_Shadow(object()), _Shadow(object())]
        assert lanes.split_column(vals, shads) is None
