"""Tests for the machine ISA, builder and interpreter."""

import math

import pytest

from repro.machine import (
    FloatBox,
    FunctionBuilder,
    Interpreter,
    MachineError,
    Program,
    Tracer,
    isa,
)


def single_function_program(builder: FunctionBuilder) -> Program:
    program = Program()
    program.add(builder.build())
    return program


def run_main(builder: FunctionBuilder, inputs=()):
    return Interpreter(single_function_program(builder)).run(inputs)


class TestBasics:
    def test_const_and_out(self):
        fn = FunctionBuilder("main")
        fn.out(fn.const(2.5))
        fn.halt()
        assert run_main(fn) == [2.5]

    def test_arithmetic(self):
        fn = FunctionBuilder("main")
        a = fn.const(3.0)
        b = fn.const(4.0)
        fn.out(fn.op("+", a, fn.op("*", b, b)))
        fn.halt()
        assert run_main(fn) == [19.0]

    def test_read_inputs(self):
        fn = FunctionBuilder("main")
        x = fn.read()
        y = fn.read()
        fn.out(fn.op("-", x, y))
        fn.halt()
        assert run_main(fn, [10.0, 4.0]) == [6.0]

    def test_read_past_end(self):
        fn = FunctionBuilder("main")
        fn.read()
        fn.halt()
        with pytest.raises(MachineError):
            run_main(fn, [])

    def test_single_precision_rounding(self):
        fn = FunctionBuilder("main")
        x = fn.const(0.1, single=True)
        fn.out(x)
        fn.halt()
        import struct

        expected = struct.unpack("<f", struct.pack("<f", 0.1))[0]
        assert run_main(fn) == [expected]

    def test_division_by_zero_is_inf(self):
        fn = FunctionBuilder("main")
        fn.out(fn.op("/", fn.const(1.0), fn.const(0.0)))
        fn.halt()
        assert run_main(fn) == [math.inf]

    def test_fma_is_fused(self):
        fn = FunctionBuilder("main")
        a = fn.const(1e8 + 1)
        b = fn.const(1e8 - 1)
        c = fn.const(-1e16)
        fn.out(fn.op("fma", a, b, c))
        fn.halt()
        # (1e8+1)(1e8-1) - 1e16 = -1 exactly; a mul+add would lose it.
        assert run_main(fn) == [-1.0]


class TestControlFlow:
    def test_branch_taken(self):
        fn = FunctionBuilder("main")
        x = fn.read()
        zero = fn.const(0.0)
        negative = fn.fresh_label("negative")
        fn.branch("lt", x, zero, negative)
        fn.out(fn.const(1.0))
        fn.halt()
        fn.label(negative)
        fn.out(fn.const(-1.0))
        fn.halt()
        assert run_main(fn, [5.0]) == [1.0]
        assert run_main(fn, [-5.0]) == [-1.0]

    def test_branch_nan_semantics(self):
        fn = FunctionBuilder("main")
        x = fn.read()
        target = fn.fresh_label("taken")
        fn.branch("ne", x, x, target)
        fn.out(fn.const(0.0))
        fn.halt()
        fn.label(target)
        fn.out(fn.const(1.0))
        fn.halt()
        # Only NaN satisfies x != x.
        assert run_main(fn, [math.nan]) == [1.0]
        assert run_main(fn, [3.0]) == [0.0]

    def test_loop(self):
        fn = FunctionBuilder("main")
        i = fn.const_int(0)
        limit = fn.const_int(5)
        counter = fn.mov(fn.const(0.0))
        step = fn.const(1.5)
        head = fn.label("head")
        done = fn.fresh_label("done")
        fn.int_branch("ge", i, limit, done)
        fn.mov_to(counter, fn.op("+", counter, step))
        one = fn.const_int(1)
        fn.mov_to(i, fn.int_op("iadd", i, one))
        fn.jump(head)
        fn.label(done)
        fn.out(counter)
        fn.halt()
        assert run_main(fn) == [7.5]

    def test_infinite_loop_guard(self):
        fn = FunctionBuilder("main")
        fn.label("spin")
        fn.jump("spin")
        program = single_function_program(fn)
        with pytest.raises(MachineError):
            Interpreter(program, max_steps=1000).run([])

    def test_unplaced_label_rejected(self):
        fn = FunctionBuilder("main")
        fn.jump("nowhere")
        with pytest.raises(ValueError):
            fn.build()


class TestMemory:
    def test_store_load_roundtrip(self):
        fn = FunctionBuilder("main")
        addr = fn.const_int(100)
        value = fn.const(42.5)
        fn.store(addr, value)
        fn.out(fn.load(addr))
        fn.halt()
        assert run_main(fn) == [42.5]

    def test_boxes_shared_through_memory(self):
        """A value loaded back from memory is the same box (shadow travels)."""

        class BoxCollector(Tracer):
            def __init__(self):
                self.stored = None
                self.outed = None

            def on_const(self, instr, box):
                self.stored = box

            def on_out(self, instr, box):
                self.outed = box

        fn = FunctionBuilder("main")
        addr = fn.const_int(5)
        value = fn.const(1.25)
        fn.store(addr, value)
        loaded = fn.load(addr)
        fn.out(loaded)
        fn.halt()
        collector = BoxCollector()
        Interpreter(single_function_program(fn), tracer=collector).run([])
        assert collector.stored is collector.outed

    def test_uninitialized_load(self):
        fn = FunctionBuilder("main")
        fn.load(fn.const_int(0))
        fn.halt()
        with pytest.raises(MachineError):
            run_main(fn)

    def test_computed_addresses(self):
        # base + i*stride addressing, like a matrix walk.
        fn = FunctionBuilder("main")
        base = fn.const_int(1000)
        stride = fn.const_int(8)
        total = fn.mov(fn.const(0.0))
        for i in range(3):
            index = fn.const_int(i)
            offset = fn.int_op("imul", index, stride)
            addr = fn.int_op("iadd", base, offset)
            fn.store(addr, fn.const(float(i + 1)))
        for i in range(3):
            index = fn.const_int(i)
            offset = fn.int_op("imul", index, stride)
            addr = fn.int_op("iadd", base, offset)
            fn.mov_to(total, fn.op("+", total, fn.load(addr)))
        fn.out(total)
        fn.halt()
        assert run_main(fn) == [6.0]


class TestBitOps:
    def test_bit_negate(self):
        fn = FunctionBuilder("main")
        fn.out(fn.bit_negate(fn.const(3.5)))
        fn.halt()
        assert run_main(fn) == [-3.5]

    def test_bit_fabs(self):
        fn = FunctionBuilder("main")
        fn.out(fn.bit_fabs(fn.const(-3.5)))
        fn.halt()
        assert run_main(fn) == [3.5]

    def test_bitcast_roundtrip(self):
        fn = FunctionBuilder("main")
        x = fn.const(math.pi)
        bits = fn.bitcast_to_int(x)
        fn.out(fn.bitcast_to_float(bits))
        fn.halt()
        assert run_main(fn) == [math.pi]

    def test_exponent_surgery(self):
        # Build 2^10 from raw bits: (1023+10) << 52.
        fn = FunctionBuilder("main")
        biased = fn.const_int(1033)
        bits = fn.int_op("ishl", biased, fn.const_int(52))
        fn.out(fn.bitcast_to_float(bits))
        fn.halt()
        assert run_main(fn) == [1024.0]


class TestConversions:
    def test_float_to_int_truncates(self):
        fn = FunctionBuilder("main")
        x = fn.read()
        i = fn.float_to_int(x)
        fn.out(fn.int_to_float(i))
        fn.halt()
        assert run_main(fn, [3.9]) == [3.0]
        assert run_main(fn, [-3.9]) == [-3.0]

    def test_int_arithmetic(self):
        fn = FunctionBuilder("main")
        a = fn.const_int(17)
        b = fn.const_int(5)
        quotient = fn.int_op("idiv", a, b)
        remainder = fn.int_op("imod", a, b)
        fn.out(fn.int_to_float(quotient))
        fn.out(fn.int_to_float(remainder))
        fn.halt()
        assert run_main(fn) == [3.0, 2.0]

    def test_idiv_truncates_toward_zero(self):
        fn = FunctionBuilder("main")
        a = fn.const_int(-17)
        b = fn.const_int(5)
        fn.out(fn.int_to_float(fn.int_op("idiv", a, b)))
        fn.out(fn.int_to_float(fn.int_op("imod", a, b)))
        fn.halt()
        assert run_main(fn) == [-3.0, -2.0]

    def test_type_errors(self):
        fn = FunctionBuilder("main")
        x = fn.const(1.0)
        fn.instrs.append(isa.IntOp("bad", "iadd", x, x))
        fn.halt()
        with pytest.raises(MachineError):
            run_main(fn)


class TestCalls:
    def test_user_function(self):
        program = Program()
        square = FunctionBuilder("square", params=("v",))
        square.ret(square.op("*", "v", "v"))
        program.add(square.build())
        main = FunctionBuilder("main")
        x = main.read()
        main.out(main.call("square", x))
        main.halt()
        program.add(main.build())
        assert Interpreter(program).run([3.0]) == [9.0]

    def test_recursion(self):
        # factorial via float compare (n <= 1).
        program = Program()
        fact = FunctionBuilder("fact", params=("n",))
        base = fact.fresh_label("base")
        fact.branch("le", "n", fact.const(1.0), base)
        smaller = fact.op("-", "n", fact.const(1.0))
        fact.ret(fact.op("*", "n", fact.call("fact", smaller)))
        fact.label(base)
        fact.ret(fact.const(1.0))
        program.add(fact.build())
        main = FunctionBuilder("main")
        main.out(main.call("fact", main.read()))
        main.halt()
        program.add(main.build())
        assert Interpreter(program).run([6.0]) == [720.0]

    def test_unknown_function(self):
        main = FunctionBuilder("main")
        main.call("missing", main.const(1.0))
        main.halt()
        with pytest.raises(MachineError):
            run_main(main)

    def test_argument_boxes_shared(self):
        """Arguments pass by box: shadows survive the call boundary."""

        class Collector(Tracer):
            def __init__(self):
                self.read_box = None
                self.op_args = None

            def on_read(self, instr, box, index):
                self.read_box = box

            def on_op(self, instr, op, args, result):
                self.op_args = list(args)
                return None

        program = Program()
        callee = FunctionBuilder("callee", params=("v",))
        callee.ret(callee.op("+", "v", "v"))
        program.add(callee.build())
        main = FunctionBuilder("main")
        main.out(main.call("callee", main.read()))
        main.halt()
        program.add(main.build())
        collector = Collector()
        Interpreter(program, tracer=collector).run([2.0])
        assert collector.op_args[0] is collector.read_box


class TestPacked:
    def test_packed_add(self):
        fn = FunctionBuilder("main")
        a0, a1 = fn.const(1.0), fn.const(2.0)
        b0, b1 = fn.const(10.0), fn.const(20.0)
        r0, r1 = fn.packed("+", [(a0, b0), (a1, b1)])
        fn.out(r0)
        fn.out(r1)
        fn.halt()
        assert run_main(fn) == [11.0, 22.0]

    def test_packed_each_lane_has_own_box(self):
        class Collector(Tracer):
            def __init__(self):
                self.results = []

            def on_op(self, instr, op, args, result):
                self.results.append(result)
                return None

        fn = FunctionBuilder("main")
        a0, a1 = fn.const(1.0), fn.const(2.0)
        fn.packed("sqrt", [(a0,), (a1,)])
        fn.halt()
        collector = Collector()
        Interpreter(single_function_program(fn), tracer=collector).run([])
        assert len(collector.results) == 2
        assert collector.results[0] is not collector.results[1]


class TestTracerOverride:
    def test_override_result(self):
        """Tracers can perturb results (the Verrou mechanism)."""

        class AlwaysOne(Tracer):
            def on_op(self, instr, op, args, result):
                return 1.0

        fn = FunctionBuilder("main")
        fn.out(fn.op("+", fn.const(2.0), fn.const(2.0)))
        fn.halt()
        outputs = Interpreter(
            single_function_program(fn), tracer=AlwaysOne()
        ).run([])
        assert outputs == [1.0]

    def test_stats_collected(self):
        fn = FunctionBuilder("main")
        x = fn.const(2.0)
        fn.op("+", x, x)
        fn.op("*", x, x)
        fn.store(fn.const_int(0), x)
        fn.halt()
        interpreter = Interpreter(single_function_program(fn))
        interpreter.run([])
        assert interpreter.stats.float_ops == 2
        assert interpreter.stats.stores == 1
        assert interpreter.stats.steps >= 5


class TestConstructOnceRunMany:
    """The reference engine shares the compiled engine's contract: one
    interpreter, many runs, each starting from fresh memory/stats and
    emitting the exact same tracer-event stream as a fresh instance."""

    class EventLog(Tracer):
        def __init__(self):
            self.events = []

        def on_start(self, machine):
            self.events.append(("start",))

        def on_read(self, instr, box, index):
            self.events.append(("read", index, box.value))

        def on_op(self, instr, op, args, result):
            self.events.append(
                ("op", op, tuple(a.value for a in args), result.value)
            )
            return None

        def on_branch(self, instr, lhs, rhs, taken):
            self.events.append(("branch", lhs.value, rhs.value, taken))

        def on_out(self, instr, box):
            self.events.append(("out", box.value))

        def on_finish(self, machine):
            self.events.append(("finish",))

    @staticmethod
    def _program():
        fn = FunctionBuilder("main")
        x = fn.read()
        y = fn.read()
        fn.out(fn.op("-", fn.op("+", x, y), x))
        fn.halt()
        return single_function_program(fn)

    def test_run_resets_memory_and_stats(self):
        fn = FunctionBuilder("main")
        x = fn.const(2.0)
        fn.op("+", x, x)
        fn.store(fn.const_int(0), x)
        fn.halt()
        interpreter = Interpreter(single_function_program(fn))
        interpreter.run([])
        interpreter.run([])
        # No accumulation across runs: each run's view is fresh.
        assert interpreter.stats.float_ops == 1
        assert interpreter.stats.stores == 1
        assert list(interpreter.memory) == [0]

    def test_event_stream_matches_fresh_interpreters(self):
        program = self._program()
        points = [[1e16, 1.5], [3.0, 4.0], [2e16, 2.5]]

        shared_log = self.EventLog()
        shared = Interpreter(program, tracer=shared_log)
        shared_outputs = [shared.run(p) for p in points]

        fresh_events, fresh_outputs = [], []
        for p in points:
            log = self.EventLog()
            fresh_outputs.append(
                Interpreter(program, tracer=log).run(p)
            )
            fresh_events.extend(log.events)

        assert shared_outputs == fresh_outputs
        assert shared_log.events == fresh_events

    def test_event_stream_matches_compiled_engine(self):
        from repro.machine.compiled import CompiledProgram

        program = self._program()
        points = [[1e16, 1.5], [3.0, 4.0]]

        ref_log = self.EventLog()
        reference = Interpreter(program, tracer=ref_log)
        ref_outputs = [reference.run(p) for p in points]

        comp_log = self.EventLog()
        compiled = CompiledProgram(program, tracer=comp_log)
        comp_outputs = [compiled.run(p) for p in points]

        assert ref_outputs == comp_outputs
        assert ref_log.events == comp_log.events
