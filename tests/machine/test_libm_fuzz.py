"""Differential fuzzing of the software libm against the host libm.

The IR libm only needs to be faithful to a few ulps (Section 8.2's
ablation even relies on its error being *visible*), but it must never
be wildly wrong or produce the wrong special value — that would distort
the wrapping experiments.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpcore import parse_fpcore
from repro.ieee import ulps_between
from repro.machine import Interpreter, build_libm, compile_fpcore

LIBM = build_libm()
_PROGRAMS = {}


def call_soft(name, *args):
    program = _PROGRAMS.get((name, len(args)))
    if program is None:
        letters = "abc"[: len(args)]
        source = (
            f"(FPCore ({' '.join(letters)}) ({name} {' '.join(letters)}))"
        )
        program = compile_fpcore(parse_fpcore(source))
        _PROGRAMS[(name, len(args))] = program
    return Interpreter(program, wrap_libraries=False, libm=LIBM).run(
        list(args)
    )[0]


def assert_faithful(ours, reference, ulps=64):
    if math.isnan(reference):
        assert math.isnan(ours)
    elif math.isinf(reference):
        assert ours == reference or abs(ours) > 1e300
    elif math.isinf(ours) or math.isnan(ours):
        pytest.fail(f"software libm produced {ours} vs {reference}")
    else:
        assert ulps_between(ours, reference) <= ulps, (ours, reference)


class TestLibmFuzz:
    @given(st.floats(min_value=-700, max_value=700))
    @settings(max_examples=80, deadline=None)
    def test_exp(self, x):
        assert_faithful(call_soft("exp", x), math.exp(x), ulps=8)

    @given(st.floats(min_value=1e-300, max_value=1e300))
    @settings(max_examples=80, deadline=None)
    def test_log(self, x):
        assert_faithful(call_soft("log", x), math.log(x), ulps=8)

    @given(st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=80, deadline=None)
    def test_sin(self, x):
        # The soft libm's 3-term pi/2 reduction leaves ~|x|*1e-17 of
        # absolute error; near zeros of sin that error is a huge number
        # of *ulps of the tiny result* even though the value is fine.
        # Judge by absolute error scaled to the argument there.
        ours, reference = call_soft("sin", x), math.sin(x)
        close_enough = (
            ulps_between(ours, reference) <= 256
            or abs(ours - reference) <= max(1e-9, abs(x) * 1e-14)
        )
        assert close_enough, (x, ours, reference)

    @given(st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=80, deadline=None)
    def test_cos(self, x):
        ours, reference = call_soft("cos", x), math.cos(x)
        close_enough = (
            ulps_between(ours, reference) <= 256
            or abs(ours - reference) <= max(1e-9, abs(x) * 1e-14)
        )
        assert close_enough, (x, ours, reference)

    @given(st.floats(min_value=-1e12, max_value=1e12))
    @settings(max_examples=60, deadline=None)
    def test_atan(self, x):
        assert_faithful(call_soft("atan", x), math.atan(x), ulps=16)

    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_atan2(self, y, x):
        assert_faithful(call_soft("atan2", y, x), math.atan2(y, x), ulps=16)

    @given(st.floats(min_value=-1, max_value=1))
    @settings(max_examples=60, deadline=None)
    def test_asin_acos(self, x):
        assert_faithful(call_soft("asin", x), math.asin(x), ulps=10 ** 5)
        assert_faithful(call_soft("acos", x), math.acos(x), ulps=10 ** 5)

    @given(
        st.floats(min_value=0.01, max_value=100),
        st.floats(min_value=-20, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_pow(self, x, y):
        reference = math.pow(x, y)
        if math.isinf(reference) or reference == 0.0:
            return
        assert_faithful(call_soft("pow", x, y), reference, ulps=10 ** 6)

    @given(st.floats(min_value=-30, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_hyperbolics(self, x):
        # The software sinh/tanh use the naive (e^x - e^-x)/2 form, which
        # genuinely loses ~log2(1/|x|) bits to cancellation near zero —
        # behaviour the wrapping ablation *wants* visible.  Allow it.
        if abs(x) < 0.01:
            assert call_soft("sinh", x) == pytest.approx(
                math.sinh(x), rel=1e-7
            )
            assert call_soft("tanh", x) == pytest.approx(
                math.tanh(x), rel=1e-7
            )
        else:
            assert_faithful(call_soft("sinh", x), math.sinh(x), ulps=128)
            assert_faithful(call_soft("tanh", x), math.tanh(x), ulps=128)
        assert_faithful(call_soft("cosh", x), math.cosh(x), ulps=128)
