"""Lockstep batched execution: grouping, divergence, byte-identity.

The batched engine's one contract is that turning it on is invisible:
reports are byte-identical to the sequential per-point loop for every
lane pattern — uniform batches, divergent branches splitting the lanes
into sub-batches, loop programs falling back entirely, and the
degenerate one-lane batch.
"""

import pytest

from repro.core import AnalysisConfig, EngineFeatures, analyze_program
from repro.core.analysis import _batched_default
from repro.fpcore.parser import parse_fpcore
from repro.machine import BatchedProgram, Tracer, compile_fpcore
from repro.machine.interpreter import MachineError

BATCHED = EngineFeatures(
    True, True, True, kernel_cache=True, fused_pipeline=True, batched=True
)
SEQUENTIAL = EngineFeatures(
    True, True, True, kernel_cache=True, fused_pipeline=True, batched=False
)

STRAIGHT = parse_fpcore("(FPCore (x y) (- (+ x y) x))")
BRANCHY = parse_fpcore(
    "(FPCore (x) (if (< x 1.0) (+ x 1e16) (- x 1e16)))"
)
LOOP = parse_fpcore(
    "(FPCore (x) (while (< i 3.0) "
    "([i 0.0 (+ i 1.0)] [acc x (+ acc x)]) acc))"
)


def signature(analysis):
    """Every externally observable per-site statistic."""
    rows = []
    for record in analysis.candidate_records():
        rows.append((
            record.site_id, record.op, record.loc, record.executions,
            record.candidate_executions, record.max_local_error,
            record.sum_local_error, record.compensations_detected,
            str(record.symbolic_expression),
        ))
    for spot in sorted(
        analysis.spot_records.values(), key=lambda s: s.site_id
    ):
        rows.append((
            spot.site_id, spot.kind, spot.loc, spot.executions,
            spot.erroneous, spot.max_error, spot.sum_error,
            sorted(r.site_id for r in spot.influences),
        ))
    return rows


def run_both(core, points, policy="adaptive"):
    config = AnalysisConfig(precision_policy=policy)
    program = compile_fpcore(core)
    batched, out_b = analyze_program(
        program, points, config=config, features=BATCHED
    )
    sequential, out_s = analyze_program(
        program, points, config=config, features=SEQUENTIAL
    )
    assert out_b == out_s
    assert batched.runs == sequential.runs == len(points)
    assert signature(batched) == signature(sequential)
    return batched


class TestLockstepParity:
    @pytest.mark.parametrize("policy", ["fixed", "adaptive"])
    def test_uniform_batch_single_group(self, policy):
        points = [[1e16, 1.5], [2e16, 2.5], [3.0, 4.0], [5.0, 0.5]]
        analysis = run_both(STRAIGHT, points, policy)
        assert analysis.batched_groups == 1
        assert analysis.batched_lanes == 4

    @pytest.mark.parametrize("policy", ["fixed", "adaptive"])
    def test_divergent_lanes_split_into_groups(self, policy):
        # Signatures T F T T F: maximal *consecutive* runs give four
        # sub-batches ([0], [1], [2,3], [4]) — never a reordering.
        points = [[0.5], [2.0], [0.25], [0.75], [3.0]]
        analysis = run_both(BRANCHY, points, policy)
        assert analysis.batched_groups == 4
        assert analysis.batched_lanes == 5

    def test_lane_diverging_mid_program(self):
        # Both branches agree on the first comparison but not the
        # second: grouping is by the *whole* signature.
        core = parse_fpcore(
            "(FPCore (x) (if (< x 10.0) "
            "(if (< x 1.0) (+ x 1e16) (- x 1e16)) (* x 2.0)))"
        )
        points = [[0.5], [5.0], [0.25]]
        analysis = run_both(core, points)
        assert analysis.batched_groups == 3

    def test_lane_count_one_degenerate(self):
        # A divergence pattern that isolates every lane: each runs as
        # a one-lane batch and must still be byte-identical.
        points = [[0.5], [2.0], [0.75]]
        analysis = run_both(BRANCHY, points)
        assert analysis.batched_groups == 3
        assert analysis.batched_lanes == 3

    def test_loop_program_falls_back_to_sequential(self):
        analysis = run_both(LOOP, [[1.0], [2.0], [3.0]])
        assert analysis.batched_groups == 0

    def test_single_point_uses_sequential_path(self):
        analysis = run_both(STRAIGHT, [[1e16, 1.5]])
        assert analysis.batched_groups == 0


class TestStaticEligibility:
    def test_loop_program_is_ineligible(self):
        program = compile_fpcore(LOOP)
        assert BatchedProgram.compile(program, Tracer()) is None

    def test_straight_line_is_eligible(self):
        program = compile_fpcore(STRAIGHT)
        batched = BatchedProgram.compile(program, Tracer())
        assert batched is not None
        # Lane 0 exhibits the rounding the analysis exists to find:
        # (1e16 + 1.5) - 1e16 is 2.0 in doubles.
        assert batched.run_points([[1e16, 1.5], [3.0, 4.0]]) == [
            [2.0], [4.0]
        ]

    def test_forward_branches_are_eligible(self):
        program = compile_fpcore(BRANCHY)
        batched = BatchedProgram.compile(program, Tracer())
        assert batched is not None
        out = batched.run_points([[0.5], [2.0]])
        assert out == [[0.5 + 1e16], [2.0 - 1e16]]
        assert batched.groups_run == 2

    def test_empty_point_list(self):
        program = compile_fpcore(STRAIGHT)
        batched = BatchedProgram.compile(program, Tracer())
        assert batched.run_points([]) == []


class TestErrorFallback:
    def test_probe_failure_returns_none(self):
        # Too few inputs: the probe lane raises, run_points reports
        # None, and nothing was aggregated.
        program = compile_fpcore(BRANCHY)
        batched = BatchedProgram.compile(program, Tracer())
        assert batched.run_points([[0.5], []]) is None

    def test_ragged_inputs_match_sequential_error(self):
        # Straight-line programs skip the probe, so the failure
        # surfaces mid-batch; the driver must reproduce the
        # sequential behaviour (raise on the short lane).
        program = compile_fpcore(STRAIGHT)
        config = AnalysisConfig()
        with pytest.raises(MachineError) as batched_err:
            analyze_program(
                program, [[1.0, 2.0], [1.0]], features=BATCHED
            )
        with pytest.raises(MachineError) as sequential_err:
            analyze_program(
                program, [[1.0, 2.0], [1.0]], features=SEQUENTIAL
            )
        assert str(batched_err.value) == str(sequential_err.value)


class TestEnvironmentSwitch:
    def test_repro_batched_off_disables_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED", "0")
        assert not _batched_default()
        assert not EngineFeatures.for_engine("compiled").batched

    def test_repro_batched_on_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCHED", raising=False)
        assert _batched_default()
        assert EngineFeatures.for_engine("compiled").batched
        assert not EngineFeatures.for_engine("reference").batched
