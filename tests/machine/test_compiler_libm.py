"""Tests for the FPCore→IR compiler and the software libm."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpcore import eval_double, load_corpus, parse_expr, parse_fpcore
from repro.ieee import ulps_between
from repro.machine import Interpreter, build_libm, compile_fpcore
from repro.machine.compiler import CompileError
from repro.machine.libm import MAGIC_ROUND


def run_core(source, inputs, wrap=True):
    program = compile_fpcore(parse_fpcore(source))
    interpreter = Interpreter(
        program, wrap_libraries=wrap, libm=build_libm() if not wrap else None
    )
    return interpreter.run(inputs)[0]


class TestCompiler:
    def test_literal(self):
        assert run_core("(FPCore () 42)", []) == 42.0

    def test_arguments_read_in_order(self):
        assert run_core("(FPCore (x y) (- x y))", [10.0, 3.0]) == 7.0

    def test_constants(self):
        assert run_core("(FPCore () PI)", []) == math.pi

    def test_if_lowering(self):
        source = "(FPCore (x) (if (< x 0) (- x) x))"
        assert run_core(source, [-4.0]) == 4.0
        assert run_core(source, [4.0]) == 4.0

    def test_if_nan_falls_to_else(self):
        # (< NaN 0) is false: must take the else branch, not the then.
        source = "(FPCore (x) (if (< x 0) 1 2))"
        assert run_core(source, [math.nan]) == 2.0

    def test_nested_if_and_bools(self):
        source = "(FPCore (x) (if (and (< 0 x) (< x 10)) 1 0))"
        assert run_core(source, [5.0]) == 1.0
        assert run_core(source, [-5.0]) == 0.0
        assert run_core(source, [50.0]) == 0.0

    def test_or_and_not(self):
        source = "(FPCore (x) (if (or (< x 0) (not (< x 10))) 1 0))"
        assert run_core(source, [-1.0]) == 1.0
        assert run_core(source, [20.0]) == 1.0
        assert run_core(source, [5.0]) == 0.0

    def test_comparison_chain(self):
        source = "(FPCore (a b c) (if (< a b c) 1 0))"
        assert run_core(source, [1.0, 2.0, 3.0]) == 1.0
        assert run_core(source, [1.0, 3.0, 2.0]) == 0.0

    def test_let(self):
        source = "(FPCore (x) (let ([a (+ x 1)] [b (- x 1)]) (* a b)))"
        assert run_core(source, [3.0]) == 8.0

    def test_let_star(self):
        source = "(FPCore (x) (let* ([a (+ x 1)] [b (* a a)]) b))"
        assert run_core(source, [2.0]) == 9.0

    def test_while_loop(self):
        source = """
        (FPCore (n)
          (while* (< i n) ([i 0 (+ i 1)] [acc 0 (+ acc i)]) acc))
        """
        assert run_core(source, [5.0]) == 15.0

    def test_boolean_in_value_position_rejected(self):
        with pytest.raises(CompileError):
            compile_fpcore(parse_fpcore("(FPCore (x) (< x 1))"))

    def test_every_corpus_benchmark_compiles(self):
        for core in load_corpus():
            program = compile_fpcore(core)
            assert program.instruction_count() > 0, core.name


class TestCompiledMatchesEvaluator:
    """Compiled code agrees with the direct FPCore double evaluator."""

    SOURCES = [
        ("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))", [(0.5,), (1e8,)]),
        ("(FPCore (x) (exp (sin x)))", [(0.3,), (-2.0,)]),
        ("(FPCore (a b c) (/ (+ (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a)))",
         [(1.0, 5.0, 2.0), (0.5, 100.0, 0.25)]),
        ("(FPCore (x) (if (< x 0) (exp x) (log x)))", [(2.0,), (-2.0,)]),
        ("(FPCore (x y) (atan2 y x))", [(1.0, 2.0), (-1.0, 0.5)]),
        ("(FPCore (n) (while* (< i n) ([i 0 (+ i 1)] [s 0 (+ s 0.1)]) s))",
         [(10.0,), (100.0,)]),
    ]

    @pytest.mark.parametrize("source,input_sets", SOURCES)
    def test_agreement(self, source, input_sets):
        core = parse_fpcore(source)
        program = compile_fpcore(core)
        for inputs in input_sets:
            compiled = Interpreter(program).run(list(inputs))[0]
            env = dict(zip(core.arguments, inputs))
            direct = eval_double(core.body, env)
            assert compiled == direct or (
                math.isnan(compiled) and math.isnan(direct)
            )

    @given(st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_agreement_fuzz(self, x):
        source = "(FPCore (x) (* (+ (/ 1 x) (sqrt x)) (- x 0.5)))"
        core = parse_fpcore(source)
        compiled = Interpreter(compile_fpcore(core)).run([x])[0]
        direct = eval_double(core.body, {"x": x})
        assert compiled == direct


LIBM = build_libm()


def call_soft(name, *args):
    """Run a software-libm routine directly."""
    source = f"(FPCore ({' '.join('abc'[:len(args)])}) ({name} {' '.join('abc'[:len(args)])}))"
    program = compile_fpcore(parse_fpcore(source))
    return Interpreter(program, wrap_libraries=False, libm=LIBM).run(list(args))[0]


def assert_close(ours, reference, ulps=16):
    if math.isnan(reference):
        assert math.isnan(ours)
    elif math.isinf(reference):
        assert ours == reference
    else:
        assert ulps_between(ours, reference) <= ulps, (ours, reference)


class TestSoftwareLibm:
    """The IR libm agrees with the host libm to within a few ulps."""

    def test_magic_constant_is_the_papers(self):
        # 6.755399441055744e15, printed as 6.755399e15 in the paper.
        assert MAGIC_ROUND == 1.5 * 2 ** 52

    @pytest.mark.parametrize("x", [0.0, 1.0, -1.0, 0.1, -25.0, 300.0, 700.0])
    def test_exp(self, x):
        assert_close(call_soft("exp", x), math.exp(x), ulps=4)

    def test_exp_extremes(self):
        assert call_soft("exp", 1000.0) == math.inf
        assert call_soft("exp", -1000.0) == 0.0
        assert math.isnan(call_soft("exp", math.nan))

    @pytest.mark.parametrize("x", [1.0, 2.0, 0.5, 1e-8, 1e8, 3.1415])
    def test_log(self, x):
        assert_close(call_soft("log", x), math.log(x), ulps=4)

    def test_log_specials(self):
        assert call_soft("log", 0.0) == -math.inf
        assert math.isnan(call_soft("log", -1.0))

    @pytest.mark.parametrize("x", [0.0, 0.5, -0.5, 1.5707, 3.0, -10.0, 50.0])
    def test_sin_cos(self, x):
        assert_close(call_soft("sin", x), math.sin(x), ulps=8)
        assert_close(call_soft("cos", x), math.cos(x), ulps=8)

    @pytest.mark.parametrize("x", [0.3, -1.0, 1.2])
    def test_tan(self, x):
        assert_close(call_soft("tan", x), math.tan(x), ulps=16)

    @pytest.mark.parametrize("x", [0.0, 0.3, -0.9, 1.0, -5.0, 100.0])
    def test_atan(self, x):
        assert_close(call_soft("atan", x), math.atan(x), ulps=8)

    @pytest.mark.parametrize(
        "y,x",
        [(1.0, 1.0), (1.0, -1.0), (-2.0, 0.5), (0.0, -0.0), (3.0, 0.0)],
    )
    def test_atan2(self, y, x):
        assert_close(call_soft("atan2", y, x), math.atan2(y, x), ulps=8)

    @pytest.mark.parametrize("x", [0.0, 0.5, -0.5, 0.99, -0.99])
    def test_asin_acos(self, x):
        assert_close(call_soft("asin", x), math.asin(x), ulps=16)
        assert_close(call_soft("acos", x), math.acos(x), ulps=16)

    def test_asin_domain_error(self):
        assert math.isnan(call_soft("asin", 1.5))

    @pytest.mark.parametrize("x,y", [(2.0, 10.0), (10.0, 0.5), (1.0, 1e6)])
    def test_pow(self, x, y):
        assert_close(call_soft("pow", x, y), math.pow(x, y), ulps=32)

    def test_pow_specials(self):
        assert call_soft("pow", 1.0, math.nan) == 1.0
        assert call_soft("pow", 5.0, 0.0) == 1.0
        assert call_soft("pow", 0.0, 2.0) == 0.0
        assert call_soft("pow", 0.0, -2.0) == math.inf

    @pytest.mark.parametrize("x", [1.0, 8.0, -27.0, 0.001])
    def test_cbrt(self, x):
        expected = math.copysign(abs(x) ** (1 / 3), x)
        assert_close(call_soft("cbrt", x), expected, ulps=16)

    @pytest.mark.parametrize("x", [0.5, -2.0, 10.0])
    def test_hyperbolics(self, x):
        assert_close(call_soft("sinh", x), math.sinh(x), ulps=16)
        assert_close(call_soft("cosh", x), math.cosh(x), ulps=16)
        assert_close(call_soft("tanh", x), math.tanh(x), ulps=16)

    @pytest.mark.parametrize("x", [0.5, 2.0, 100.0])
    def test_inverse_hyperbolics(self, x):
        assert_close(call_soft("asinh", x), math.asinh(x), ulps=16)
        if x >= 1.0:
            assert_close(call_soft("acosh", x), math.acosh(x), ulps=16)
    def test_atanh(self):
        assert_close(call_soft("atanh", 0.5), math.atanh(0.5), ulps=16)

    def test_remainders(self):
        assert_close(call_soft("fmod", 10.3, 3.0), math.fmod(10.3, 3.0), ulps=4)
        assert_close(
            call_soft("remainder", 10.3, 3.0), math.remainder(10.3, 3.0), ulps=4
        )

    def test_every_library_op_has_an_implementation(self):
        from repro.bigfloat.functions import LIBRARY_OPERATIONS

        missing = LIBRARY_OPERATIONS - set(LIBM)
        assert not missing, f"libm lacks: {sorted(missing)}"

    def test_unwrapped_executes_many_instructions(self):
        """Unwrapped mode really runs the libm internals."""
        program = compile_fpcore(parse_fpcore("(FPCore (x) (exp x))"))
        wrapped = Interpreter(program, wrap_libraries=True)
        wrapped.run([1.0])
        unwrapped = Interpreter(program, wrap_libraries=False, libm=LIBM)
        unwrapped.run([1.0])
        assert unwrapped.stats.steps > 5 * wrapped.stats.steps
