"""The threaded-code engine against the reference interpreter.

Every test runs the same program through both engines and demands
identical outputs, statistics, and tracer event streams — the
instruction-level half of the engine-parity guarantee (the analysis
half lives in ``tests/core/test_engine_parity.py``).
"""

import math
import struct

import pytest

from repro.machine import (
    CompiledProgram,
    FunctionBuilder,
    Interpreter,
    MachineError,
    Program,
    Tracer,
    build_libm,
    compile_fpcore,
    isa,
)
from repro.fpcore import load_corpus
from repro.api.sampling import sample_inputs


def program_of(*builders: FunctionBuilder) -> Program:
    program = Program()
    for builder in builders:
        program.add(builder.build())
    return program


def stats_tuple(stats):
    return (stats.steps, stats.float_ops, stats.library_calls,
            stats.branches, stats.loads, stats.stores, stats.calls)


def assert_parity(program: Program, inputs=(), wrap_libraries=True, libm=None):
    reference = Interpreter(program, wrap_libraries=wrap_libraries, libm=libm)
    expected = reference.run(inputs)
    compiled = CompiledProgram(
        program, wrap_libraries=wrap_libraries, libm=libm
    )
    actual = compiled.run(inputs)
    packed = [struct.pack("<d", v) for v in expected]
    assert [struct.pack("<d", v) for v in actual] == packed
    assert stats_tuple(compiled.stats) == stats_tuple(reference.stats)
    return actual


class EventTracer(Tracer):
    """Records every callback so event streams can be compared."""

    def __init__(self):
        self.events = []

    def on_const(self, instr, box):
        self.events.append(("const", id(instr), box.value))

    def on_read(self, instr, box, index):
        self.events.append(("read", id(instr), box.value, index))

    def on_op(self, instr, op, args, result):
        self.events.append(
            ("op", id(instr), op, tuple(a.value for a in args), result.value)
        )
        return None

    def on_library(self, instr, name, args, result):
        self.events.append(
            ("lib", id(instr), name, tuple(a.value for a in args), result.value)
        )
        return None

    def on_bitop(self, instr, box, result):
        self.events.append(("bitop", id(instr), box.value, result.value))

    def on_int_to_float(self, instr, value, box):
        self.events.append(("i2f", id(instr), value, box.value))

    def on_float_to_int(self, instr, box, result):
        self.events.append(("f2i", id(instr), box.value, result))

    def on_branch(self, instr, lhs, rhs, taken):
        self.events.append(("branch", id(instr), lhs.value, rhs.value, taken))

    def on_out(self, instr, box):
        self.events.append(("out", id(instr), box.value))


def assert_event_parity(program, inputs=(), wrap_libraries=True, libm=None):
    ref_tracer = EventTracer()
    Interpreter(
        program, tracer=ref_tracer, wrap_libraries=wrap_libraries, libm=libm
    ).run(inputs)
    fast_tracer = EventTracer()
    CompiledProgram(
        program, tracer=fast_tracer, wrap_libraries=wrap_libraries, libm=libm
    ).run(inputs)
    assert fast_tracer.events == ref_tracer.events


class TestBasicParity:
    def test_arithmetic_and_consts(self):
        fn = FunctionBuilder("main")
        a = fn.const(3.0)
        b = fn.read()
        fn.out(fn.op("+", a, fn.op("*", b, b)))
        fn.out(fn.op("/", fn.const(1.0), fn.const(0.0)))
        fn.halt()
        assert_parity(program_of(fn), [4.0])
        assert_event_parity(program_of(fn), [4.0])

    def test_single_precision(self):
        fn = FunctionBuilder("main")
        x = fn.const(0.1, single=True)
        y = fn.read()
        fn.out(fn.op("+", x, y, single=True))
        fn.halt()
        assert_parity(program_of(fn), [0.2])

    def test_unary_and_ternary_ops(self):
        fn = FunctionBuilder("main")
        x = fn.read()
        fn.out(fn.op("neg", x))
        fn.out(fn.op("fabs", fn.op("neg", x)))
        fn.out(fn.op("sqrt", x))
        fn.out(fn.op("fma", x, x, fn.const(1.0)))
        fn.halt()
        assert_parity(program_of(fn), [2.25])

    def test_packed_op(self):
        fn = FunctionBuilder("main")
        a = fn.read()
        b = fn.read()
        lo, hi = fn.packed("+", [[a, a], [b, b]])
        fn.out(lo)
        fn.out(hi)
        fn.halt()
        assert_parity(program_of(fn), [1.5, 2.5])
        assert_event_parity(program_of(fn), [1.5, 2.5])

    def test_float_bit_tricks(self):
        fn = FunctionBuilder("main")
        x = fn.read()
        fn.out(fn.bit_negate(x))
        fn.out(fn.bit_fabs(fn.bit_negate(x)))
        fn.halt()
        assert_parity(program_of(fn), [7.5])
        assert_event_parity(program_of(fn), [7.5])

    def test_int_ops_and_bitcasts(self):
        fn = FunctionBuilder("main")
        x = fn.read()
        bits = fn.bitcast_to_int(x)
        masked = fn.int_op("iand", bits, fn.const_int((1 << 63) - 1))
        fn.out(fn.bitcast_to_float(masked))
        i = fn.float_to_int(x)
        j = fn.int_op("imul", i, fn.const_int(-3))
        fn.out(fn.int_to_float(fn.int_op("idiv", j, fn.const_int(2))))
        fn.out(fn.int_to_float(fn.int_op("imod", j, fn.const_int(2))))
        fn.halt()
        assert_parity(program_of(fn), [-5.75])
        assert_event_parity(program_of(fn), [-5.75])

    def test_memory(self):
        fn = FunctionBuilder("main")
        addr = fn.const_int(64)
        x = fn.read()
        fn.store(addr, x)
        fn.out(fn.load(addr))
        fn.halt()
        assert_parity(program_of(fn), [11.0])

    def test_loop_with_branches(self):
        fn = FunctionBuilder("main")
        total = fn.const(0.0)
        step = fn.const(0.1)
        limit = fn.read()
        head = fn.label()
        done = fn.fresh_label("done")
        fn.branch("ge", total, limit, done)
        fn.mov_to(total, fn.op("+", total, step))
        fn.jump(head)
        fn.label(done)
        fn.out(total)
        fn.halt()
        assert_parity(program_of(fn), [5.0])
        assert_event_parity(program_of(fn), [5.0])

    def test_nan_branch_semantics(self):
        for pred in sorted(isa.PREDICATES):
            fn = FunctionBuilder("main")
            x = fn.read()
            y = fn.const(1.0)
            taken = fn.fresh_label("taken")
            fn.branch(pred, x, y, taken)
            fn.out(fn.const(0.0))
            fn.halt()
            fn.label(taken)
            fn.out(fn.const(1.0))
            fn.halt()
            assert_parity(program_of(fn), [math.nan])


class TestCallsParity:
    def test_user_function_call(self):
        callee = FunctionBuilder("square", params=("x",))
        callee.ret(callee.op("*", "x", "x"))
        fn = FunctionBuilder("main")
        v = fn.read()
        fn.out(fn.call("square", v))
        fn.out(fn.call("square", fn.call("square", v)))
        fn.halt()
        assert_parity(program_of(fn, callee), [3.0])
        assert_event_parity(program_of(fn, callee), [3.0])

    def test_wrapped_library_call(self):
        fn = FunctionBuilder("main")
        fn.out(fn.call("sin", fn.read()))
        fn.halt()
        assert_parity(program_of(fn), [0.5])
        assert_event_parity(program_of(fn), [0.5])

    def test_unwrapped_library_call_inlines_ir(self):
        libm = build_libm()
        fn = FunctionBuilder("main")
        fn.out(fn.call("exp", fn.read()))
        fn.halt()
        program = program_of(fn)
        assert_parity(program, [0.75], wrap_libraries=False, libm=libm)
        assert_event_parity(program, [0.75], wrap_libraries=False, libm=libm)

    def test_falling_off_function_end(self):
        # A function without Ret behaves like a bare Ret; falling off
        # main halts without a counted step.
        helper = FunctionBuilder("noop", params=("x",))
        helper.op("+", "x", "x")
        fn = FunctionBuilder("main")
        fn.read()
        fn.out(fn.const(1.0))
        assert_parity(program_of(fn), [2.0])

    def test_callee_falling_off_with_unused_result(self):
        # The reference pops the frame silently; the caller's
        # destination register just stays uninitialized.  Both engines
        # must run to completion when the result is never read.
        helper = FunctionBuilder("noop", params=("x",))
        helper.op("+", "x", "x")  # no ret: falls off the end
        fn = FunctionBuilder("main")
        x = fn.read()
        fn.call("noop", x)  # result discarded
        fn.out(x)
        fn.halt()
        assert_parity(program_of(fn, helper), [1.5])

    def test_callee_returning_nothing_raises_when_used(self):
        helper = FunctionBuilder("noop", params=("x",))
        helper.op("+", "x", "x")  # no ret: falls off the end
        fn = FunctionBuilder("main")
        fn.out(fn.call("noop", fn.read()))  # Out reads the unset register
        fn.halt()
        with pytest.raises(MachineError):
            CompiledProgram(program_of(fn, helper)).run([1.0])

    def test_unknown_function_raises_only_when_reached(self):
        fn = FunctionBuilder("main")
        x = fn.read()
        skip = fn.fresh_label("skip")
        fn.branch("lt", x, fn.const(0.0), skip)
        fn.out(x)
        fn.halt()
        fn.label(skip)
        fn.call("no_such_function", x)
        fn.halt()
        program = program_of(fn)
        # Not reached: fine.  Reached: MachineError, like the reference.
        assert CompiledProgram(program).run([1.0]) == [1.0]
        with pytest.raises(MachineError):
            CompiledProgram(program).run([-1.0])


class TestErrorsAndLimits:
    def test_read_past_end(self):
        fn = FunctionBuilder("main")
        fn.read()
        fn.halt()
        with pytest.raises(MachineError):
            CompiledProgram(program_of(fn)).run([])

    def test_uninitialized_mov_raises(self):
        fn = FunctionBuilder("main")
        fn.mov_to("a", "never_written")
        fn.halt()
        with pytest.raises(MachineError):
            CompiledProgram(program_of(fn)).run([])

    def test_ill_typed_register_raises_machine_error(self):
        fn = FunctionBuilder("main")
        i = fn.const_int(3)
        fn.out(fn.op("+", i, i))  # ints where floats belong
        fn.halt()
        with pytest.raises(MachineError):
            CompiledProgram(program_of(fn)).run([])

    def test_int_op_on_floats_raises_machine_error(self):
        fn = FunctionBuilder("main")
        x = fn.const(2.0)
        y = fn.const(3.0)
        fn.int_op("iadd", x, y)  # boxes where integers belong
        fn.halt()
        with pytest.raises(MachineError):
            CompiledProgram(program_of(fn)).run([])

    def test_tracer_errors_propagate_unwrapped(self):
        class Buggy(Tracer):
            def on_op(self, instr, op, args, result):
                return result.no_such_attribute

        fn = FunctionBuilder("main")
        fn.out(fn.op("+", fn.const(1.0), fn.const(2.0)))
        fn.halt()
        with pytest.raises(AttributeError):
            CompiledProgram(program_of(fn), tracer=Buggy()).run([])

    def test_max_steps(self):
        fn = FunctionBuilder("main")
        head = fn.label()
        fn.jump(head)
        with pytest.raises(MachineError):
            CompiledProgram(program_of(fn), max_steps=1000).run([])

    def test_load_uninitialized_address(self):
        fn = FunctionBuilder("main")
        fn.out(fn.load(fn.const_int(8)))
        fn.halt()
        with pytest.raises(MachineError):
            CompiledProgram(program_of(fn)).run([])


class TestTracerOverride:
    def test_on_op_override_replaces_value(self):
        class Perturb(Tracer):
            def on_op(self, instr, op, args, result):
                return result.value + 1.0

        fn = FunctionBuilder("main")
        fn.out(fn.op("+", fn.read(), fn.read()))
        fn.halt()
        program = program_of(fn)
        ref = Interpreter(program, tracer=Perturb()).run([1.0, 2.0])
        fast = CompiledProgram(program, tracer=Perturb()).run([1.0, 2.0])
        assert fast == ref == [4.0]

    def test_on_library_override_replaces_value(self):
        class Perturb(Tracer):
            def on_library(self, instr, name, args, result):
                return 42.0

        fn = FunctionBuilder("main")
        fn.out(fn.call("sin", fn.read()))
        fn.halt()
        program = program_of(fn)
        ref = Interpreter(program, tracer=Perturb()).run([0.5])
        fast = CompiledProgram(program, tracer=Perturb()).run([0.5])
        assert fast == ref == [42.0]


class TestReuseAcrossRuns:
    def test_fresh_memory_and_outputs_per_run(self):
        fn = FunctionBuilder("main")
        addr = fn.const_int(1)
        x = fn.read()
        fn.store(addr, x)
        fn.out(fn.load(addr))
        fn.halt()
        compiled = CompiledProgram(program_of(fn))
        assert compiled.run([1.0]) == [1.0]
        assert compiled.run([2.0]) == [2.0]
        assert compiled.outputs == [2.0]
        assert list(compiled.memory.values())[0].value == 2.0

    def test_stats_reset_per_run(self):
        fn = FunctionBuilder("main")
        fn.out(fn.op("+", fn.read(), fn.const(1.0)))
        fn.halt()
        compiled = CompiledProgram(program_of(fn))
        compiled.run([1.0])
        first = stats_tuple(compiled.stats)
        compiled.run([2.0])
        assert stats_tuple(compiled.stats) == first


class TestCorpusParity:
    def test_outputs_and_stats_across_corpus(self):
        for core in load_corpus()[::7]:  # a spread-out slice
            program = compile_fpcore(core)
            for point in sample_inputs(core, 2, seed=11):
                assert_parity(program, point)
