"""Regression coverage for the π/2 argument-reduction Ziv loop.

``_reduce_pi_over_2`` widens its working precision whenever the
reduced remainder loses relative accuracy (the argument sits close to
a multiple of π/2).  Pinned here: the double nearest π/2, huge
(1e22-scale) arguments, the give-up branch for arguments that are
indistinguishable from a multiple of π/2 at any sane precision, and
the exponent guard — all verified against mpmath where a reference
value exists.
"""

import math

import pytest

mpmath = pytest.importorskip("mpmath", reason="mpmath is the trig oracle")

from repro.bigfloat import BigFloat
from repro.bigfloat.constants import pi_fixed
from repro.bigfloat.context import Context
from repro.bigfloat.fixedpoint import from_fixed
from repro.bigfloat.transcendental import (
    _TRIG_EXPONENT_LIMIT,
    _reduce_pi_over_2,
    cos,
    sin,
    tan,
)

CONTEXT = Context(precision=200)


def mp_reference(fn, value: BigFloat, precision: int = 260):
    with mpmath.workprec(precision):
        fraction = value.to_fraction()
        argument = mpmath.mpf(fraction.numerator) / fraction.denominator
        return fn(argument)


def assert_faithful(ours: BigFloat, reference, bits: int = 190) -> None:
    fraction = ours.to_fraction()
    with mpmath.workprec(300):
        mine = mpmath.mpf(fraction.numerator) / fraction.denominator
        relative = abs(mine - reference) / abs(reference)
        assert relative < mpmath.mpf(2) ** (-bits), ours


class TestNearHalfPi:
    def test_double_nearest_half_pi(self):
        # cos of the double closest to π/2 is ~6.1e-17: total
        # cancellation of the leading 53 bits, which forces at least
        # one Ziv widening.
        x = BigFloat.from_float(math.pi / 2)
        result = cos(x, CONTEXT)
        assert_faithful(result, mp_reference(mpmath.cos, x))

    def test_double_nearest_pi(self):
        x = BigFloat.from_float(math.pi)
        result = sin(x, CONTEXT)
        assert_faithful(result, mp_reference(mpmath.sin, x))

    def test_tan_across_the_pole(self):
        x = BigFloat.from_float(1.5707963267948966)
        result = tan(x, CONTEXT)
        assert_faithful(result, mp_reference(mpmath.tan, x))

    def test_reduction_reports_quadrant_and_tiny_remainder(self):
        x = BigFloat.from_float(math.pi / 2)
        quadrant, remainder, wp = _reduce_pi_over_2(x, CONTEXT)
        assert quadrant == 1
        # Remainder ~6.1e-17 at scale 2^-wp.
        assert remainder != 0
        assert abs(remainder) < (1 << wp) >> 50


class TestHugeArguments:
    @pytest.mark.parametrize("value", [1e22, 1.234567e22, -9.87e21, 1e300])
    def test_sin_at_1e22_scale(self, value):
        # Reducing 1e22 mod π/2 needs ~70 extra bits up front (the
        # msb-proportional term), not a Ziv retry; the result must
        # still match mpmath exactly to ~190 bits.
        x = BigFloat.from_float(value)
        result = sin(x, CONTEXT)
        assert_faithful(
            result, mp_reference(mpmath.sin, x, precision=1400)
        )

    def test_exponent_guard(self):
        monster = BigFloat(0, 1, _TRIG_EXPONENT_LIMIT + 8)
        for fn in (sin, cos, tan):
            with pytest.raises(OverflowError):
                fn(monster, CONTEXT)


class TestBailOutBranch:
    def test_indistinguishable_from_half_pi_terminates(self):
        # A 5000-bit approximation of π/2 agrees with π/2 to ~5000
        # bits — far beyond what any widening bounded by
        # 4*(precision + msb) can separate at precision 200, so the
        # loop must take the `extra >= 4*(...)` bail-out and accept
        # the tiny remainder rather than spin.
        context = Context(precision=200)
        deep = 5000
        x = from_fixed(pi_fixed(deep) >> 1, deep)
        quadrant, remainder, wp = _reduce_pi_over_2(x, context)
        assert quadrant == 1
        # The remainder is below every bit the context can observe.
        assert remainder == 0 or \
            abs(remainder).bit_length() < wp - 2 * context.precision
        # And the functions built on it still return faithful values
        # for the metric that matters: |sin x| rounds to 1, cos to ~0.
        assert sin(x, context).to_float() == 1.0
        assert abs(cos(x, context).to_float()) < 1e-100

    def test_bail_out_degrades_to_absolute_accuracy(self):
        # The bail-out documents giving up *relative* accuracy on the
        # vanishing component: cos of a deep π/2 approximation may come
        # back as exactly 0 (or an astronomically small value), but
        # never as anything a double — or the 64-bit error metric —
        # could distinguish from the true ~1e-900 result.
        context = Context(precision=120)
        x = from_fixed(pi_fixed(3000) >> 1, 3000)
        result = cos(x, context)
        assert result.is_zero() or result.msb_exponent < -300
        assert sin(x, context).to_float() == 1.0
