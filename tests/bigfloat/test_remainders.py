"""fmod / remainder semantics, pinned against the C library.

Both operations are *exact* integer algorithms in the bigfloat layer,
so agreement with ``math.fmod``/``math.remainder`` must be bit-for-bit
(including result signs and signed zeros) wherever the double grid can
express the operands.  Also pinned: the tie-toward-even-quotient fold
in ``remainder`` and the ``_MAX_REMAINDER_SHIFT`` alignment guard.
"""

import math
import random

import pytest

from repro.bigfloat import BigFloat
from repro.bigfloat.arith import _MAX_REMAINDER_SHIFT, fmod, remainder
from repro.bigfloat.context import Context

CONTEXT = Context(precision=200)

DIRECTED = [
    # (a, b) pairs hitting signs, ties, exact divisions, tiny/huge gaps.
    (5.3, 2.0), (-5.3, 2.0), (5.3, -2.0), (-5.3, -2.0),
    (6.0, 2.0), (-6.0, 2.0), (6.0, -2.0), (-6.0, -2.0),
    (1.0, 3.0), (-1.0, 3.0),
    (2.5, 1.0), (3.5, 1.0), (-2.5, 1.0), (-3.5, 1.0),
    (0.5, 1.0), (1.5, 1.0), (-0.5, 1.0), (-1.5, 1.0),
    (7.0, 2.5), (-7.0, 2.5),
    (1e16, 3.0), (1e16 + 2.0, 3.0),
    (1e-300, 1e300), (1e300, 1e-30),
    (0.1, 0.3), (0.3, 0.1),
    (math.pi, math.e), (math.e, math.pi),
    (0.0, 3.0), (-0.0, 3.0), (0.0, -3.0), (-0.0, -3.0),
    (5e-324, 2.5), (1.5, 5e-324),
]


def check_pair(a: float, b: float) -> None:
    big_a, big_b = BigFloat.from_float(a), BigFloat.from_float(b)
    ours_fmod = fmod(big_a, big_b, CONTEXT).to_float()
    expected_fmod = math.fmod(a, b)
    assert ours_fmod == expected_fmod, ("fmod", a, b)
    assert math.copysign(1.0, ours_fmod) == \
        math.copysign(1.0, expected_fmod), ("fmod sign", a, b)
    ours_rem = remainder(big_a, big_b, CONTEXT).to_float()
    expected_rem = math.remainder(a, b)
    assert ours_rem == expected_rem, ("remainder", a, b)
    assert math.copysign(1.0, ours_rem) == \
        math.copysign(1.0, expected_rem), ("remainder sign", a, b)


class TestAgainstLibm:
    @pytest.mark.parametrize("a,b", DIRECTED)
    def test_directed_grid(self, a, b):
        check_pair(a, b)

    def test_randomized_grid(self):
        random.seed(20260729)
        for __ in range(400):
            a = random.uniform(-1e6, 1e6)
            b = random.uniform(-1e3, 1e3)
            if b == 0.0:
                continue
            check_pair(a, b)

    def test_randomized_exponent_spread(self):
        random.seed(7)
        for __ in range(200):
            a = math.ldexp(random.uniform(1, 2), random.randint(-60, 60))
            b = math.ldexp(random.uniform(1, 2), random.randint(-60, 60))
            if random.random() < 0.5:
                a = -a
            if random.random() < 0.5:
                b = -b
            check_pair(a, b)


class TestSpecialValues:
    def test_nan_and_domain(self):
        one = BigFloat.from_float(1.0)
        zero = BigFloat.zero(0)
        inf = BigFloat.inf(0)
        nan = BigFloat.nan()
        for operation in (fmod, remainder):
            assert operation(nan, one, CONTEXT).is_nan()
            assert operation(one, nan, CONTEXT).is_nan()
            assert operation(inf, one, CONTEXT).is_nan()
            assert operation(one, zero, CONTEXT).is_nan()
            # x mod inf = x; 0 mod y = 0 (sign preserved).
            assert operation(one, inf, CONTEXT).key() == one.key()

    def test_zero_results_carry_dividend_sign(self):
        # C99: fmod/remainder of an exact multiple returns ±0 with the
        # dividend's sign.
        four, two = BigFloat.from_float(4.0), BigFloat.from_float(2.0)
        for operation in (fmod, remainder):
            assert operation(four, two, CONTEXT).key() == (0, 0, 0, 0)
            assert operation(four.neg(), two, CONTEXT).key() == (0, 1, 0, 0)
            assert operation(four, two.neg(), CONTEXT).key() == (0, 0, 0, 0)
        neg_zero = BigFloat.zero(1)
        assert fmod(neg_zero, two, CONTEXT).key() == (0, 1, 0, 0)
        assert remainder(neg_zero, two, CONTEXT).key() == (0, 1, 0, 0)

    def test_remainder_tie_goes_to_even_quotient(self):
        one = BigFloat.from_float(1.0)
        # 2.5 = 2*1 + 0.5 = 3*1 - 0.5: quotient 2 (even) wins -> +0.5.
        assert remainder(BigFloat.from_float(2.5), one,
                         CONTEXT).to_float() == 0.5
        # 3.5 = 4*1 - 0.5: quotient 4 (even) wins -> -0.5.
        assert remainder(BigFloat.from_float(3.5), one,
                         CONTEXT).to_float() == -0.5
        assert remainder(BigFloat.from_float(-2.5), one,
                         CONTEXT).to_float() == -0.5
        assert remainder(BigFloat.from_float(-3.5), one,
                         CONTEXT).to_float() == 0.5

    def test_fmod_is_exact_not_rounded(self):
        # The result must be the exact remainder even when it needs
        # more bits than the context precision would keep.
        tight = Context(precision=24)
        a = BigFloat.from_int(2 ** 53 - 1)
        b = BigFloat.from_float(3.0)
        assert fmod(a, b, tight).to_fraction() == ((2 ** 53 - 1) % 3)


class TestAlignmentGuard:
    def test_shift_guard_raises_overflow(self):
        # Operands whose exponents are too far apart to align exactly
        # raise rather than silently materializing gigabit integers.
        huge = BigFloat(0, 1, _MAX_REMAINDER_SHIFT + 10)
        tiny = BigFloat(0, 1, -10)
        for operation in (fmod, remainder):
            with pytest.raises(OverflowError):
                operation(huge, tiny, CONTEXT)

    def test_shift_guard_boundary_passes(self):
        # Just inside the guard the exact path still runs.
        a = BigFloat(0, 3, 1 << 20)
        b = BigFloat(0, 1, 0)
        assert fmod(a, b, CONTEXT).is_zero()

    def test_double_range_never_trips_guard(self):
        # The full double exponent range spans ~2100 bits, far below
        # the guard: any pair of finite doubles must stay exact.
        a = BigFloat.from_float(1.7976931348623157e308)
        b = BigFloat.from_float(5e-324)
        assert fmod(a, b, CONTEXT).to_float() == math.fmod(
            1.7976931348623157e308, 5e-324
        )
