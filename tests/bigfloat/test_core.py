"""Tests for BigFloat construction, rounding, comparison and conversion.

The strongest oracle here is Python itself: ``float(Fraction)`` is
correctly rounded, so conversions can be checked bit-exactly, and
double-precision arithmetic checks our exact-then-round pipeline at
precision 53 against the hardware.
"""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import (
    BigFloat,
    Context,
    DOUBLE_CONTEXT,
    ONE,
    ROUND_DOWN,
    ROUND_NEAREST_EVEN,
    ROUND_TOWARD_ZERO,
    ROUND_UP,
    getcontext,
    local_context,
)
from repro.bigfloat.rounding import round_mantissa

finite_doubles = st.floats(allow_nan=False, allow_infinity=False)
any_doubles = st.floats(allow_nan=True, allow_infinity=True)


class TestRoundMantissa:
    def test_exact_passthrough(self):
        assert round_mantissa(0, 0b101, 0, 10) == (0b101, 0, False)

    def test_nearest_even_up(self):
        # 0b1011 to 3 bits: remainder is exactly half, kept ends in 1 -> up.
        man, exp, inexact = round_mantissa(0, 0b1011, 0, 3)
        assert (man, exp, inexact) == (0b110, 1, True)

    def test_nearest_even_down(self):
        # 0b1001 to 3 bits: tie, kept 0b100 is even -> stays.
        man, exp, inexact = round_mantissa(0, 0b1001, 0, 3)
        assert (man, exp, inexact) == (0b100, 1, True)

    def test_carry_renormalizes(self):
        # 0b1111 to 3 bits rounds up to 0b10000 >> 1.
        man, exp, inexact = round_mantissa(0, 0b1111, 0, 3)
        assert (man << exp) == 16
        assert inexact

    def test_directed_modes(self):
        # 21 = 0b10101; the 3-bit lattice around it is {20, 24}.
        value = 0b10101
        up, up_exp, __ = round_mantissa(0, value, 0, 3, ROUND_UP)
        down, down_exp, __ = round_mantissa(0, value, 0, 3, ROUND_DOWN)
        zero, zero_exp, __ = round_mantissa(0, value, 0, 3, ROUND_TOWARD_ZERO)
        assert up << up_exp == 24
        assert down << down_exp == 20
        assert zero << zero_exp == 20

    def test_directed_modes_negative(self):
        value = 0b10101
        up, up_exp, __ = round_mantissa(1, value, 0, 3, ROUND_UP)
        down, down_exp, __ = round_mantissa(1, value, 0, 3, ROUND_DOWN)
        # Negative value: toward +inf truncates the magnitude.
        assert up << up_exp == 20
        assert down << down_exp == 24

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            round_mantissa(0, 0, 0, 5)
        with pytest.raises(ValueError):
            round_mantissa(0, 5, 0, 0)
        with pytest.raises(ValueError):
            # Needs a value that actually requires rounding to hit the
            # mode dispatch.
            round_mantissa(0, 0b10101, 0, 3, "bogus")


class TestConstruction:
    def test_canonical_mantissa_odd(self):
        x = BigFloat(0, 12, 0)
        assert x.man == 3 and x.exp == 2

    def test_zero_canonical(self):
        x = BigFloat(1, 0, 57)
        assert x.is_zero() and x.exp == 0 and x.sign == 1

    def test_immutable(self):
        with pytest.raises(AttributeError):
            ONE.man = 2

    def test_from_int(self):
        assert BigFloat.from_int(-40).to_float() == -40.0
        assert BigFloat.from_int(0).is_zero()

    @given(any_doubles)
    def test_from_float_roundtrip(self, x):
        back = BigFloat.from_float(x).to_float()
        if math.isnan(x):
            assert math.isnan(back)
        else:
            assert back == x
            assert math.copysign(1.0, back) == math.copysign(1.0, x)

    @given(st.fractions())
    def test_from_fraction_to_float_correctly_rounded(self, q):
        converted = BigFloat.from_fraction(q, 300).to_float()
        assert converted == float(q)

    def test_from_fraction_subnormal(self):
        q = Fraction(3, 2 ** 1076)
        assert BigFloat.from_fraction(q, 200).to_float() == float(q)

    def test_from_fraction_overflow(self):
        q = Fraction(2) ** 1100
        assert BigFloat.from_fraction(q, 100).to_float() == math.inf

    def test_exact_coercion(self):
        assert BigFloat.exact(3).to_float() == 3.0
        assert BigFloat.exact(0.5).to_float() == 0.5
        assert BigFloat.exact(ONE) is ONE
        with pytest.raises(TypeError):
            BigFloat.exact(True)
        with pytest.raises(TypeError):
            BigFloat.exact("1.0")


class TestToFloat:
    def test_tiny_rounds_to_zero(self):
        x = BigFloat(0, 1, -1080)
        assert x.to_float() == 0.0

    def test_halfway_to_smallest_subnormal(self):
        # Exactly 2^-1075 ties to even -> 0.
        assert BigFloat(0, 1, -1075).to_float() == 0.0
        # Slightly above goes to the smallest subnormal.
        assert BigFloat(0, 3, -1076).to_float() == 2.0 ** -1074

    def test_negative_underflow_keeps_sign(self):
        result = BigFloat(1, 1, -1080).to_float()
        assert result == 0.0 and math.copysign(1.0, result) == -1.0

    def test_overflow(self):
        assert BigFloat(0, 1, 1025).to_float() == math.inf
        assert BigFloat(1, 1, 1025).to_float() == -math.inf

    def test_subnormal_rounding_no_double_rounding(self):
        # A value just above a subnormal midpoint must round up even
        # though rounding to 53 bits first would hit the midpoint.
        q = Fraction(2 ** 52 + 1, 2 ** 52) * Fraction(1, 2 ** 1074)
        x = BigFloat.from_fraction(q, 300)
        assert x.to_float() == float(q)

    @given(st.integers(-5000, 5000), st.integers(1, 1 << 200))
    @settings(max_examples=300)
    def test_matches_fraction_conversion(self, exp, man):
        x = BigFloat(0, man, exp)
        try:
            expected = float(Fraction(man) * Fraction(2) ** exp)
        except OverflowError:
            expected = math.inf
        assert x.to_float() == expected

    def test_to_single(self):
        assert BigFloat.from_float(0.1).to_single() == struct_round_single(0.1)


def struct_round_single(x):
    import struct

    return struct.unpack("<f", struct.pack("<f", x))[0]


class TestComparison:
    def test_zero_equality(self):
        assert BigFloat.zero(0) == BigFloat.zero(1)

    def test_nan_unordered(self):
        nan = BigFloat.nan()
        assert not nan == nan
        assert nan != nan
        assert not nan < ONE
        assert not nan >= ONE

    def test_inf_ordering(self):
        assert BigFloat.inf(1) < BigFloat.from_int(-10 ** 100) < BigFloat.inf(0)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(ONE)

    def test_key_distinguishes_zero_signs(self):
        assert BigFloat.zero(0).key() != BigFloat.zero(1).key()

    @given(finite_doubles, finite_doubles)
    def test_matches_float_ordering(self, x, y):
        a, b = BigFloat.from_float(x), BigFloat.from_float(y)
        assert (a < b) == (x < y)
        assert (a == b) == (x == y)
        assert (a >= b) == (x >= y)

    @given(finite_doubles)
    def test_neg_abs(self, x):
        a = BigFloat.from_float(x)
        assert a.neg().to_float() == -x
        assert a.abs().to_float() == abs(x)

    def test_copysign(self):
        assert ONE.copysign(BigFloat.from_float(-3.0)).to_float() == -1.0
        assert BigFloat.from_float(-2.0).copysign(ONE).to_float() == 2.0


class TestContext:
    def test_default_precision_is_paper_default(self):
        assert getcontext().precision == 1000

    def test_local_context_restores(self):
        original = getcontext()
        with local_context(Context(precision=100)):
            assert getcontext().precision == 100
        assert getcontext() is original

    def test_local_context_restores_on_error(self):
        original = getcontext()
        with pytest.raises(RuntimeError):
            with local_context(Context(precision=100)):
                raise RuntimeError("boom")
        assert getcontext() is original

    def test_validation(self):
        with pytest.raises(ValueError):
            Context(precision=1)
        with pytest.raises(ValueError):
            Context(rounding="sideways")

    def test_with_helpers(self):
        ctx = Context(precision=64)
        assert ctx.with_precision(128).precision == 128
        assert ctx.with_rounding(ROUND_UP).rounding == ROUND_UP
        assert ctx.widened(8).precision == 72

    def test_double_context(self):
        assert DOUBLE_CONTEXT.precision == 53
        assert DOUBLE_CONTEXT.rounding == ROUND_NEAREST_EVEN


class TestFraction:
    @given(finite_doubles)
    def test_to_fraction_exact(self, x):
        assert BigFloat.from_float(x).to_fraction() == Fraction(x)

    def test_specials_rejected(self):
        with pytest.raises(ValueError):
            BigFloat.nan().to_fraction()
        with pytest.raises(ValueError):
            BigFloat.inf(0).to_fraction()

    def test_round_to(self):
        x = BigFloat.from_fraction(Fraction(1, 3), 300)
        y = x.round_to(53)
        assert y.to_float() == 1.0 / 3.0
