"""Constant caching (the euler_e regression of PR 4).

``pi_fixed``/``ln2_fixed`` were lru_cached from the start, but
``euler_e`` re-ran its exp_series square root on every call.  The new
``e_fixed`` must have the same cache policy: the second call at a
given working precision does no series work at all.
"""

import pytest

from repro.bigfloat import constants
from repro.bigfloat.context import Context


class TestEulerECache:
    def test_e_fixed_is_cached(self, monkeypatch):
        wp = 333  # an odd precision nobody else warms
        first = constants.e_fixed(wp)

        def exploding_series(*args, **kwargs):  # pragma: no cover
            raise AssertionError("series re-ran despite the cache")

        from repro.bigfloat import fixedpoint

        monkeypatch.setattr(fixedpoint, "exp_series", exploding_series)
        assert constants.e_fixed(wp) == first
        # euler_e itself serves from the same cache.
        context = Context(precision=wp - constants._GUARD)
        value = constants.euler_e(context)
        assert 2.718281828459045 == pytest.approx(value.to_float())

    def test_e_fixed_value(self):
        mpmath = pytest.importorskip("mpmath")
        wp = 400
        with mpmath.workprec(wp + 8):
            reference = int(mpmath.floor(mpmath.e * (1 << wp)))
        assert abs(constants.e_fixed(wp) - reference) <= 2

    def test_repeated_euler_e_is_fast(self):
        import time

        context = Context(precision=600)
        constants.euler_e(context)  # warm
        t0 = time.perf_counter()
        for __ in range(50):
            constants.euler_e(context)
        elapsed = time.perf_counter() - t0
        # 50 cached calls round an int; give a generous bound that the
        # uncached implementation (50 full series runs) cannot meet.
        assert elapsed < 0.2
