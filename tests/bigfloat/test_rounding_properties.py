"""Property-based tests of the rounding-mode contract.

The bracket property is the heart of correct rounding: for any exact
value v, RDN(v) <= v <= RUP(v), RTZ shrinks magnitude, and RNE lands on
whichever neighbour is closer.  These properties are what the Verrou
comparison tool relies on when it perturbs rounding.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import (
    BigFloat,
    Context,
    ROUND_DOWN,
    ROUND_NEAREST_EVEN,
    ROUND_TOWARD_ZERO,
    ROUND_UP,
    arith,
)

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e200, max_value=1e200
)
precisions = st.integers(min_value=4, max_value=120)


def exact_product(x: float, y: float) -> Fraction:
    return Fraction(x) * Fraction(y)


def rounded_product(x: float, y: float, precision: int, mode: str) -> Fraction:
    context = Context(precision=precision, rounding=mode)
    result = arith.mul(
        BigFloat.from_float(x), BigFloat.from_float(y), context
    )
    return result.to_fraction()


class TestBracketProperty:
    @given(finite, finite, precisions)
    @settings(max_examples=200)
    def test_down_up_bracket(self, x, y, precision):
        exact = exact_product(x, y)
        down = rounded_product(x, y, precision, ROUND_DOWN)
        up = rounded_product(x, y, precision, ROUND_UP)
        assert down <= exact <= up

    @given(finite, finite, precisions)
    @settings(max_examples=200)
    def test_toward_zero_shrinks(self, x, y, precision):
        exact = exact_product(x, y)
        truncated = rounded_product(x, y, precision, ROUND_TOWARD_ZERO)
        assert abs(truncated) <= abs(exact)
        assert truncated == 0 or (truncated > 0) == (exact > 0)

    @given(finite, finite, precisions)
    @settings(max_examples=200)
    def test_nearest_within_half_ulp_bracket(self, x, y, precision):
        exact = exact_product(x, y)
        nearest = rounded_product(x, y, precision, ROUND_NEAREST_EVEN)
        down = rounded_product(x, y, precision, ROUND_DOWN)
        up = rounded_product(x, y, precision, ROUND_UP)
        # Nearest is one of the two brackets, and the closer one.
        assert nearest in (down, up)
        if down != up:
            distance = abs(exact - nearest)
            other = up if nearest == down else down
            assert distance <= abs(exact - other)

    @given(finite, finite, precisions)
    @settings(max_examples=100)
    def test_modes_agree_when_exact(self, x, y, precision):
        exact = exact_product(x, y)
        results = {
            mode: rounded_product(x, y, precision, mode)
            for mode in (ROUND_NEAREST_EVEN, ROUND_DOWN, ROUND_UP,
                         ROUND_TOWARD_ZERO)
        }
        down, up = results[ROUND_DOWN], results[ROUND_UP]
        if down == up:
            # The product was exactly representable: all modes agree.
            assert set(results.values()) == {exact}


class TestAdditionBracket:
    @given(finite, finite, precisions)
    @settings(max_examples=200)
    def test_add_bracket(self, x, y, precision):
        exact = Fraction(x) + Fraction(y)
        down = arith.add(
            BigFloat.from_float(x), BigFloat.from_float(y),
            Context(precision=precision, rounding=ROUND_DOWN),
        ).to_fraction()
        up = arith.add(
            BigFloat.from_float(x), BigFloat.from_float(y),
            Context(precision=precision, rounding=ROUND_UP),
        ).to_fraction()
        assert down <= exact <= up

    @given(finite, precisions)
    @settings(max_examples=100)
    def test_sqrt_bracket(self, x, precision):
        if x < 0:
            return
        exact_squared = Fraction(x)
        down = arith.sqrt(
            BigFloat.from_float(x),
            Context(precision=precision, rounding=ROUND_DOWN),
        ).to_fraction()
        up = arith.sqrt(
            BigFloat.from_float(x),
            Context(precision=precision, rounding=ROUND_UP),
        ).to_fraction()
        assert down * down <= exact_squared
        assert up * up >= exact_squared
