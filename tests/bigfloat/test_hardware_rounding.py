"""Property tests of ``BigFloat._to_hardware`` against ground truth.

The verification behind the `_to_hardware` audit: seeded random
mantissa/exponent sweeps compare ``to_float``/``to_single`` against
independent references —

* for binary64, ``float(Fraction)`` (CPython's correctly rounded
  int-division), checked bit-for-bit via ``struct``;
* for binary32, a from-scratch round-half-even implementation over
  exact ``Fraction`` arithmetic written here (NOT via a
  double→single cast, which would double-round), cross-checked
  against ``numpy.float32`` where the value survives a single
  rounding.

The sweeps concentrate on the hard regions: the normal/subnormal
boundary, ``precision == 1`` (between the two smallest subnormals),
half-the-smallest-subnormal ties, and overflow ties at the top of the
range.  The audit found no double rounding; these tests pin that.
"""

from __future__ import annotations

import math
import random
import struct
from fractions import Fraction

import pytest

from repro.bigfloat import BigFloat

numpy = pytest.importorskip("numpy", reason="numpy crosscheck optional")


def bits64(value: float) -> bytes:
    return struct.pack("<d", value)


def reference_double(value: Fraction) -> float:
    # CPython's Fraction->float is correctly rounded (integer division
    # of numerator by denominator with round-half-even); it raises on
    # overflow instead of returning inf.
    try:
        return float(value)
    except OverflowError:
        return math.inf if value > 0 else -math.inf


def reference_single(value: Fraction) -> float:
    """Correctly rounded binary32, derived from exact rationals."""
    if value == 0:
        return 0.0
    sign = -1.0 if value < 0 else 1.0
    magnitude = abs(value)
    exponent = magnitude.numerator.bit_length() \
        - magnitude.denominator.bit_length()
    if Fraction(2) ** exponent > magnitude:
        exponent -= 1
    elif Fraction(2) ** (exponent + 1) <= magnitude:
        exponent += 1
    precision = 24 if exponent >= -126 else exponent + 150
    if precision < 1:
        tiny = Fraction(2) ** -149
        if magnitude > tiny / 2:
            return sign * float(tiny)
        return sign * 0.0  # at or below the tie: even -> zero
    scaled = magnitude / (Fraction(2) ** (exponent - precision + 1))
    floor = scaled.numerator // scaled.denominator
    remainder = scaled - floor
    if remainder > Fraction(1, 2) or (
        remainder == Fraction(1, 2) and floor & 1
    ):
        floor += 1
    result = sign * floor * 2.0 ** (exponent - precision + 1)
    if abs(result) >= 2.0 ** 128:
        return sign * math.inf
    return result


class TestToFloatSweeps:
    def test_wide_random_sweep(self):
        rng = random.Random(20260729)
        for __ in range(4000):
            mant_bits = rng.randint(1, 120)
            man = rng.getrandbits(mant_bits) | 1
            exp = rng.randint(-1120, 1030 - mant_bits)
            sign = rng.randint(0, 1)
            value = BigFloat(sign, man, exp)
            expected = reference_double(
                (-1 if sign else 1) * Fraction(man) * Fraction(2) ** exp
            )
            assert bits64(value.to_float()) == bits64(expected), \
                f"sign={sign} man={man} exp={exp}"

    def test_subnormal_boundary_sweep(self):
        rng = random.Random(42)
        for __ in range(4000):
            mant_bits = rng.randint(1, 80)
            man = rng.getrandbits(mant_bits) | 1
            exp = rng.randint(-1140, -1000)
            value = BigFloat(0, man, exp)
            expected = reference_double(Fraction(man) * Fraction(2) ** exp)
            assert bits64(value.to_float()) == bits64(expected), \
                f"man={man} exp={exp}"

    def test_overflow_boundary_sweep(self):
        rng = random.Random(43)
        for __ in range(2000):
            mant_bits = rng.randint(1, 70)
            man = rng.getrandbits(mant_bits) | 1
            exp = rng.randint(960, 1030) - mant_bits
            value = BigFloat(0, man, exp)
            expected = reference_double(Fraction(man) * Fraction(2) ** exp)
            assert bits64(value.to_float()) == bits64(expected), \
                f"man={man} exp={exp}"

    @pytest.mark.parametrize("man,exp,expected", [
        (1, -1075, 0.0),                  # half smallest subnormal: tie->even->0
        (3, -1076, 2.0 ** -1074),         # 3/4 smallest: rounds up
        (1, -1076, 0.0),                  # quarter: down to zero
        (3, -1075, 2.0 ** -1073),         # 1.5 subnormals: tie->even->2
        (5, -1076, 2.0 ** -1074),         # 1.25 subnormals: down to 1
        (7, -1076, 2.0 ** -1073),         # 1.75 subnormals: up to 2
        (1, -1074, 2.0 ** -1074),         # the smallest subnormal exactly
        ((1 << 52) + 1, -1074, None),     # exactly representable normal
        ((1 << 53) - 1, -1075, 2.0 ** -1022),  # rounds up across boundary
        # Overflow ties at the very top: max + ulp/2 is a tie whose
        # even neighbour is max - ulp... below; max + ulp/2 exactly:
        ((1 << 54) - 1, 970, math.inf),   # maxfloat + ulp/2: tie -> inf side
        ((1 << 54) - 3, 970, None),       # maxfloat - ulp/2: tie -> even (max-ulp)
    ])
    def test_boundary_cases(self, man, exp, expected):
        value = BigFloat(0, man, exp).to_float()
        if expected is None:
            expected = reference_double(Fraction(man) * Fraction(2) ** exp)
        assert bits64(value) == bits64(expected)

    def test_precision_one_region_exhaustive(self):
        # Every value k/8 * 2^-1074 for k in 1..63: covers precision 1-3
        # of the subnormal lattice exhaustively.
        for k in range(1, 64):
            value = BigFloat(0, k, -1077)
            expected = reference_double(Fraction(k, 8) * Fraction(2) ** -1074)
            assert bits64(value.to_float()) == bits64(expected), f"k={k}"


class TestToSingleSweeps:
    def test_random_sweep_against_fraction_reference(self):
        rng = random.Random(7)
        for __ in range(4000):
            mant_bits = rng.randint(1, 60)
            man = rng.getrandbits(mant_bits) | 1
            exp = rng.randint(-165, 130 - mant_bits)
            sign = rng.randint(0, 1)
            value = BigFloat(sign, man, exp)
            fraction = (-1 if sign else 1) * Fraction(man) * Fraction(2) ** exp
            expected = reference_single(fraction)
            assert bits64(value.to_single()) == bits64(expected), \
                f"sign={sign} man={man} exp={exp}"

    def test_numpy_crosscheck_single_rounding_cases(self):
        # Where the exact value fits a double exactly, double->float32
        # is a single rounding and numpy is a valid oracle.
        rng = random.Random(11)
        for __ in range(4000):
            mant_bits = rng.randint(1, 53)
            man = rng.getrandbits(mant_bits) | 1
            exp = rng.randint(-140, 120 - mant_bits)
            value = BigFloat(0, man, exp)
            as_double = math.ldexp(float(man), exp)
            if math.isinf(as_double) or as_double == 0.0:
                continue
            if BigFloat.from_float(as_double).key() != value.key():
                continue  # the double itself was rounded: skip
            expected = float(numpy.float32(as_double))
            assert bits64(value.to_single()) == bits64(expected), \
                f"man={man} exp={exp}"

    def test_single_subnormal_ties(self):
        tiny = 2.0 ** -149
        assert BigFloat(0, 1, -150).to_single() == 0.0        # tie -> even
        assert BigFloat(0, 3, -151).to_single() == tiny       # 3/4: up
        assert BigFloat(0, 3, -150).to_single() == 2 * tiny   # 1.5: tie -> even
        assert BigFloat(0, 1, -149).to_single() == tiny

    def test_single_overflow_tie(self):
        # max_float32 + ulp/2: tie between max (odd) and inf side.
        assert BigFloat(0, (1 << 25) - 1, 103).to_single() == math.inf
        below = BigFloat(0, (1 << 25) - 3, 103).to_single()
        assert below == float(numpy.float32(3.4028233e38))
