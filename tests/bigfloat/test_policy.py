"""Unit tests for the precision-tier policies."""

import math

import pytest

from repro.bigfloat import BigFloat, Context
from repro.bigfloat.policy import (
    EXACT,
    UNTRUSTED,
    AdaptivePrecisionPolicy,
    FixedPrecisionPolicy,
    PrecisionPolicy,
    available_policies,
    make_policy,
    register_policy,
)


def adaptive(full=1000, working=192, guard=16):
    return AdaptivePrecisionPolicy(
        full, working_precision=working, guard_bits=guard
    )


class TestRegistry:
    def test_available(self):
        assert {"fixed", "adaptive"} <= set(available_policies())

    def test_make_fixed(self):
        policy = make_policy("fixed", 1000)
        assert isinstance(policy, FixedPrecisionPolicy)
        assert policy.context.precision == 1000
        assert not policy.escalates

    def test_make_adaptive(self):
        policy = make_policy(
            "adaptive", 1000, working_precision=192, guard_bits=16
        )
        assert policy.context.precision == 192
        assert policy.full_context.precision == 1000
        assert policy.escalates

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown precision policy"):
            make_policy("nope", 1000)

    def test_register_custom(self):
        class Widened(AdaptivePrecisionPolicy):
            name = "widened"

        register_policy("widened", Widened)
        try:
            policy = make_policy("widened", 500, working_precision=128)
            assert isinstance(policy, Widened)
            assert policy.context.precision == 128
        finally:
            from repro.bigfloat import policy as policy_mod

            policy_mod._POLICIES.pop("widened", None)

    def test_working_precision_floor(self):
        with pytest.raises(ValueError, match="too small"):
            AdaptivePrecisionPolicy(
                1000, working_precision=64, guard_bits=16
            )


class TestContextStack:
    def test_base_context(self):
        policy = adaptive()
        assert policy.context.precision == 192

    def test_escalated_pushes_full(self):
        policy = adaptive()
        with policy.escalated() as context:
            assert context.precision == 1000
            assert policy.context.precision == 1000
        assert policy.context.precision == 192

    def test_nested_push_pop(self):
        policy = adaptive()
        policy.push(Context(precision=300))
        policy.push(Context(precision=400))
        assert policy.context.precision == 400
        assert policy.pop().precision == 400
        assert policy.context.precision == 300
        policy.pop()
        with pytest.raises(RuntimeError):
            policy.pop()

    def test_fixed_base_is_full(self):
        policy = make_policy("fixed", 777)
        assert policy.context.precision == 777


class TestDriftPropagation:
    def test_exact_addition_stays_exact(self):
        policy = adaptive()
        a = BigFloat.from_float(1e16)
        b = BigFloat.from_float(1.0)
        result = BigFloat.from_float(1e16 + 1)
        assert policy.propagate("+", [a, b], [EXACT, EXACT], result) == EXACT

    def test_inexact_division_gets_one_ulp(self):
        policy = adaptive()
        a, b = BigFloat.from_float(1.0), BigFloat.from_float(3.0)
        result = a  # placeholder value; only msb matters
        drift = policy.propagate("/", [a, b], [EXACT, EXACT], result)
        assert drift == 1.0

    def test_cancellation_amplifies(self):
        policy = adaptive()
        a = BigFloat.from_float(1.0 + 2 ** -40)
        b = BigFloat.from_float(1.0)
        result = BigFloat.from_float(2.0 ** -40)
        drift = policy.propagate("-", [a, b], [2.0, EXACT], result)
        # 2 ulps at msb 0 amplified by the 40-bit exponent drop.
        assert drift == pytest.approx(2.0 * 2 ** 40 + 1.0)

    def test_zero_from_inexact_operands_is_untrusted(self):
        policy = adaptive()
        a = BigFloat.from_float(1.5)
        drift = policy.propagate(
            "-", [a, a], [1.0, 1.0], BigFloat.zero()
        )
        assert drift == UNTRUSTED

    def test_exact_zero_factor_forces_exact_zero(self):
        policy = adaptive()
        a = BigFloat.from_float(1.5)
        zero = BigFloat.zero()
        drift = policy.propagate(
            "*", [a, zero], [5.0, EXACT], BigFloat.zero()
        )
        assert drift == EXACT

    def test_benign_accumulation_grows_linearly_not_exponentially(self):
        # acc += 1/i style loops: drift must stay ~#terms ulps, far
        # from the untrusted limit even after thousands of terms.
        policy = adaptive()
        acc = BigFloat.from_float(3.7)
        term = BigFloat.from_float(0.001)
        drift = 1.0
        for __ in range(5000):
            drift = policy.propagate("+", [acc, term], [drift, 1.0], acc)
        assert drift < 2.0 * 5000 + 10
        assert drift < policy._ulps_limit

    def test_untrusted_input_stays_untrusted(self):
        policy = adaptive()
        a = BigFloat.from_float(2.0)
        drift = policy.propagate("+", [a, a], [UNTRUSTED, EXACT], a)
        assert drift == UNTRUSTED

    def test_sign_ops_pass_drift_through(self):
        policy = adaptive()
        a = BigFloat.from_float(2.0)
        assert policy.propagate("neg", [a], [7.5, ], a) == 7.5

    def test_fmod_with_inexact_operands_untrusted(self):
        policy = adaptive()
        a = BigFloat.from_float(10.0)
        b = BigFloat.from_float(3.0)
        result = BigFloat.from_float(1.0)
        assert policy.propagate("fmod", [a, b], [1.0, EXACT], result) \
            == UNTRUSTED
        assert policy.propagate("fmod", [a, b], [EXACT, EXACT], result) \
            == 1.0


class TestRoundingUnsafe:
    def test_exact_values_always_safe(self):
        policy = adaptive()
        tie = BigFloat(0, (1 << 53) + 1, -53)  # exactly between doubles
        assert not policy.rounding_unsafe(tie, EXACT)

    def test_fixed_policy_never_escalates(self):
        policy = make_policy("fixed", 1000)
        tie = BigFloat(0, (1 << 53) + 1, -53)
        assert not policy.rounding_unsafe(tie, 1e30)

    def test_exact_tie_with_drift_is_unsafe(self):
        policy = adaptive()
        tie = BigFloat(0, (1 << 53) + 1, -53)
        assert policy.rounding_unsafe(tie, 1.0)

    def test_near_tie_within_band_is_unsafe(self):
        policy = adaptive()
        # A value 2^-180 above a rounding tie of 1.xxx: inside the
        # guarded band of a 1-ulp (2^-191) drift with 16 guard bits.
        man = ((1 << 53) + 1 << 127) + 1
        value = BigFloat(0, man, -180)
        assert policy.rounding_unsafe(value, 1.0)

    def test_value_far_from_ties_is_safe(self):
        policy = adaptive()
        value = BigFloat.from_float(1.0 + 2 ** -30)
        # Representable exactly, but pretend it carries a few ulps of
        # drift: nearest tie is half a double-ulp away, far beyond the
        # band.
        assert not policy.rounding_unsafe(value, 8.0)

    def test_drifted_specials_are_unsafe(self):
        policy = adaptive()
        assert policy.rounding_unsafe(BigFloat.zero(), 1.0)
        assert policy.rounding_unsafe(BigFloat.nan(), UNTRUSTED)
        assert policy.rounding_unsafe(BigFloat.inf(0), 1.0)

    def test_deep_subnormal_region_is_confirmed(self):
        policy = adaptive()
        tiny = BigFloat(0, 3, -1076)
        assert policy.rounding_unsafe(tiny, 1.0)


class TestComparisonUnsafe:
    def test_exact_pair_safe(self):
        policy = adaptive()
        a, b = BigFloat.from_float(1.0), BigFloat.from_float(1.0)
        assert not policy.comparison_unsafe(a, EXACT, b, EXACT)

    def test_equal_with_drift_unsafe(self):
        policy = adaptive()
        a = BigFloat.from_float(1.0)
        assert policy.comparison_unsafe(a, 1.0, a, EXACT)

    def test_distant_values_safe_despite_drift(self):
        policy = adaptive()
        a = BigFloat.from_float(1.0)
        b = BigFloat.from_float(2.0)
        assert not policy.comparison_unsafe(a, 100.0, b, 100.0)

    def test_within_band_unsafe(self):
        policy = adaptive()
        a = BigFloat.from_float(1.0)
        b = BigFloat(0, (1 << 180) + 1, -180)  # 1 + 2^-180
        assert policy.comparison_unsafe(a, 4.0, b, 4.0)


class TestIntegerUnsafe:
    def test_exact_safe(self):
        policy = adaptive()
        assert not policy.integer_unsafe(BigFloat.from_float(2.5), EXACT)

    def test_integral_with_drift_unsafe(self):
        policy = adaptive()
        assert policy.integer_unsafe(BigFloat.from_float(3.0), 1.0)

    def test_midway_fraction_safe(self):
        policy = adaptive()
        assert not policy.integer_unsafe(BigFloat.from_float(3.5), 4.0)

    def test_near_integer_within_band_unsafe(self):
        policy = adaptive()
        value = BigFloat(0, (3 << 180) + 1, -180)  # 3 + 2^-180
        assert policy.integer_unsafe(value, 2.0)


class TestAdditionPassthrough:
    def test_exact_zero_other_is_equal(self):
        policy = adaptive()
        c = BigFloat.from_float(1.5)
        assert policy.addition_passthrough(
            c, 1.0, BigFloat.zero(), EXACT
        ) is True

    def test_comparable_magnitudes_cannot_pass_through(self):
        policy = adaptive()
        c = BigFloat.from_float(1.5)
        o = BigFloat.from_float(2 ** -60)
        assert policy.addition_passthrough(c, 1.0, o, 1.0) is False

    def test_far_below_full_ulp_passes_through(self):
        policy = adaptive()
        c = BigFloat.from_float(1.5)
        o = BigFloat(0, 1, -1200)  # << 2^-1000 relative
        assert policy.addition_passthrough(c, 1.0, o, 1.0) is True

    def test_boundary_window_is_undecided(self):
        policy = adaptive()
        c = BigFloat.from_float(1.5)
        o = BigFloat(0, 1, -1000)  # right at the half-ulp_full scale
        assert policy.addition_passthrough(c, 1.0, o, 1.0) is None


class TestEscalationHooks:
    def test_hooks_and_stats(self):
        policy = adaptive()
        seen = []
        policy.escalation_hooks.append(seen.append)
        policy.note_escalation("rounding")
        policy.note_escalation("comparison")
        assert seen == ["rounding", "comparison"]
        assert policy.stats["escalations"] == 2
        assert policy.stats["rounding"] == 1
        assert policy.stats["comparison"] == 1

    def test_base_policy_is_fixed_behaviour(self):
        policy = PrecisionPolicy(256)
        value = BigFloat.from_float(1.5)
        assert policy.propagate("+", [value, value], [1.0, 1.0], value) \
            == EXACT
        assert not policy.rounding_unsafe(value, math.inf)
        assert policy.addition_passthrough(value, 0.0, value, 0.0) is None
