"""The C99 pow special-case table, pinned exhaustively.

Covers both semantics: the shadow-real ``pow_`` (⟦pow⟧_R rounded to
double) and the hardware ``pow`` handler (⟦pow⟧_F).  The grid crosses
±0/±1/±inf/NaN with odd/even/non-integer/infinite exponents; where
Python's ``math.pow`` itself deviates from C99 (it raises where C99
defines a result) the expected values are pinned explicitly:

* ``pow(±0, y < 0)`` is a divide-by-zero: ±inf, the sign following the
  base only for odd integer y (math.pow raises ValueError).
* overflow keeps C99's sign rule: ``pow(-huge, even) = +inf``
  (a naive range-error wrapper would sign by the base).
"""

import math

import pytest

from repro.bigfloat import BigFloat
from repro.bigfloat.context import Context
from repro.bigfloat.functions import apply_double
from repro.bigfloat.transcendental import pow_

CONTEXT = Context(precision=200)

BASES = [0.0, -0.0, 1.0, -1.0, math.inf, -math.inf, math.nan,
         0.5, -0.5, 2.0, -2.0, 1.5, -1.5, 9.75, -9.75]
EXPONENTS = [0.0, -0.0, 1.0, -1.0, 2.0, -2.0, 3.0, -3.0, 5.0, -5.0,
             0.5, -0.5, 2.5, -2.5, math.inf, -math.inf, math.nan,
             4.0, -4.0, 7.0, 1024.0, -1024.0]


def _same_double(ours: float, expected: float) -> bool:
    if math.isnan(expected):
        return math.isnan(ours)
    if ours != expected:
        return False
    if ours == 0.0:
        return math.copysign(1.0, ours) == math.copysign(1.0, expected)
    return True


def c99_pow(x: float, y: float) -> float:
    """The C99 F.10.4.4 special-case table, written out directly."""
    y_is_integer = (
        math.isfinite(y) and (abs(y) >= 9007199254740992.0 or y == int(y))
    )
    y_is_odd = (
        y_is_integer and abs(y) < 9007199254740992.0 and bool(int(y) & 1)
    )
    if y == 0.0 and not math.isnan(y):
        return 1.0
    if x == 1.0:
        return 1.0
    if math.isnan(x) or math.isnan(y):
        return math.nan
    if x == 0.0:
        sign_source = x if y_is_odd else 0.0
        if y > 0:
            return math.copysign(0.0, sign_source)
        return math.copysign(math.inf, sign_source)
    if math.isinf(y):
        if abs(x) == 1.0:
            return 1.0
        growing = (abs(x) > 1.0) == (y > 0)
        return math.inf if growing else 0.0
    if math.isinf(x):
        if x > 0:
            return math.inf if y > 0 else 0.0
        sign_source = -1.0 if y_is_odd else 1.0
        if y > 0:
            return math.copysign(math.inf, sign_source)
        return math.copysign(0.0, sign_source)
    if x < 0 and not y_is_integer:
        return math.nan
    try:
        result = abs(x) ** y
    except OverflowError:
        result = math.inf  # C99 range error: +HUGE_VAL before the sign
    if x < 0 and y_is_odd:
        result = -result
    return result


class TestHardwarePow:
    @pytest.mark.parametrize("x", BASES)
    @pytest.mark.parametrize("y", EXPONENTS)
    def test_double_handler_matches_c99(self, x, y):
        expected = c99_pow(x, y)
        ours = apply_double("pow", [x, y])
        assert _same_double(ours, expected), (x, y, ours, expected)

    @pytest.mark.parametrize("x", BASES)
    @pytest.mark.parametrize("y", EXPONENTS)
    def test_double_handler_matches_math_pow_where_it_conforms(self, x, y):
        try:
            expected = math.pow(x, y)
        except (ValueError, OverflowError):
            return  # C99 defines these; math.pow does not — pinned above
        ours = apply_double("pow", [x, y])
        assert _same_double(ours, expected), (x, y)

    def test_zero_to_negative_is_divide_by_zero(self):
        assert apply_double("pow", [0.0, -2.0]) == math.inf
        assert apply_double("pow", [-0.0, -2.0]) == math.inf
        assert apply_double("pow", [-0.0, -3.0]) == -math.inf
        assert apply_double("pow", [0.0, -3.0]) == math.inf
        assert apply_double("pow", [0.0, -0.5]) == math.inf

    def test_overflow_sign_follows_parity(self):
        assert apply_double("pow", [-1e300, 2.0]) == math.inf
        assert apply_double("pow", [-1e300, 3.0]) == -math.inf
        assert apply_double("pow", [1e300, 2.0]) == math.inf


class TestShadowRealPow:
    @pytest.mark.parametrize("x", BASES)
    @pytest.mark.parametrize("y", EXPONENTS)
    def test_rounded_shadow_matches_c99(self, x, y):
        expected = c99_pow(x, y)
        result = pow_(
            BigFloat.from_float(x), BigFloat.from_float(y), CONTEXT
        )
        ours = result.to_float()
        if math.isnan(expected):
            assert math.isnan(ours), (x, y)
        elif expected == 0.0 or math.isinf(expected):
            assert _same_double(ours, expected), (x, y, ours)
        else:
            # Finite nonzero: the shadow is faithful at 200 bits, so
            # its double rounding equals the correctly rounded pow.
            assert ours == pytest.approx(expected, rel=1e-15, abs=0.0), \
                (x, y)

    def test_signed_zero_results(self):
        neg_zero = BigFloat.zero(1)
        odd = BigFloat.from_float(3.0)
        even = BigFloat.from_float(2.0)
        assert pow_(neg_zero, odd, CONTEXT).key() == (0, 1, 0, 0)
        assert pow_(neg_zero, even, CONTEXT).key() == (0, 0, 0, 0)
        assert pow_(neg_zero, odd.neg(), CONTEXT).key() == \
            BigFloat.inf(1).key()
        assert pow_(neg_zero, even.neg(), CONTEXT).key() == \
            BigFloat.inf(0).key()

    def test_integer_power_limit_constant_is_hoisted(self):
        from repro.bigfloat import transcendental

        limit = transcendental._POW_INT_LIMIT_BIG
        assert limit.to_fraction() == transcendental._POW_INT_LIMIT
        # Both sides of the limit still compute correctly.
        base = BigFloat.from_float(1.0000001)
        below = pow_(base, BigFloat.from_int(4), CONTEXT)
        assert below.to_float() == pytest.approx(1.0000001 ** 4, rel=1e-15)

    def test_huge_odd_integer_exponent_keeps_sign(self):
        # Above the exact-powering limit the general exp(y ln x) path
        # must still apply the odd-integer sign rule.
        y = BigFloat.from_int((1 << 21) + 1)
        result = pow_(BigFloat.from_float(-1.0000001), y, CONTEXT)
        assert result.is_negative()
        assert result.is_finite()
