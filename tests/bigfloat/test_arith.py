"""Differential tests of BigFloat arithmetic.

At precision 53 our exact-then-round arithmetic must agree bit-for-bit
with hardware doubles (including signed zeros, infinities and NaNs); at
high precision it must agree with mpmath (used here as a test oracle
only — the library itself depends on nothing).
"""

import math
from fractions import Fraction

import pytest

mpmath = pytest.importorskip(
    "mpmath", reason="mpmath is the arithmetic oracle"
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat, Context, DOUBLE_CONTEXT, ONE, arith

finite = st.floats(allow_nan=False, allow_infinity=False)
any_doubles = st.floats(allow_nan=True, allow_infinity=True)
reasonable = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e30, max_value=1e30
)


def same_double(ours: float, hardware: float) -> bool:
    if math.isnan(hardware):
        return math.isnan(ours)
    if ours != hardware:
        return False
    if hardware == 0.0:
        return math.copysign(1.0, ours) == math.copysign(1.0, hardware)
    return True


def bf(x: float) -> BigFloat:
    return BigFloat.from_float(x)


class TestDoubleAgreement:
    """Precision-53 arithmetic must exactly match the hardware."""

    @given(any_doubles, any_doubles)
    @settings(max_examples=400)
    def test_add(self, x, y):
        ours = arith.add(bf(x), bf(y), DOUBLE_CONTEXT).to_float()
        assert same_double(ours, x + y)

    @given(any_doubles, any_doubles)
    @settings(max_examples=400)
    def test_sub(self, x, y):
        ours = arith.sub(bf(x), bf(y), DOUBLE_CONTEXT).to_float()
        assert same_double(ours, x - y)

    @given(any_doubles, any_doubles)
    @settings(max_examples=400)
    def test_mul(self, x, y):
        ours = arith.mul(bf(x), bf(y), DOUBLE_CONTEXT).to_float()
        expected = x * y
        # Hardware multiply can underflow/overflow; BigFloat has unbounded
        # exponents, so only compare where the double result is faithful.
        # Results in the subnormal range are also skipped: rounding to 53
        # bits and then to the subnormal lattice double-rounds, which is
        # an artifact of this test setup, not of the library (the
        # analysis uses apply_double for hardware semantics).
        if expected == 0.0 and x != 0.0 and y != 0.0:
            return  # hardware underflew; we keep the exact tiny value
        if math.isinf(expected) and not (math.isinf(x) or math.isinf(y)):
            return  # hardware overflew
        if expected != 0.0 and abs(expected) < 2.0 ** -1021:
            return  # subnormal territory (double-rounding artifact)
        assert same_double(ours, expected)

    @given(any_doubles, any_doubles)
    @settings(max_examples=400)
    def test_div(self, x, y):
        result = arith.div(bf(x), bf(y), DOUBLE_CONTEXT)
        if (
            x not in (0.0,)
            and not math.isinf(x)
            and not math.isnan(x)
            and y not in (0.0,)
            and not math.isinf(y)
            and not math.isnan(y)
        ):
            exact = Fraction(x) / Fraction(y)
            if exact != 0 and abs(exact) < Fraction(2) ** -1021:
                return  # hardware underflow / subnormal double-rounding
            if abs(exact) >= Fraction(2) ** 1020:
                return  # hardware overflow neighbourhood
        try:
            expected = x / y
        except ZeroDivisionError:
            if x == 0.0 or math.isnan(x):
                expected = math.nan
            else:
                expected = math.copysign(math.inf, x) * math.copysign(1.0, y)
        assert same_double(result.to_float(), expected)

    @given(finite)
    @settings(max_examples=300)
    def test_sqrt(self, x):
        ours = arith.sqrt(bf(x), DOUBLE_CONTEXT).to_float()
        if x < 0:
            assert math.isnan(ours)
        else:
            assert same_double(ours, math.sqrt(x))

    def test_div_signs(self):
        assert arith.div(bf(1.0), bf(0.0)).to_float() == math.inf
        assert arith.div(bf(1.0), bf(-0.0)).to_float() == -math.inf
        assert arith.div(bf(-1.0), bf(0.0)).to_float() == -math.inf
        assert math.isnan(arith.div(bf(0.0), bf(0.0)).to_float())
        zero = arith.div(bf(0.0), bf(-3.0)).to_float()
        assert zero == 0.0 and math.copysign(1.0, zero) == -1.0

    def test_add_zero_signs(self):
        result = arith.add(bf(0.0), bf(-0.0)).to_float()
        assert result == 0.0 and math.copysign(1.0, result) == 1.0
        result = arith.add(bf(-0.0), bf(-0.0)).to_float()
        assert math.copysign(1.0, result) == -1.0

    def test_exact_cancellation_is_positive_zero(self):
        result = arith.sub(bf(5.0), bf(5.0)).to_float()
        assert result == 0.0 and math.copysign(1.0, result) == 1.0

    def test_inf_arithmetic(self):
        inf = bf(math.inf)
        assert math.isnan(arith.add(inf, inf.neg()).to_float())
        assert math.isnan(arith.mul(inf, bf(0.0)).to_float())
        assert arith.div(bf(1.0), inf).to_float() == 0.0


class TestFarPath:
    """Operands too far apart to interact still round correctly."""

    def test_tiny_addend_rounds_to_big(self):
        big = bf(1.0)
        tiny = BigFloat(0, 1, -500)
        assert arith.add(big, tiny, DOUBLE_CONTEXT).to_float() == 1.0

    def test_tiny_addend_direction_up(self):
        from repro.bigfloat import ROUND_UP

        ctx = Context(precision=53, rounding=ROUND_UP)
        result = arith.add(bf(1.0), BigFloat(0, 1, -500), ctx).to_float()
        assert result == math.nextafter(1.0, 2.0)

    def test_tiny_subtrahend_direction_down(self):
        from repro.bigfloat import ROUND_DOWN

        ctx = Context(precision=53, rounding=ROUND_DOWN)
        result = arith.sub(bf(1.0), BigFloat(0, 1, -500), ctx).to_float()
        assert result == math.nextafter(1.0, 0.0)

    def test_far_path_tie_breaking(self):
        # 1 + 2^-53 is an exact tie at precision 53 -> even (stays 1.0);
        # but with anything below, it must round up.
        ctx = DOUBLE_CONTEXT
        tie = BigFloat(0, 1, -53)
        assert arith.add(bf(1.0), tie, ctx).to_float() == 1.0
        above_tie = arith.add_exact(tie, BigFloat(0, 1, -500))
        assert arith.add(bf(1.0), above_tie, ctx).to_float() > 1.0


class TestExactHelpers:
    @given(reasonable, reasonable)
    def test_add_exact_is_exact(self, x, y):
        result = arith.add_exact(bf(x), bf(y))
        assert result.to_fraction() == Fraction(x) + Fraction(y)

    def test_add_exact_rejects_specials(self):
        with pytest.raises(ValueError):
            arith.add_exact(bf(math.inf), ONE)

    @given(reasonable, reasonable, reasonable)
    @settings(max_examples=200)
    def test_fma_single_rounding(self, x, y, z):
        ours = arith.fma(bf(x), bf(y), bf(z), DOUBLE_CONTEXT)
        exact = Fraction(x) * Fraction(y) + Fraction(z)
        if exact != 0 and (abs(exact) < Fraction(2) ** -1080 or abs(exact) > Fraction(2) ** 1024):
            return
        expected = BigFloat.from_fraction(exact, 53).to_float() if exact else 0.0
        if exact == 0:
            assert ours.to_float() == 0.0
        else:
            assert ours.to_float() == expected


class TestRootsAndFriends:
    @given(st.integers(0, 10 ** 12))
    def test_cbrt_perfect_cubes(self, n):
        cube = BigFloat.from_int(n ** 3)
        assert arith.cbrt(cube, Context(precision=64)).to_fraction() == n

    def test_cbrt_negative(self):
        assert arith.cbrt(bf(-27.0), DOUBLE_CONTEXT).to_float() == -3.0

    def test_cbrt_specials(self):
        assert math.isnan(arith.cbrt(BigFloat.nan()).to_float())
        assert arith.cbrt(bf(-0.0)).to_float() == 0.0
        assert arith.cbrt(bf(math.inf)).to_float() == math.inf

    @given(finite, finite)
    @settings(max_examples=200)
    def test_hypot(self, x, y):
        ours = arith.hypot(bf(x), bf(y), DOUBLE_CONTEXT).to_float()
        if math.isinf(x) or math.isinf(y):
            assert ours == math.inf
            return
        exact = Fraction(x) ** 2 + Fraction(y) ** 2
        if exact and abs(exact) > Fraction(2) ** 2100:
            return
        expected = math.hypot(x, y)
        if math.isinf(expected):
            return
        # math.hypot is not always correctly rounded; allow 1 ulp.
        assert abs(ours - expected) <= math.ulp(expected)

    @given(finite, finite)
    @settings(max_examples=200)
    def test_fmod_matches_libm(self, x, y):
        ours = arith.fmod(bf(x), bf(y), DOUBLE_CONTEXT).to_float()
        expected = math.fmod(x, y) if y != 0.0 else math.nan
        assert same_double(ours, expected)

    @given(finite, finite)
    @settings(max_examples=200)
    def test_remainder_matches_libm(self, x, y):
        ours = arith.remainder(bf(x), bf(y), DOUBLE_CONTEXT).to_float()
        if y == 0.0 or math.isinf(x):
            assert math.isnan(ours)
            return
        assert same_double(ours, math.remainder(x, y))

    def test_min_max_nan_handling(self):
        nan = BigFloat.nan()
        assert arith.fmin(nan, ONE) == ONE
        assert arith.fmax(ONE, nan) == ONE
        assert arith.fmin(nan, nan).is_nan()

    def test_min_max_zero_signs(self):
        pos, neg = BigFloat.zero(0), BigFloat.zero(1)
        assert arith.fmin(pos, neg).sign == 1
        assert arith.fmax(neg, pos).sign == 0

    @given(finite)
    def test_integer_rounding(self, x):
        value = bf(x)
        assert arith.trunc(value).to_float() == math.trunc(x) if abs(x) < 1e308 else True
        assert arith.floor(value).to_float() == math.floor(x)
        assert arith.ceil(value).to_float() == math.ceil(x)

    def test_round_modes(self):
        assert arith.round_half_away(bf(2.5)).to_float() == 3.0
        assert arith.round_half_even(bf(2.5)).to_float() == 2.0
        assert arith.round_half_away(bf(-2.5)).to_float() == -3.0
        assert arith.round_half_even(bf(-2.5)).to_float() == -2.0

    def test_fdim(self):
        assert arith.fdim(bf(3.0), bf(1.0)).to_float() == 2.0
        assert arith.fdim(bf(1.0), bf(3.0)).to_float() == 0.0
        assert math.isnan(arith.fdim(BigFloat.nan(), ONE).to_float())


class TestHighPrecisionVsMpmath:
    """Arbitrary-precision results cross-checked against mpmath."""

    PRECISION = 240

    def to_mpf(self, x: BigFloat):
        sign = -1 if x.sign else 1
        return mpmath.mpf(sign * x.man) * mpmath.mpf(2) ** x.exp

    @given(finite, finite)
    @settings(max_examples=150)
    def test_add_matches(self, x, y):
        with mpmath.workprec(self.PRECISION + 20):
            expected = mpmath.mpf(x) + mpmath.mpf(y)
            ours = arith.add(bf(x), bf(y), Context(precision=self.PRECISION))
            assert mpmath.almosteq(
                self.to_mpf(ours), expected, rel_eps=mpmath.mpf(2) ** -(self.PRECISION - 2)
            ) or (ours.is_zero() and expected == 0)

    @given(st.floats(min_value=1e-100, max_value=1e100))
    @settings(max_examples=150)
    def test_sqrt_matches(self, x):
        with mpmath.workprec(self.PRECISION + 20):
            expected = mpmath.sqrt(mpmath.mpf(x))
            ours = arith.sqrt(bf(x), Context(precision=self.PRECISION))
            assert mpmath.almosteq(
                self.to_mpf(ours), expected, rel_eps=mpmath.mpf(2) ** -(self.PRECISION - 2)
            )
