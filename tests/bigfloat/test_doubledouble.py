"""The double-double hardware tier vs exact rational ground truth.

Two families of properties pin the kernels of
:mod:`repro.bigfloat.doubledouble`:

* **Error-bound soundness** — whenever a kernel accepts an operation
  (returns a result instead of ``None``), the result's relative error
  against exact ``Fraction`` arithmetic is within the single per-op
  charge the adaptive policy books for it (``2**DD_REL_ERR_LOG2``
  relative, i.e. far inside the working tier's trust limit).  An
  understated bound here would let a wrong hardware-tier decision
  masquerade as certified, so this is the escalation-soundness
  anchor.
* **Exactness honesty** — a kernel may only set ``exact=True`` when
  the result equals the mathematical value *exactly* (checked in
  ``Fraction`` arithmetic); the policy propagates EXACT drift through
  such ops, so a false claim would silently corrupt drift accounting.

Directed cases cover the IEEE edge geography: signed zeros, exact
cancellation, subnormals, the deep-underflow guard band, overflow,
NaN/inf operands, and the Dekker-splitting range limit — each must
either produce the bit-exact IEEE answer or bail out with ``None``
(promote to the working tier); silently wrong values are the only
forbidden outcome.
"""

from __future__ import annotations

import math
import random
import struct
from fractions import Fraction

import pytest

from repro.bigfloat import BigFloat, Context
from repro.bigfloat.doubledouble import (
    DD_KERNELS,
    DD_REL_ERR_LOG2,
    DoubleDouble,
    dd_abs,
    dd_add,
    dd_div,
    dd_fma,
    dd_mul,
    dd_neg,
    dd_sqrt,
    fits_precision,
    from_double,
    two_prod,
    two_sum,
)

#: The policy's per-op relative charge; every accepted inexact result
#: must land within it.
REL_BOUND = Fraction(1, 2 ** -DD_REL_ERR_LOG2)


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


def frac(hi: float, lo: float = 0.0) -> Fraction:
    return Fraction(hi) + Fraction(lo)


def random_double(rng: random.Random, emin: int = -300, emax: int = 300) -> float:
    mantissa = rng.random() + 0.5
    value = math.ldexp(mantissa, rng.randint(emin, emax))
    return -value if rng.random() < 0.5 else value


def random_dd(rng: random.Random, emin: int = -300, emax: int = 300):
    """A normalized (hi, lo) pair with a genuinely wide significand."""
    hi = random_double(rng, emin, emax)
    lo = math.ldexp(rng.random() - 0.5, math.frexp(hi)[1] - 54)
    hi, lo = two_sum(hi, lo)
    return hi, lo


def check_binary(op: str, xh, xl, yh, yl) -> None:
    """One kernel call against the Fraction oracle."""
    kernel = DD_KERNELS[op]
    outcome = kernel(xh, xl, yh, yl)
    if outcome is None:
        return  # a promotion is always sound
    zh, zl, exact = outcome
    x, y = frac(xh, xl), frac(yh, yl)
    truth = {
        "+": x + y, "-": x - y, "*": x * y,
        "/": x / y if y else None,
    }[op]
    if truth is None:
        return
    got = frac(zh, zl)
    if exact:
        assert got == truth, (op, xh, xl, yh, yl)
    elif truth != 0:
        assert abs(got - truth) <= REL_BOUND * abs(truth), \
            (op, xh, xl, yh, yl)
    else:
        # An inexact kernel path may not claim an exact zero result.
        assert got == 0


class TestRandomizedOracle:
    OPS = ["+", "-", "*", "/"]

    @pytest.mark.parametrize("op", OPS)
    def test_wide_range_pairs(self, op):
        rng = random.Random(0xDD00 + ord(op[0]))
        for _ in range(400):
            xh, xl = random_dd(rng)
            yh, yl = random_dd(rng)
            check_binary(op, xh, xl, yh, yl)

    @pytest.mark.parametrize("op", OPS)
    def test_pure_double_operands(self, op):
        rng = random.Random(0xDD10 + ord(op[0]))
        for _ in range(400):
            check_binary(op, random_double(rng), 0.0,
                         random_double(rng), 0.0)

    @pytest.mark.parametrize("op", OPS)
    def test_near_cancellation(self, op):
        rng = random.Random(0xDD20 + ord(op[0]))
        for _ in range(400):
            xh, xl = random_dd(rng, -4, 4)
            # y within an ulp or two of x: additions cancel almost
            # fully, divisions land near 1.
            yh = xh * (1.0 + rng.choice([0.0, 2e-16, -2e-16, 1e-13]))
            yl = rng.choice([0.0, xl, -xl, math.ldexp(xl, -1)])
            check_binary(op, xh, xl, yh, yl)
            check_binary(op, xh, xl, -yh, -yl)

    @pytest.mark.parametrize("op", OPS)
    def test_extreme_exponents(self, op):
        rng = random.Random(0xDD30 + ord(op[0]))
        for _ in range(300):
            xh, xl = random_dd(rng, -1070, -950)  # subnormal territory
            yh, yl = random_dd(rng, 900, 1023)    # near overflow
            check_binary(op, xh, xl, yh, yl)
            check_binary(op, yh, yl, xh, xl)
            check_binary(op, xh, xl, *random_dd(rng, -1070, -950))
            check_binary(op, yh, yl, *random_dd(rng, 960, 1023))

    def test_sqrt_against_squared_residual(self):
        # sqrt truth is irrational; bound the error through the square:
        # z = s(1+e) implies |z^2 - x| / x ~ 2|e|, so 2*REL_BOUND plus
        # slack covers every accepted lane.
        rng = random.Random(0xDD40)
        for _ in range(600):
            xh, xl = random_dd(rng, -900, 900)
            xh, xl = abs(xh), (xl if xh > 0 else -xl)
            outcome = dd_sqrt(xh, xl)
            if outcome is None:
                continue
            zh, zl, exact = outcome
            z, x = frac(zh, zl), frac(xh, xl)
            if exact:
                assert z * z == x, (xh, xl)
            else:
                assert abs(z * z - x) <= 4 * REL_BOUND * x, (xh, xl)

    def test_fma_oracle(self):
        rng = random.Random(0xDD50)
        for _ in range(400):
            xh, xl = random_dd(rng, -100, 100)
            yh, yl = random_dd(rng, -100, 100)
            zh, zl = random_dd(rng, -100, 100)
            outcome = dd_fma(xh, xl, yh, yl, zh, zl)
            if outcome is None:
                continue
            rh, rl, exact = outcome
            truth = frac(xh, xl) * frac(yh, yl) + frac(zh, zl)
            got = frac(rh, rl)
            if exact:
                assert got == truth
            elif truth != 0:
                # Product error can be amplified by the final
                # cancellation; without cancellation (the generic
                # random case) 3 charges cover the chain.  Cancelling
                # cases promote via the policy's msb amplification,
                # which TestExactnessHonesty pins separately.
                cancel = abs(truth) / max(
                    abs(frac(xh, xl) * frac(yh, yl)), abs(frac(zh, zl))
                )
                if cancel > Fraction(1, 2 ** 40):
                    assert abs(got - truth) <= \
                        3 * REL_BOUND * abs(truth) / cancel


class TestDirectedEdges:
    def test_signed_zero_addition(self):
        assert dd_add(0.0, 0.0, -0.0, 0.0)[:2] == (0.0, 0.0)
        zh, zl, exact = dd_add(-0.0, 0.0, -0.0, 0.0)
        assert bits(zh) == bits(-0.0) and exact
        zh, zl, exact = dd_add(-0.0, 0.0, 5.0, 1e-20)
        assert (zh, zl, exact) == (5.0, 1e-20, True)

    def test_exact_cancellation_is_positive_zero(self):
        zh, zl, exact = dd_add(1.5, 0.0, -1.5, 0.0)
        assert bits(zh) == bits(0.0) and zl == 0.0 and exact

    def test_zero_products_keep_ieee_sign(self):
        zh, zl, exact = dd_mul(-0.0, 0.0, 7.0, 0.0)
        assert bits(zh) == bits(-0.0) and exact
        # Nonzero operands whose product underflows to zero are NOT a
        # signed-zero case — that is precision loss, so promote.
        assert dd_mul(-1e-200, 0.0, -1e-200, 0.0) is None

    def test_zero_dividend_keeps_ieee_sign(self):
        zh, zl, exact = dd_div(-0.0, 0.0, 3.0, 0.0)
        assert bits(zh) == bits(-0.0) and exact
        zh, zl, exact = dd_div(0.0, 0.0, -3.0, 0.0)
        assert bits(zh) == bits(-0.0) and exact

    def test_division_by_zero_promotes(self):
        assert dd_div(1.0, 0.0, 0.0, 0.0) is None
        assert dd_div(1.0, 0.0, -0.0, 0.0) is None

    def test_nonfinite_operands_promote(self):
        for bad in (math.inf, -math.inf, math.nan):
            assert dd_add(bad, 0.0, 1.0, 0.0) is None
            assert dd_mul(bad, 0.0, 1.0, 0.0) is None
            assert dd_div(1.0, 0.0, bad, 0.0) is None
            assert dd_sqrt(bad, 0.0) is None

    def test_overflow_promotes(self):
        big = math.ldexp(1.0, 1023)
        assert dd_add(big, 0.0, big, 0.0) is None
        assert dd_mul(big, 0.0, big, 0.0) is None
        assert dd_mul(math.ldexp(1.0, 980), 0.0, 2.0, 0.0) is None

    def test_negative_sqrt_promotes(self):
        assert dd_sqrt(-4.0, 0.0) is None
        assert dd_sqrt(-0.0, 0.0) == (-0.0, 0.0, True)
        zh, zl, exact = dd_sqrt(0.0, 0.0)
        assert bits(zh) == bits(0.0) and exact

    def test_underflow_guard_band_promotes(self):
        tiny = math.ldexp(1.0, -980)
        assert dd_mul(tiny, 0.0, tiny, 0.0) is None
        assert dd_div(tiny, 0.0, math.ldexp(1.0, 100), 0.0) is None
        assert dd_sqrt(math.ldexp(1.0, -1000), 0.0) is None

    def test_subnormal_addition_stays_exact_or_promotes(self):
        rng = random.Random(0xDD60)
        for _ in range(300):
            xh = math.ldexp(rng.random(), -1060)
            yh = math.ldexp(rng.random(), -1060)
            check_binary("+", xh, 0.0, yh, 0.0)
            check_binary("-", xh, 0.0, yh, 0.0)

    def test_neg_abs_are_exact(self):
        assert dd_neg(1.5, -1e-20) == (-1.5, 1e-20, True)
        assert dd_abs(-1.5, 1e-20) == (1.5, -1e-20, True)
        zh, zl, exact = dd_abs(-0.0, 0.0)
        assert bits(zh) == bits(0.0) and exact


class TestExactnessHonesty:
    """`exact=True` must mean bit-exact in Fraction arithmetic —
    sweeping the operand shapes most likely to produce a false claim."""

    def test_two_sum_and_two_prod_are_error_free(self):
        rng = random.Random(0xDD70)
        for _ in range(1000):
            a, b = random_double(rng), random_double(rng)
            s, e = two_sum(a, b)
            assert frac(s, e) == Fraction(a) + Fraction(b)
            a, b = random_double(rng, -400, 400), \
                random_double(rng, -400, 400)
            p, e = two_prod(a, b)
            assert frac(p, e) == Fraction(a) * Fraction(b)

    def test_exact_flags_never_lie(self):
        rng = random.Random(0xDD80)
        claims = {"+": 0, "-": 0, "*": 0, "/": 0}
        for _ in range(2000):
            # Shapes engineered toward exactness: small integers,
            # powers of two, and values sharing exponents.
            xh = float(rng.randint(-64, 64)) * math.ldexp(
                1.0, rng.randint(-30, 30))
            yh = float(rng.randint(-64, 64)) * math.ldexp(
                1.0, rng.randint(-30, 30))
            for op in claims:
                outcome = DD_KERNELS[op](xh, 0.0, yh, 0.0)
                if outcome is None:
                    continue
                zh, zl, exact = outcome
                if not exact:
                    continue
                claims[op] += 1
                x, y = Fraction(xh), Fraction(yh)
                truth = {"+": x + y, "-": x - y, "*": x * y,
                         "/": x / y if y else None}[op]
                if truth is not None:
                    assert frac(zh, zl) == truth, (op, xh, yh)
        # The sweep must actually exercise exact claims to mean much.
        assert all(count > 100 for count in claims.values()), claims


class TestFitsPrecision:
    def test_claimed_fits_round_trip_exactly(self):
        rng = random.Random(0xDD90)
        checked = 0
        for _ in range(500):
            hi, lo = random_dd(rng, -200, 200)
            for precision in (53, 64, 106, 144, 256):
                if not fits_precision(hi, lo, precision):
                    continue
                checked += 1
                value = DoubleDouble(hi, lo).to_bigfloat()
                rounded = value.round_to(precision)
                assert rounded.to_fraction() == value.to_fraction(), \
                    (hi, lo, precision)
        assert checked > 100

    def test_pure_double_fits_53(self):
        assert fits_precision(1.5, 0.0, 53)
        assert fits_precision(-0.0, 0.0, 53)

    def test_wide_pair_rejects_narrow_precision(self):
        assert not fits_precision(1.0, math.ldexp(1.0, -100), 64)


class TestDoubleDoubleValue:
    def test_to_bigfloat_is_exact(self):
        rng = random.Random(0xDDA0)
        for _ in range(200):
            hi, lo = random_dd(rng)
            value = DoubleDouble(hi, lo)
            assert value.to_fraction() == frac(hi, lo)
            # The promotion to BigFloat is value-exact: no rounding.
            assert value.to_bigfloat().to_fraction() == frac(hi, lo)

    def test_comparisons_match_fractions(self):
        rng = random.Random(0xDDB0)
        for _ in range(300):
            a = DoubleDouble(*random_dd(rng, -10, 10))
            b = DoubleDouble(*random_dd(rng, -10, 10))
            fa, fb = a.to_fraction(), b.to_fraction()
            assert (a < b) == (fa < fb)
            assert (a <= b) == (fa <= fb)
            assert (a == b) == (fa == fb)
            assert (a > b) == (fa > fb)

    def test_from_double_and_to_float(self):
        for value in (0.0, -0.0, 1.5, -1e308, 5e-324):
            dd = from_double(value)
            assert bits(dd.to_float()) == bits(value)

    def test_msb_exponent_matches_fraction_magnitude(self):
        rng = random.Random(0xDDC0)
        for _ in range(300):
            hi, lo = random_dd(rng, -50, 50)
            value = DoubleDouble(hi, lo)
            magnitude = abs(value.to_fraction())
            msb = value.msb_exponent
            assert Fraction(2) ** msb <= magnitude < Fraction(2) ** (msb + 1)
