"""The pluggable kernel substrates (:mod:`repro.bigfloat.backend`).

The contract under test: every substrate implements the same ⟦f⟧_R
surface; special values are routed through the shared helpers (so they
are bit-identical by construction); general paths are faithful at the
context precision; and the native backend degrades to the python
kernels wherever its provider cannot honour the request (no libraries,
unsupported rounding mode, failed self-check).
"""

import math
import random

import pytest

from repro.bigfloat import (
    ALL_OPERATIONS,
    BigFloat,
    Context,
    arith,
    available_substrates,
    get_backend,
    substrate_provider,
)
from repro.bigfloat import backend as backend_mod
from repro.bigfloat.functions import DOUBLE_HANDLERS, apply, arity
from repro.bigfloat.rounding import (
    ROUND_DOWN,
    ROUND_NEAREST_AWAY,
    ROUND_NEAREST_EVEN,
    ROUND_UP,
)

CONTEXT = Context(precision=200)
PYTHON = get_backend("python")
NATIVE = get_backend("native")


def ulp_distance_bound(ours: BigFloat, theirs: BigFloat, ulps: int) -> bool:
    """|ours - theirs| within ``ulps`` units in the last place of ours."""
    if ours.key() == theirs.key():
        return True
    if not (ours.is_finite() and theirs.is_finite()):
        return False
    if ours.is_zero() or theirs.is_zero():
        return False
    difference = arith.sub_exact(ours, theirs)
    if difference.is_zero():
        return True
    return (
        difference.msb_exponent
        <= ours.msb_exponent - CONTEXT.precision + ulps
    )


class TestRegistry:
    def test_available_substrates(self):
        assert available_substrates() == ["python", "native"]

    def test_unknown_substrate_rejected(self):
        with pytest.raises(KeyError):
            get_backend("mpfr")

    def test_backends_are_process_cached(self):
        assert get_backend("python") is PYTHON
        assert get_backend("native") is NATIVE

    def test_provider_reported(self):
        assert substrate_provider("python") == "python"
        assert substrate_provider("native") in ("gmpy2", "mpmath", "python")

    def test_native_resolves_when_a_library_is_importable(self):
        # _load_provider swallows provider failures by design (the
        # fallback contract), so without this assertion a regression
        # could silently turn the native substrate into a python alias
        # and every parity test would compare python against python.
        try:
            import mpmath  # noqa: F401
            has_library = True
        except ImportError:
            try:
                import gmpy2  # noqa: F401
                has_library = True
            except ImportError:
                has_library = False
        if not has_library:
            pytest.skip("no native library installed: fallback is correct")
        assert substrate_provider("native") in ("gmpy2", "mpmath")

    def test_python_backend_matches_module_apply(self):
        x = BigFloat.from_float(1.5)
        y = BigFloat.from_float(0.3)
        for op in ("+", "log", "pow"):
            args = [x, y][: arity(op)]
            assert PYTHON.apply(op, args, CONTEXT).key() == \
                apply(op, args, CONTEXT).key()

    def test_every_operation_dispatches(self):
        operands = [BigFloat.from_float(0.5), BigFloat.from_float(0.25),
                    BigFloat.from_float(0.75)]
        for op in sorted(ALL_OPERATIONS):
            args = operands[: arity(op)]
            ours = PYTHON.apply(op, args, CONTEXT)
            theirs = NATIVE.apply(op, args, CONTEXT)
            assert ulp_distance_bound(ours, theirs, 2), op

    def test_unknown_operation_raises_keyerror(self):
        for backend in (PYTHON, NATIVE):
            with pytest.raises(KeyError):
                backend.apply("frobnicate", [BigFloat.from_float(1.0)],
                              CONTEXT)
            with pytest.raises(KeyError):
                backend.handler("frobnicate")


class TestSpecialValueAgreement:
    """Specials route through shared helpers: keys must match exactly."""

    SPECIALS = [
        BigFloat.nan(), BigFloat.inf(0), BigFloat.inf(1),
        BigFloat.zero(0), BigFloat.zero(1),
        BigFloat.from_float(1.0), BigFloat.from_float(-1.0),
        BigFloat.from_float(0.5), BigFloat.from_float(-0.5),
        BigFloat.from_float(2.0), BigFloat.from_float(-2.0),
    ]

    def test_all_operations_agree_on_special_grid(self):
        for op in sorted(ALL_OPERATIONS):
            count = arity(op)
            grids = [self.SPECIALS] * count
            indices = [0] * count
            while True:
                args = [grid[i] for grid, i in zip(grids, indices)]
                try:
                    ours = PYTHON.apply(op, args, CONTEXT)
                    ours_error = None
                except (OverflowError, ValueError) as error:
                    ours, ours_error = None, type(error)
                try:
                    theirs = NATIVE.apply(op, args, CONTEXT)
                    theirs_error = None
                except (OverflowError, ValueError) as error:
                    theirs, theirs_error = None, type(error)
                assert ours_error == theirs_error, (op, args)
                if ours is not None:
                    assert ulp_distance_bound(ours, theirs, 2), (op, args)
                position = 0
                while position < count:
                    indices[position] += 1
                    if indices[position] < len(grids[position]):
                        break
                    indices[position] = 0
                    position += 1
                if position == count:
                    break

    def test_signed_zero_cancellation_under_native(self):
        x = BigFloat.from_float(1.5)
        for rounding, sign in ((ROUND_NEAREST_EVEN, 0), (ROUND_DOWN, 1),
                               (ROUND_UP, 0)):
            context = Context(precision=200, rounding=rounding)
            result = NATIVE.apply("-", [x, x], context)
            assert result.is_zero()
            assert result.sign == sign, rounding


class TestFaithfulGeneralPaths:
    def test_random_unary_grid(self):
        random.seed(20260729)
        unary = ["exp", "expm1", "exp2", "log", "log1p", "log2", "log10",
                 "sin", "cos", "tan", "asin", "acos", "atan",
                 "sinh", "cosh", "tanh", "asinh", "acosh", "atanh",
                 "cbrt", "sqrt"]
        values = (
            [random.uniform(-0.999, 0.999) for __ in range(25)]
            + [random.uniform(1.001, 60.0) for __ in range(25)]
            + [-1.5, -7.25, 1e-5, -1e-5, 123.456]
        )
        for value in values:
            x = BigFloat.from_float(value)
            for op in unary:
                ours = PYTHON.apply(op, [x], CONTEXT)
                theirs = NATIVE.apply(op, [x], CONTEXT)
                if ours.is_nan():
                    assert theirs.is_nan(), (op, value)
                else:
                    assert ulp_distance_bound(ours, theirs, 2), (op, value)

    def test_random_binary_grid(self):
        random.seed(4)
        for __ in range(40):
            x = BigFloat.from_float(random.uniform(-30, 30))
            y = BigFloat.from_float(random.uniform(-30, 30))
            for op in ("+", "-", "*", "/", "pow", "hypot", "atan2",
                       "fmod", "remainder", "fmin", "fmax", "fdim",
                       "copysign"):
                ours = PYTHON.apply(op, [x, y], CONTEXT)
                theirs = NATIVE.apply(op, [x, y], CONTEXT)
                if ours.is_nan():
                    assert theirs.is_nan(), op
                elif op in ("pow", "atan2"):
                    # Faithful native kernels: last-ulp slack allowed.
                    assert ulp_distance_bound(ours, theirs, 2), op
                else:
                    # Correctly rounded (or python-served) operations
                    # must agree exactly.
                    assert ours.key() == theirs.key(), (op, x, y)

    def test_basic_arithmetic_is_bit_identical(self):
        random.seed(9)
        for __ in range(50):
            x = BigFloat.from_float(random.uniform(-1e8, 1e8))
            y = BigFloat.from_float(random.uniform(-1e-8, 1e8))
            z = BigFloat.from_float(random.uniform(-10, 10))
            for op, args in (("+", [x, y]), ("-", [x, y]), ("*", [x, y]),
                             ("/", [x, y]), ("fma", [x, y, z])):
                assert PYTHON.apply(op, args, CONTEXT).key() == \
                    NATIVE.apply(op, args, CONTEXT).key(), op


class TestRoundingModeFallback:
    def test_nearest_away_falls_back_to_python(self):
        # The mpmath provider cannot honour RNA; the native wrapper
        # must serve the python kernel's exact result.
        context = Context(precision=120, rounding=ROUND_NEAREST_AWAY)
        x = BigFloat.from_float(17.25)
        assert NATIVE.apply("log", [x], context).key() == \
            PYTHON.apply("log", [x], context).key()

    def test_directed_rounding_brackets_nearest(self):
        x = BigFloat.from_float(17.25)
        down = NATIVE.apply(
            "log", [x], Context(precision=120, rounding=ROUND_DOWN)
        )
        up = NATIVE.apply(
            "log", [x], Context(precision=120, rounding=ROUND_UP)
        )
        nearest = NATIVE.apply(
            "log", [x], Context(precision=120, rounding=ROUND_NEAREST_EVEN)
        )
        assert down <= nearest <= up


class TestDoubleHandlers:
    def test_python_table_is_module_table(self):
        assert PYTHON.double_handlers is DOUBLE_HANDLERS

    def test_native_fma_matches_python_emulation(self):
        random.seed(5)
        native_fma = NATIVE.double_handlers["fma"]
        python_fma = DOUBLE_HANDLERS["fma"]
        triples = [
            (1.5, 3.25, -4.875), (1e308, 2.0, -1e308),
            (3.0, 1e-320, 7e-321), (1.1, 2.2, 3.3),
            (0.0, 5.0, -0.0), (math.inf, 1.0, -math.inf),
            (math.nan, 1.0, 2.0),
        ] + [
            (random.uniform(-1e3, 1e3), random.uniform(-1e3, 1e3),
             random.uniform(-1e3, 1e3))
            for __ in range(60)
        ]
        for a, b, c in triples:
            ours = python_fma(a, b, c)
            theirs = native_fma(a, b, c)
            if math.isnan(ours):
                assert math.isnan(theirs), (a, b, c)
            else:
                assert ours == theirs, (a, b, c)
                assert math.copysign(1.0, ours) == \
                    math.copysign(1.0, theirs), (a, b, c)


class TestSelfCheck:
    def test_mpmath_provider_passes(self):
        mpmath = pytest.importorskip(
            "mpmath", reason="mpmath-less environments skip the provider"
        )
        del mpmath
        provider = backend_mod._MpmathProvider()
        backend_mod._run_self_check(provider)  # must not raise

    def test_broken_provider_is_rejected(self):
        mpmath = pytest.importorskip("mpmath")
        del mpmath
        provider = backend_mod._MpmathProvider()
        wrong = BigFloat.from_float(3.0)
        provider.kernels["log"] = lambda x, context: wrong
        with pytest.raises(AssertionError):
            backend_mod._run_self_check(provider)

    def test_native_backend_survives_missing_providers(self, monkeypatch):
        monkeypatch.setattr(
            backend_mod, "_load_provider", lambda: None
        )
        backend = backend_mod.NativeBackend()
        assert backend.provider == "python"
        x = BigFloat.from_float(2.5)
        assert backend.apply("log", [x], CONTEXT).key() == \
            PYTHON.apply("log", [x], CONTEXT).key()


class TestCbrtRegression:
    """PR 4's substrate self-check surfaced a latent seed bug: cbrt
    mis-aligned exponents not divisible by 3 (cbrt(2) came out as
    2**(-1/3) times the true value)."""

    def test_cbrt_exponent_residues(self):
        for value in (2.0, 4.0, 8.0, 0.5, 0.25, 0.125, 5.5, 11.0, 22.0,
                      0.7324081429644442, -2.0, -4.0, 1e-3, 1e3):
            result = arith.cbrt(BigFloat.from_float(value), CONTEXT)
            cube = result.to_fraction() ** 3
            relative = abs(cube - int(0)) and float(
                abs(cube - BigFloat.from_float(value).to_fraction())
                / abs(cube)
            )
            assert relative < 2.0 ** (-(CONTEXT.precision - 5)), value

    def test_cbrt_matches_math_cbrt(self):
        random.seed(11)
        for __ in range(200):
            value = random.uniform(-100.0, 100.0)
            ours = float(arith.cbrt(BigFloat.from_float(value), CONTEXT)
                         .to_float())
            expected = math.copysign(abs(value) ** (1.0 / 3.0), value)
            assert ours == pytest.approx(expected, rel=1e-14), value
