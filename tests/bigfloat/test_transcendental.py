"""Differential tests for the transcendental kernels.

Two oracles:

* Python's libm at double precision — our results rounded to double must
  land within 1 ulp of libm (libm itself is only faithful, so bit-exact
  agreement is not required), except where we are provably more accurate.
* mpmath at high precision — relative agreement to within a few ulps of
  the target precision.
"""

import math

import pytest

mpmath = pytest.importorskip(
    "mpmath", reason="mpmath is the transcendental oracle"
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat, Context, ONE, apply, apply_double
from repro.bigfloat import constants, transcendental
from repro.ieee import ulps_between

CTX = Context(precision=160)
HIGH = Context(precision=400)


def bf(x: float) -> BigFloat:
    return BigFloat.from_float(x)


def close_to_libm(ours: float, libm: float, ulps: int = 1) -> bool:
    if math.isnan(libm):
        return math.isnan(ours)
    if math.isinf(libm):
        return ours == libm or abs(ours) > 1e308
    if math.isinf(ours) or math.isnan(ours):
        return False
    return ulps_between(ours, libm) <= ulps


def to_mpf(x: BigFloat):
    if x.is_nan():
        return mpmath.nan
    if x.is_inf():
        return -mpmath.inf if x.sign else mpmath.inf
    sign = -1 if x.sign else 1
    return mpmath.mpf(sign * x.man) * mpmath.mpf(2) ** x.exp


def assert_matches_mpmath(name, mp_fun, args, precision=400, slack_bits=8):
    ours = apply(name, [bf(a) for a in args], Context(precision=precision))
    with mpmath.workprec(precision + 40):
        expected = mp_fun(*[mpmath.mpf(a) for a in args])
        if ours.is_finite() and not ours.is_zero():
            error = abs(to_mpf(ours) - expected)
            bound = abs(expected) * mpmath.mpf(2) ** -(precision - slack_bits)
            assert error <= bound, f"{name}{args}: {ours} vs {expected}"
        elif ours.is_zero():
            assert expected == 0
        elif ours.is_inf():
            assert mpmath.isinf(expected) or abs(expected) > mpmath.mpf(2) ** 100000
        else:
            assert mpmath.isnan(expected)


normal_args = st.floats(min_value=-700.0, max_value=700.0, allow_nan=False)
positive_args = st.floats(min_value=1e-300, max_value=1e300, allow_nan=False)
unit_args = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
wide_args = st.floats(min_value=-1e15, max_value=1e15, allow_nan=False)


class TestConstants:
    def test_pi_matches_mpmath(self):
        ctx = Context(precision=600)
        with mpmath.workprec(640):
            error = abs(to_mpf(constants.pi(ctx)) - mpmath.pi)
            assert error < mpmath.mpf(2) ** -590

    def test_ln2_matches_mpmath(self):
        ctx = Context(precision=600)
        with mpmath.workprec(640):
            error = abs(to_mpf(constants.ln2(ctx)) - mpmath.ln(2))
            assert error < mpmath.mpf(2) ** -590

    def test_e_matches_mpmath(self):
        ctx = Context(precision=300)
        with mpmath.workprec(340):
            error = abs(to_mpf(constants.euler_e(ctx)) - mpmath.e)
            assert error < mpmath.mpf(2) ** -290

    def test_pi_over_2(self):
        ctx = Context(precision=100)
        assert constants.pi_over_2(ctx).to_float() == math.pi / 2


class TestAgainstLibm:
    """Double-rounded results agree with libm to <= 1 ulp."""

    @given(normal_args)
    @settings(max_examples=120)
    def test_exp(self, x):
        assert close_to_libm(apply("exp", [bf(x)], CTX).to_float(), math.exp(x))

    @given(positive_args)
    @settings(max_examples=120)
    def test_log(self, x):
        assert close_to_libm(apply("log", [bf(x)], CTX).to_float(), math.log(x))

    @given(wide_args)
    @settings(max_examples=120)
    def test_sin(self, x):
        assert close_to_libm(apply("sin", [bf(x)], CTX).to_float(), math.sin(x))

    @given(wide_args)
    @settings(max_examples=120)
    def test_cos(self, x):
        assert close_to_libm(apply("cos", [bf(x)], CTX).to_float(), math.cos(x))

    @given(wide_args)
    @settings(max_examples=100)
    def test_tan(self, x):
        assert close_to_libm(apply("tan", [bf(x)], CTX).to_float(), math.tan(x), ulps=2)

    @given(st.floats(min_value=-1e12, max_value=1e12, allow_nan=False))
    @settings(max_examples=120)
    def test_atan(self, x):
        assert close_to_libm(apply("atan", [bf(x)], CTX).to_float(), math.atan(x))

    @given(unit_args)
    @settings(max_examples=100)
    def test_asin(self, x):
        assert close_to_libm(apply("asin", [bf(x)], CTX).to_float(), math.asin(x))

    @given(unit_args)
    @settings(max_examples=100)
    def test_acos(self, x):
        assert close_to_libm(apply("acos", [bf(x)], CTX).to_float(), math.acos(x))

    @given(wide_args, wide_args)
    @settings(max_examples=150)
    def test_atan2(self, y, x):
        ours = apply("atan2", [bf(y), bf(x)], CTX).to_float()
        assert close_to_libm(ours, math.atan2(y, x))

    @given(st.floats(min_value=-300, max_value=300, allow_nan=False))
    @settings(max_examples=100)
    def test_sinh(self, x):
        assert close_to_libm(apply("sinh", [bf(x)], CTX).to_float(), math.sinh(x))

    @given(st.floats(min_value=-300, max_value=300, allow_nan=False))
    @settings(max_examples=100)
    def test_cosh(self, x):
        assert close_to_libm(apply("cosh", [bf(x)], CTX).to_float(), math.cosh(x))

    @given(st.floats(min_value=-50, max_value=50, allow_nan=False))
    @settings(max_examples=100)
    def test_tanh(self, x):
        # glibc's tanh itself carries up to 2 ulp of error (e.g. at
        # x = 0.4921875 our result matches the correctly-rounded value
        # while libm is 2 ulps away), so compare at that tolerance.
        assert close_to_libm(
            apply("tanh", [bf(x)], CTX).to_float(), math.tanh(x), ulps=2
        )

    @given(st.floats(min_value=-1e8, max_value=1e8, allow_nan=False))
    @settings(max_examples=100)
    def test_expm1(self, x):
        if x > 700:
            return
        assert close_to_libm(apply("expm1", [bf(x)], CTX).to_float(), math.expm1(x))

    @given(st.floats(min_value=-0.999999, max_value=1e15, allow_nan=False))
    @settings(max_examples=100)
    def test_log1p(self, x):
        assert close_to_libm(apply("log1p", [bf(x)], CTX).to_float(), math.log1p(x))

    @given(positive_args)
    @settings(max_examples=100)
    def test_log2(self, x):
        assert close_to_libm(apply("log2", [bf(x)], CTX).to_float(), math.log2(x))

    @given(positive_args)
    @settings(max_examples=100)
    def test_log10(self, x):
        assert close_to_libm(apply("log10", [bf(x)], CTX).to_float(), math.log10(x))

    @given(wide_args)
    @settings(max_examples=100)
    def test_asinh(self, x):
        assert close_to_libm(apply("asinh", [bf(x)], CTX).to_float(), math.asinh(x))

    @given(st.floats(min_value=1.0, max_value=1e15, allow_nan=False))
    @settings(max_examples=100)
    def test_acosh(self, x):
        assert close_to_libm(apply("acosh", [bf(x)], CTX).to_float(), math.acosh(x))

    @given(st.floats(min_value=-0.999999, max_value=0.999999, allow_nan=False))
    @settings(max_examples=100)
    def test_atanh(self, x):
        # glibc's atanh carries up to 2 ulp of error (e.g. at
        # x=0.1202539569579767 it is 2 ulps from the correctly rounded
        # value, verified against mpmath; ours is exact there).
        assert close_to_libm(
            apply("atanh", [bf(x)], CTX).to_float(), math.atanh(x), ulps=2
        )

    @given(
        st.floats(min_value=0.001, max_value=1000.0),
        st.floats(min_value=-40.0, max_value=40.0),
    )
    @settings(max_examples=120)
    def test_pow(self, x, y):
        expected = math.pow(x, y)
        if math.isinf(expected) or expected == 0.0:
            return
        assert close_to_libm(apply("pow", [bf(x), bf(y)], CTX).to_float(), expected)


class TestSpecialValues:
    def test_exp_specials(self):
        assert apply("exp", [BigFloat.inf(1)], CTX).to_float() == 0.0
        assert apply("exp", [BigFloat.inf(0)], CTX).to_float() == math.inf
        assert apply("exp", [BigFloat.zero(0)], CTX) == ONE
        assert apply("exp", [BigFloat.nan()], CTX).is_nan()

    def test_exp_overflow_saturation(self):
        huge = BigFloat(0, 1, 60)
        assert apply("exp", [huge], CTX).to_float() == math.inf
        assert apply("exp", [huge.neg()], CTX).to_float() == 0.0

    def test_log_specials(self):
        assert apply("log", [BigFloat.zero(0)], CTX).to_float() == -math.inf
        assert apply("log", [BigFloat.zero(1)], CTX).to_float() == -math.inf
        assert apply("log", [bf(-1.0)], CTX).is_nan()
        assert apply("log", [BigFloat.inf(0)], CTX).to_float() == math.inf

    def test_trig_of_inf_is_nan(self):
        for name in ("sin", "cos", "tan"):
            assert apply(name, [BigFloat.inf(0)], CTX).is_nan()

    def test_atan_of_inf(self):
        assert apply("atan", [BigFloat.inf(0)], CTX).to_float() == math.pi / 2
        assert apply("atan", [BigFloat.inf(1)], CTX).to_float() == -math.pi / 2

    def test_atan2_signed_zero_cases(self):
        cases = [
            (0.0, 1.0), (-0.0, 1.0), (0.0, -1.0), (-0.0, -1.0),
            (0.0, 0.0), (-0.0, 0.0), (0.0, -0.0), (-0.0, -0.0),
            (1.0, 0.0), (-1.0, 0.0), (1.0, -0.0), (-1.0, -0.0),
        ]
        for y, x in cases:
            ours = apply("atan2", [bf(y), bf(x)], CTX).to_float()
            expected = math.atan2(y, x)
            assert close_to_libm(ours, expected), (y, x, ours, expected)
            assert math.copysign(1.0, ours) == math.copysign(1.0, expected)

    def test_atan2_infinity_cases(self):
        for y in (math.inf, -math.inf, 1.0, -1.0):
            for x in (math.inf, -math.inf, 1.0, -1.0):
                ours = apply("atan2", [bf(y), bf(x)], CTX).to_float()
                assert close_to_libm(ours, math.atan2(y, x)), (y, x)

    def test_asin_domain(self):
        assert apply("asin", [bf(1.5)], CTX).is_nan()
        assert apply("asin", [bf(1.0)], CTX).to_float() == math.pi / 2

    def test_acos_endpoints(self):
        assert apply("acos", [bf(1.0)], CTX).to_float() == 0.0
        assert apply("acos", [bf(-1.0)], CTX).to_float() == math.pi

    def test_atanh_poles(self):
        assert apply("atanh", [bf(1.0)], CTX).to_float() == math.inf
        assert apply("atanh", [bf(-1.0)], CTX).to_float() == -math.inf
        assert apply("atanh", [bf(2.0)], CTX).is_nan()

    def test_acosh_domain(self):
        assert apply("acosh", [bf(0.5)], CTX).is_nan()
        assert apply("acosh", [bf(1.0)], CTX).to_float() == 0.0

    def test_pow_special_table(self):
        assert apply("pow", [BigFloat.nan(), BigFloat.zero(0)], CTX) == ONE
        assert apply("pow", [ONE, BigFloat.nan()], CTX) == ONE
        assert apply("pow", [bf(-2.0), bf(0.5)], CTX).is_nan()
        assert apply("pow", [bf(-2.0), bf(3.0)], CTX).to_float() == -8.0
        assert apply("pow", [bf(-2.0), bf(2.0)], CTX).to_float() == 4.0
        assert apply("pow", [BigFloat.zero(1), bf(3.0)], CTX).to_float() == -0.0
        assert apply("pow", [BigFloat.zero(0), bf(-2.0)], CTX).to_float() == math.inf
        assert apply("pow", [bf(-1.0), BigFloat.inf(0)], CTX) == ONE
        assert apply("pow", [bf(0.5), BigFloat.inf(0)], CTX).to_float() == 0.0
        assert apply("pow", [bf(2.0), BigFloat.inf(1)], CTX).to_float() == 0.0

    def test_tanh_saturates(self):
        result = apply("tanh", [bf(2000.0)], Context(precision=64))
        assert result == ONE

    def test_tiny_arguments_return_argument(self):
        tiny = BigFloat(0, 1, -800)
        for name in ("sin", "tan", "asin", "atan", "sinh", "tanh", "expm1", "log1p"):
            assert apply(name, [tiny], CTX) == tiny, name
        assert apply("cos", [tiny], CTX) == ONE


class TestHighPrecision:
    """Spot checks at 400 bits against mpmath."""

    CASES = [
        ("exp", mpmath.exp, (0.5,)), ("exp", mpmath.exp, (-20.25,)),
        ("exp", mpmath.exp, (123.456,)),
        ("log", mpmath.log, (1.0000001,)), ("log", mpmath.log, (1e-30,)),
        ("log", mpmath.log, (987654.321,)),
        ("sin", mpmath.sin, (1.0,)), ("sin", mpmath.sin, (1e8,)),
        ("cos", mpmath.cos, (2.5,)), ("cos", mpmath.cos, (-1e8,)),
        ("tan", mpmath.tan, (0.3,)),
        ("atan", mpmath.atan, (0.9,)), ("atan", mpmath.atan, (1e-30,)),
        ("atan", mpmath.atan, (1e30,)),
        ("asin", mpmath.asin, (0.99,)),
        ("acos", mpmath.acos, (0.99,)),
        ("atan2", mpmath.atan2, (1.5, -2.5)),
        ("sinh", mpmath.sinh, (1e-5,)), ("sinh", mpmath.sinh, (10.0,)),
        ("cosh", mpmath.cosh, (3.0,)),
        ("tanh", mpmath.tanh, (0.1,)),
        ("expm1", mpmath.expm1, (1e-40,)), ("expm1", mpmath.expm1, (2.0,)),
        ("log1p", lambda x: mpmath.log(1 + x), (1e-40,)),
        ("asinh", mpmath.asinh, (0.5,)),
        ("acosh", mpmath.acosh, (1.5,)),
        ("atanh", mpmath.atanh, (0.5,)),
        ("pow", mpmath.power, (3.7, 11.3)),
        ("log2", lambda x: mpmath.log(x, 2), (7.0,)),
        ("log10", mpmath.log10, (7.0,)),
        ("exp2", lambda x: mpmath.power(2, x), (0.7,)),
        ("cbrt", mpmath.cbrt, (17.0,)),
        ("hypot", mpmath.hypot, (3.5, -4.5)),
    ]

    @pytest.mark.parametrize("name,mp_fun,args", CASES)
    def test_matches_mpmath(self, name, mp_fun, args):
        assert_matches_mpmath(name, mp_fun, args)

    def test_sin_near_pi_ziv_retry(self):
        # The double closest to pi has a sin of about 1.22e-16; catching
        # it needs the reduction to re-run wider (Ziv loop).
        x = bf(math.pi)
        ours = transcendental.sin(x, Context(precision=200))
        with mpmath.workprec(260):
            expected = mpmath.sin(mpmath.mpf(math.pi))
            error = abs(to_mpf(ours) - expected)
            assert error < abs(expected) * mpmath.mpf(2) ** -190

    def test_pow_large_integer_exponent(self):
        ours = apply("pow", [bf(1.0000000001), bf(1000000.0)], HIGH)
        with mpmath.workprec(440):
            expected = mpmath.power(mpmath.mpf(1.0000000001), 1000000)
            error = abs(to_mpf(ours) - expected)
            assert error < abs(expected) * mpmath.mpf(2) ** -390


class TestApplyDouble:
    """apply_double implements the hardware ⟦f⟧_F semantics."""

    def test_div_by_zero(self):
        assert apply_double("/", [1.0, 0.0]) == math.inf
        assert apply_double("/", [-1.0, 0.0]) == -math.inf
        assert apply_double("/", [1.0, -0.0]) == -math.inf
        assert math.isnan(apply_double("/", [0.0, 0.0]))

    def test_domain_errors_become_nan(self):
        assert math.isnan(apply_double("sqrt", [-1.0]))
        assert math.isnan(apply_double("log", [-1.0]))
        assert math.isnan(apply_double("asin", [2.0]))

    def test_log_zero_pole(self):
        assert apply_double("log", [0.0]) == -math.inf
        assert apply_double("log1p", [-1.0]) == -math.inf
        assert apply_double("atanh", [1.0]) == math.inf

    def test_overflow_becomes_inf(self):
        assert apply_double("exp", [1000.0]) == math.inf

    @given(st.floats(allow_nan=False, allow_infinity=False), st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=100)
    def test_basic_ops_match_hardware(self, x, y):
        assert apply_double("+", [x, y]) == x + y or math.isnan(x + y)
        assert apply_double("*", [x, y]) == x * y or math.isnan(x * y)

    @given(st.floats(-1e100, 1e100), st.floats(-1e100, 1e100), st.floats(-1e100, 1e100))
    @settings(max_examples=60)
    def test_fma_is_single_rounded(self, x, y, z):
        from fractions import Fraction

        result = apply_double("fma", [x, y, z])
        exact = Fraction(x) * Fraction(y) + Fraction(z)
        if exact == 0:
            assert result == 0.0
        elif abs(exact) < Fraction(2) ** -1021 or abs(exact) > Fraction(2) ** 1020:
            pass  # sub/overflow edges exercised elsewhere
        else:
            assert result == BigFloat.from_fraction(exact, 53).to_float()

    def test_unknown_operation_rejected(self):
        with pytest.raises(KeyError):
            apply_double("frobnicate", [1.0])
        with pytest.raises(KeyError):
            apply("frobnicate", [ONE], CTX)

    def test_arity(self):
        from repro.bigfloat import arity

        assert arity("sin") == 1
        assert arity("+") == 2
        assert arity("fma") == 3
        with pytest.raises(KeyError):
            arity("nope")
