"""Integrity checks on the 86-benchmark corpus."""

import math

import pytest

from repro.bigfloat import BigFloat, Context
from repro.fpcore import (
    corpus_by_name,
    eval_double,
    eval_real,
    families,
    free_variables,
    load_corpus,
)
from repro.fpcore.ast import Op

CORPUS = load_corpus()


class TestCorpusShape:
    def test_exactly_86_benchmarks(self):
        # Section 8.1: "of 86 benchmarks".
        assert len(CORPUS) == 86

    def test_names_unique_and_present(self):
        names = [core.name for core in CORPUS]
        assert all(names)
        assert len(set(names)) == len(names)

    def test_by_name_index(self):
        index = corpus_by_name()
        assert len(index) == 86
        assert "paper-csqrt-imag" in index
        assert "quadp" in index
        assert "kepler2" in index

    def test_every_family_nonempty(self):
        grouped = families()
        for family in ("paper", "hamming", "quadratic", "fptaylor", "misc", "loops"):
            assert grouped[family], family

    def test_every_benchmark_has_precondition(self):
        for core in CORPUS:
            assert core.pre is not None, core.name

    def test_arguments_cover_free_variables(self):
        for core in CORPUS:
            free = set(free_variables(core.body))
            assert free <= set(core.arguments), core.name

    def test_preconditions_only_use_arguments(self):
        for core in CORPUS:
            free = set(free_variables(core.pre))
            assert free <= set(core.arguments), core.name


def _range_box(core):
    """Extract {var: (lo, hi)} from the :pre conjunction."""
    box = {}

    def visit(expr):
        if isinstance(expr, Op) and expr.op == "and":
            for arg in expr.args:
                visit(arg)
        elif isinstance(expr, Op) and expr.op == "<=" and len(expr.args) == 3:
            low, var, high = expr.args
            box[var.name] = (float(low.value), float(high.value))

    visit(core.pre)
    return box


class TestCorpusRanges:
    def test_every_argument_has_a_range(self):
        for core in CORPUS:
            box = _range_box(core)
            for argument in core.arguments:
                assert argument in box, f"{core.name}: no range for {argument}"
            for low, high in box.values():
                assert low < high, core.name

    @pytest.mark.parametrize("core", CORPUS, ids=lambda c: c.name)
    def test_midpoint_evaluates(self, core):
        """Every benchmark runs in both semantics at its box midpoint."""
        box = _range_box(core)
        env = {}
        for argument in core.arguments:
            low, high = box[argument]
            middle = low + (high - low) / 2
            env[argument] = middle
        double_result = eval_double(core.body, env)
        assert isinstance(double_result, float)
        real_env = {k: BigFloat.from_float(v) for k, v in env.items()}
        real_result = eval_real(core.body, real_env, Context(precision=160))
        assert isinstance(real_result, BigFloat)
        # NaNs may legitimately appear (e.g. Heron on an invalid
        # triangle); otherwise the two semantics should both be numeric.
        if not math.isnan(double_result):
            assert not real_result.is_nan() or core.name in ("heron-area",)
