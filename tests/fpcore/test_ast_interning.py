"""Hash-consing and cached hashing of the FPCore AST.

Anti-unification compares and hashes the same few names and literals
millions of times; :class:`Var` instances and :func:`num` literals are
interned, and ``Num``/``Var``/``Op`` cache their hashes.  Interning
must be invisible: equality, hashing, and rendering are unchanged.
"""

from fractions import Fraction

from repro.fpcore.ast import Num, Op, Var, num


class TestVarInterning:
    def test_same_name_same_instance(self):
        assert Var("x") is Var("x")
        assert Var("v17") is Var("v17")

    def test_different_names_differ(self):
        assert Var("x") is not Var("y")
        assert Var("x") != Var("y")

    def test_equality_and_hash_unchanged(self):
        assert Var("x") == Var("x")
        assert hash(Var("x")) == hash(Var("x"))
        assert str(Var("x")) == "x"

    def test_usable_as_dict_key(self):
        table = {Var("a"): 1, Var("b"): 2}
        assert table[Var("a")] == 1
        assert len({Var("a"), Var("a"), Var("b")}) == 2

    def test_pickle_and_deepcopy_preserve_names(self):
        import copy
        import pickle

        pair = (Var("x"), Var("y"))
        loaded = pickle.loads(pickle.dumps(pair))
        assert [v.name for v in loaded] == ["x", "y"]
        assert loaded[0] is Var("x")  # round-trip re-enters the interner
        copied = copy.deepcopy((Var("p"), Var("q")))
        assert [v.name for v in copied] == ["p", "q"]


class TestNumInterning:
    def test_same_float_same_instance(self):
        assert num(0.5) is num(0.5)
        assert num(3) is num(3)
        assert num(Fraction(1, 3)) is num(Fraction(1, 3))

    def test_spellings_keep_distinct_rendering(self):
        # float 0.5 and Fraction(1, 2) are equal values with different
        # preferred renderings; interning must not conflate them.
        assert num(0.5) == num(Fraction(1, 2))
        assert str(num(0.5)) == "0.5"
        assert str(num(Fraction(1, 2))) == "1/2"

    def test_nan_never_cached(self):
        assert num(float("nan")).text == "NAN"
        assert num(float("nan")).text == "NAN"

    def test_as_float_matches_value(self):
        literal = num(1.1)
        assert literal.as_float() == 1.1
        assert literal.as_float() == float(literal.value)
        # Direct construction (parser path) works too.
        assert Num(Fraction(7, 4)).as_float() == 1.75


class TestCachedHashing:
    def test_num_hash_is_value_only(self):
        # Same dataclass formula: text is compare=False.
        a = Num(Fraction(1), text="1")
        b = Num(Fraction(1), text="1.0")
        assert a == b
        assert hash(a) == hash(b)

    def test_op_hash_equals_equal_op(self):
        left = Op("+", (Var("x"), num(1.0)))
        right = Op("+", (Var("x"), num(1.0)))
        assert left == right
        assert hash(left) == hash(right)
        assert len({left, right}) == 1

    def test_hash_stable_across_calls(self):
        expr = Op("*", (Var("x"), Op("+", (Var("y"), num(2.0)))))
        assert hash(expr) == hash(expr)

    def test_unequal_ops_distinct(self):
        assert Op("+", (Var("x"),)) != Op("-", (Var("x"),))
