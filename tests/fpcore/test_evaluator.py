"""Tests for FPCore evaluation in doubles and reals."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat, Context
from repro.fpcore import (
    EvaluationError,
    eval_double,
    eval_real,
    expression_depth,
    expression_size,
    free_variables,
    parse_expr,
    substitute,
)
from repro.fpcore.ast import Var, num

CTX = Context(precision=160)


def ed(source, **env):
    return eval_double(parse_expr(source), env)


def er(source, **env):
    real_env = {k: BigFloat.from_float(v) for k, v in env.items()}
    return eval_real(parse_expr(source), real_env, CTX)


class TestDoubleEvaluation:
    def test_arithmetic(self):
        assert ed("(+ (* 2 3) 1)") == 7.0

    def test_variables(self):
        assert ed("(- x y)", x=10.0, y=4.0) == 6.0

    def test_unbound_variable(self):
        with pytest.raises(EvaluationError):
            ed("(+ x 1)")

    def test_unknown_operator(self):
        with pytest.raises(EvaluationError):
            ed("(frobnicate 1)")

    def test_literals_round_to_double(self):
        assert ed("0.1") == 0.1

    def test_constants(self):
        assert ed("PI") == math.pi
        assert ed("E") == math.e
        assert math.isnan(ed("NAN"))
        assert ed("INFINITY") == math.inf

    def test_if(self):
        assert ed("(if (< x 0) (- x) x)", x=-3.0) == 3.0
        assert ed("(if (< x 0) (- x) x)", x=3.0) == 3.0

    def test_let_parallel(self):
        # Parallel let: b sees the outer x, not the new a.
        assert ed("(let ([a 10] [b (+ a 1)]) b)", a=1.0) == 2.0

    def test_let_sequential(self):
        assert ed("(let* ([a 10] [b (+ a 1)]) b)") == 11.0

    def test_while(self):
        # Sequential while*: acc's update sees the already-incremented i,
        # so this sums 1 + 2 + 3 + 4 + 5.
        assert ed("(while* (< i 5) ([i 0 (+ i 1)] [acc 0 (+ acc i)]) acc)") == 15.0

    def test_while_parallel_semantics(self):
        # Parallel while updates use the *old* values of all variables.
        result = ed("(while (< i 3) ([i 0 (+ i 1)] [acc 0 (+ acc i)]) acc)")
        assert result == 0.0 + 0.0 + 1.0 + 2.0

    def test_while_cap(self):
        with pytest.raises(EvaluationError):
            ed("(while (< i 1) ([i 0 i]) i)")

    def test_comparison_chain(self):
        assert ed("(< 1 2 3)") is True
        assert ed("(< 1 3 2)") is False
        assert ed("(!= 1 2 3)") is True
        assert ed("(!= 1 2 1)") is False

    def test_boolean_ops(self):
        assert ed("(and (< 1 2) (> 3 2))") is True
        assert ed("(or (< 2 1) FALSE)") is False
        assert ed("(not FALSE)") is True

    def test_classification(self):
        assert ed("(isnan NAN)") is True
        assert ed("(isinf INFINITY)") is True
        assert ed("(isfinite 1)") is True
        assert ed("(signbit -1)") is True
        assert ed("(isnormal 1)") is True

    def test_division_by_zero(self):
        assert ed("(/ 1 0)") == math.inf
        assert math.isnan(ed("(/ 0 0)"))


class TestRealEvaluation:
    def test_literals_are_exact(self):
        # In the reals, 0.1 is 1/10: (0.1 * 10) - 1 == 0 exactly.
        result = er("(- (* 0.1 10) 1)")
        assert result.is_zero()

    def test_cancellation_visible(self):
        # (x + 1) - x == 1 in the reals, even at x = 1e16.
        result = er("(- (+ x 1) x)", x=1e16)
        assert result.to_float() == 1.0

    def test_constants(self):
        assert er("PI").to_float() == math.pi
        assert er("LN2").to_float() == math.log(2)
        assert er("SQRT2").to_float() == math.sqrt(2)
        assert er("LOG2E").to_float() == math.log2(math.e)
        assert er("PI_4").to_float() == math.pi / 4

    def test_if_uses_real_comparison(self):
        # At 1e16, x + 1 == x in doubles but not in the reals.
        source = "(if (== (+ x 1) x) 1 0)"
        assert ed(source, x=1e16) == 1.0
        assert er(source, x=1e16).to_float() == 0.0

    def test_while_real(self):
        result = er("(while* (< i 3) ([i 0 (+ i 1)] [acc 0 (+ acc 0.1)]) acc)")
        # The literal 0.1 rounds to the 160-bit context, so the sum is
        # 3/10 only to within the context precision — far beyond double.
        error = abs(result.to_fraction() - Fraction(3, 10))
        assert error < Fraction(1, 2 ** 150)

    def test_classification_real(self):
        assert er("(isnan (sqrt -1))") is True
        assert er("(isinf (/ 1 0))") is True
        assert er("(signbit -0.5)") is True


class TestAstUtilities:
    def test_free_variables_order(self):
        expr = parse_expr("(+ (* y x) (- y z))")
        assert free_variables(expr) == ("y", "x", "z")

    def test_let_binds(self):
        expr = parse_expr("(let ([a x]) (+ a b))")
        assert free_variables(expr) == ("x", "b")

    def test_let_star_shadowing(self):
        expr = parse_expr("(let* ([a 1] [b a]) b)")
        assert free_variables(expr) == ()

    def test_while_binds(self):
        expr = parse_expr("(while (< i n) ([i 0 (+ i s)]) i)")
        assert free_variables(expr) == ("n", "s")

    def test_expression_size(self):
        assert expression_size(parse_expr("(+ x (* y z))")) == 2
        assert expression_size(parse_expr("x")) == 0

    def test_expression_depth(self):
        # neg counts as an operator node: + -> * -> neg -> z.
        assert expression_depth(parse_expr("(+ x (* y (- z)))")) == 4

    def test_substitute(self):
        expr = parse_expr("(+ x y)")
        result = substitute(expr, {"x": parse_expr("(* a a)")})
        assert result == parse_expr("(+ (* a a) y)")

    def test_substitute_respects_let_shadowing(self):
        expr = parse_expr("(let ([x 1]) (+ x y))")
        result = substitute(expr, {"x": Var("z"), "y": Var("w")})
        assert result == parse_expr("(let ([x 1]) (+ x w))")


class TestDoubleRealAgreement:
    """On well-conditioned expressions the two semantics agree closely."""

    SOURCES = [
        "(+ (* x x) 1)",
        "(sqrt (+ (* x x) 4))",
        "(exp (sin x))",
        "(atan2 x 2)",
        "(pow (fabs x) 0.5)",
        "(fmax x (fmin 0.5 x))",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    @given(x=st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_agreement(self, source, x):
        double_result = ed(source, x=x)
        real_result = er(source, x=x).to_float()
        if double_result == 0.0:
            assert abs(real_result) < 1e-300
        else:
            assert abs(double_result - real_result) <= 4 * abs(
                math.ulp(double_result)
            )
