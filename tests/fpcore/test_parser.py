"""Tests for the FPCore lexer/parser/printer."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fpcore import (
    Const,
    FPCoreSyntaxError,
    If,
    Let,
    Num,
    Op,
    Var,
    While,
    format_expr,
    format_fpcore,
    parse_expr,
    parse_fpcore,
    parse_fpcores,
)
from repro.fpcore.parser import parse_number, tokenize


class TestTokenizer:
    def test_basic(self):
        assert list(tokenize("(+ x 1)")) == ["(", "+", "x", "1", ")"]

    def test_brackets_normalized(self):
        assert list(tokenize("[a b]")) == ["(", "a", "b", ")"]

    def test_comments_dropped(self):
        assert list(tokenize("(a ; comment\n b)")) == ["(", "a", "b", ")"]

    def test_strings(self):
        assert list(tokenize('(:name "hi there")')) == ["(", ":name", '"hi there"', ")"]

    def test_unbalanced(self):
        with pytest.raises(FPCoreSyntaxError):
            parse_expr("(+ x 1")
        with pytest.raises(FPCoreSyntaxError):
            parse_expr("+ x 1)")


class TestNumbers:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1", Fraction(1)),
            ("-3", Fraction(-3)),
            ("0.5", Fraction(1, 2)),
            ("1e3", Fraction(1000)),
            ("2.5e-2", Fraction(1, 40)),
            ("1/3", Fraction(1, 3)),
            ("-1/3", Fraction(-1, 3)),
            (".25", Fraction(1, 4)),
            ("3.", Fraction(3)),
        ],
    )
    def test_parse_number(self, text, expected):
        assert parse_number(text) == expected

    def test_non_numbers(self):
        assert parse_number("x") is None
        assert parse_number("+") is None
        assert parse_number("1.2.3") is None

    def test_hex_float(self):
        assert parse_number("0x1.8p1") == Fraction(3)

    def test_exact_decimal_semantics(self):
        # 0.1 is the exact rational 1/10, not the double 0.1.
        value = parse_expr("0.1")
        assert isinstance(value, Num)
        assert value.value == Fraction(1, 10)


class TestExpressions:
    def test_operator(self):
        expr = parse_expr("(+ x (* y 2))")
        assert expr == Op("+", (Var("x"), Op("*", (Var("y"), Num(Fraction(2), "2")))))

    def test_unary_minus_becomes_neg(self):
        assert parse_expr("(- x)") == Op("neg", (Var("x"),))

    def test_unary_plus_disappears(self):
        assert parse_expr("(+ x)") == Var("x")

    def test_constants(self):
        assert parse_expr("PI") == Const("PI")
        assert parse_expr("pi") == Var("pi")  # case-sensitive

    def test_if(self):
        expr = parse_expr("(if (< x 0) (- x) x)")
        assert isinstance(expr, If)
        assert expr.cond == Op("<", (Var("x"), Num(Fraction(0), "0")))

    def test_let(self):
        expr = parse_expr("(let ([a 1] [b 2]) (+ a b))")
        assert isinstance(expr, Let)
        assert not expr.sequential
        assert [name for name, __ in expr.bindings] == ["a", "b"]

    def test_let_star(self):
        expr = parse_expr("(let* ([a 1] [b (+ a 1)]) b)")
        assert isinstance(expr, Let) and expr.sequential

    def test_while(self):
        expr = parse_expr("(while (< i n) ([i 0 (+ i 1)]) i)")
        assert isinstance(expr, While)
        assert expr.bindings[0][0] == "i"

    def test_annotation_dropped(self):
        expr = parse_expr("(! :precision binary32 (+ x 1))")
        assert expr == parse_expr("(+ x 1)")

    def test_malformed(self):
        with pytest.raises(FPCoreSyntaxError):
            parse_expr("()")
        with pytest.raises(FPCoreSyntaxError):
            parse_expr("(if x y)")
        with pytest.raises(FPCoreSyntaxError):
            parse_expr("(let (x 1) x)")


class TestFPCoreForms:
    def test_simple(self):
        core = parse_fpcore("(FPCore (x) (+ x 1))")
        assert core.arguments == ("x",)
        assert core.name is None

    def test_named_symbol(self):
        core = parse_fpcore("(FPCore myname (x y) (* x y))")
        assert core.name == "myname"

    def test_name_property(self):
        core = parse_fpcore('(FPCore (x) :name "nice name" x)')
        assert core.name == "nice name"

    def test_pre_parsed(self):
        core = parse_fpcore("(FPCore (x) :pre (<= 0 x 10) x)")
        assert isinstance(core.pre, Op)
        assert core.pre.op == "<="

    def test_annotated_argument(self):
        core = parse_fpcore("(FPCore ((! :precision binary64 x)) x)")
        assert core.arguments == ("x",)

    def test_multiple(self):
        cores = parse_fpcores("(FPCore (x) x) (FPCore (y) y)")
        assert len(cores) == 2

    def test_body_required(self):
        with pytest.raises(FPCoreSyntaxError):
            parse_fpcore("(FPCore (x))")


class TestPrinterRoundtrip:
    EXPRESSIONS = [
        "(+ x 1)",
        "(- x)",
        "(sqrt (+ (* x x) (* y y)))",
        "(if (< x 0) (- x) x)",
        "(let ([a (+ x 1)]) (* a a))",
        "(let* ([a 1] [b (+ a 1)]) b)",
        "(while (< i n) ([i 0 (+ i 1)]) i)",
        "(and (<= 0 x 1) (!= y 0))",
        "PI",
        "(atan2 y x)",
        "(fma a b c)",
    ]

    @pytest.mark.parametrize("source", EXPRESSIONS)
    def test_roundtrip(self, source):
        expr = parse_expr(source)
        assert parse_expr(format_expr(expr)) == expr

    def test_fpcore_roundtrip(self):
        source = '(FPCore (x y) :name "t" :pre (<= 0 x y) (+ x y))'
        core = parse_fpcore(source)
        reparsed = parse_fpcore(format_fpcore(core))
        assert reparsed.body == core.body
        assert reparsed.arguments == core.arguments
        assert reparsed.name == core.name

    def test_multiline_format(self):
        core = parse_fpcore("(FPCore (x) :pre (<= 0 x 1) (sqrt x))")
        text = format_fpcore(core, multiline=True)
        assert text.startswith("(FPCore (x)\n")
        assert parse_fpcore(text).body == core.body


@st.composite
def random_exprs(draw, depth=0):
    """Random small expression trees for printer/parser fuzzing."""
    if depth > 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return Num(Fraction(draw(st.integers(-100, 100))))
        if choice == 1:
            return Var(draw(st.sampled_from("abcxyz")))
        return Const(draw(st.sampled_from(["PI", "E", "SQRT2"])))
    op = draw(st.sampled_from(["+", "-", "*", "/", "pow", "atan2"]))
    left = draw(random_exprs(depth=depth + 1))
    right = draw(random_exprs(depth=depth + 1))
    return Op(op, (left, right))


class TestFuzzRoundtrip:
    @given(random_exprs())
    def test_print_parse_identity(self, expr):
        assert parse_expr(format_expr(expr)) == expr
