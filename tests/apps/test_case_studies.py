"""Integration tests for the paper's case studies (Sections 3, 7, 8.3)."""

import math
import random

import pytest

from repro.apps.dihedral import (
    generic_configuration,
    near_flat_configuration,
    reference_angle,
    run_dihedral,
)
from repro.apps.gramschmidt import (
    INIT_POLYBENCH_3_2_1,
    INIT_POLYBENCH_4_2_0,
    run_gramschmidt,
)
from repro.apps.pid import run_pid, sweep_bounds
from repro.apps.plotter import PAPER_REGION, render_pgm, run_plotter
from repro.apps.triangle import run_triangle_study
from repro.core import AnalysisConfig
from repro.fpcore.printer import format_expr

FAST = AnalysisConfig(shadow_precision=192, max_expression_depth=4)


class TestPlotter:
    @pytest.fixture(scope="class")
    def naive(self):
        return run_plotter(width=16, height=12, config=FAST)

    @pytest.fixture(scope="class")
    def fixed(self):
        return run_plotter(width=16, height=12, fixed=True, config=FAST)

    def test_naive_has_incorrect_pixels(self, naive):
        assert naive.incorrect_pixels > 0
        assert naive.incorrect_pixels < naive.total_pixels

    def test_fix_reduces_errors(self, naive, fixed):
        assert fixed.incorrect_pixels < naive.incorrect_pixels

    def test_csqrt_fragment_extracted(self, naive):
        """The paper's headline extraction: sqrt(x*x + y*y) - x with the
        same variable inside the sqrt and as subtrahend."""
        causes = naive.analysis.reported_root_causes()
        rendered = [format_expr(c.symbolic_expression) for c in causes]
        fragment = [
            text for text in rendered
            if text.startswith("(- (sqrt (+ (* ") and text.count("sqrt") == 1
        ]
        assert fragment, rendered
        # shared variable: last token equals the squared variable
        text = fragment[0]
        inner_var = text.split("(* ")[1].split(" ")[0]
        assert text.rstrip(")").split()[-1] == inner_var

    def test_fragment_reported_at_csqrt_line(self, naive):
        causes = naive.analysis.reported_root_causes()
        assert any(c.loc and c.loc.startswith("csqrt.cpp") for c in causes)

    def test_problematic_inputs_have_tiny_y(self, naive):
        """The :pre of the fragment shows the y variable confined to a
        tiny band, like the paper's (<= -2.6e-9 y 2.6e-9)."""
        causes = [
            c for c in naive.analysis.reported_root_causes()
            if c.loc and c.loc.startswith("csqrt.cpp:10")
        ]
        assert causes
        record = causes[0]
        ranges = record.problematic_inputs.by_variable
        assert ranges  # some problematic inputs characterized

    def test_values_are_angles(self, naive):
        for value in naive.values:
            assert math.isnan(value) or -math.pi <= value <= math.pi

    def test_render_pgm(self, naive, tmp_path):
        path = tmp_path / "plot.pgm"
        render_pgm(naive, str(path))
        content = path.read_text()
        assert content.startswith("P2\n16 12\n255\n")
        rows = content.strip().split("\n")[3:]
        assert len(rows) == 12


class TestGramSchmidt:
    @pytest.fixture(scope="class")
    def buggy(self):
        return run_gramschmidt(rows=6, cols=4, config=FAST)

    def test_zero_column_floods_nans(self, buggy):
        assert buggy.nan_outputs > 0

    def test_nan_reported_as_max_error(self, buggy):
        # "Herbgrind reports the resulting NaN value as having maximal
        # error" — 64 bits.
        spots = buggy.analysis.erroneous_spots()
        assert spots and max(s.max_error for s in spots) == 64.0

    def test_division_flagged_with_zero_inputs(self, buggy):
        """The root cause: Q[i][k] = A[i][k] / R[k][k] invoked on the
        zero vector (an invalid input, like the paper's finding)."""
        divisions = [
            r for r in buggy.analysis.reported_root_causes()
            if r.op == "/" and r.loc == "gramschmidt.c:17"
        ]
        assert divisions
        example = divisions[0].example_problematic
        assert example is not None
        assert 0.0 in example.values()

    def test_fixed_initializer_is_clean(self):
        fixed = run_gramschmidt(
            rows=6, cols=4, initializer=INIT_POLYBENCH_4_2_0, config=FAST
        )
        assert fixed.nan_outputs == 0
        assert fixed.analysis.erroneous_spots() == []

    def test_output_counts(self, buggy):
        # Q is rows x cols; R upper-triangular cols x cols.
        expected = 6 * 4 + 4 * 5 // 2
        assert len(buggy.outputs) == expected


class TestPid:
    def test_bound_10_runs_51_iterations(self):
        """The paper's headline number: t < 10.0 with t += 0.2 executes
        51 times, because the 50-step sum is ~3.5e-15 below 10."""
        result = run_pid(10.0, analyse=False)
        assert result.iterations == 51
        assert result.expected_iterations == 50

    def test_divergence_detected_and_attributed(self):
        result = run_pid(10.0)
        assert result.branch_divergences == 1
        causes = result.analysis.reported_root_causes()
        assert causes
        # the increment is the root cause: (+ t 0.2) at pid.c:26
        increments = [
            c for c in causes if c.loc == "pid.c:26"
            and format_expr(c.symbolic_expression).endswith("0.2)")
        ]
        assert increments

    def test_fixed_loop_runs_exactly(self):
        result = run_pid(10.0, fixed=True)
        assert result.iterations == 50
        assert result.branch_divergences == 0

    def test_non_uniformity_across_bounds(self):
        """Only some loop bounds overrun (the paper experimented with
        several) — error is non-uniform."""
        results = sweep_bounds([2.0, 4.0, 6.0, 8.0, 10.0])
        extras = [r.extra_iterations for r in results]
        assert any(e == 1 for e in extras)
        assert any(e == 0 for e in extras)
        for result in results:
            assert result.branch_divergences == (1 if result.extra_iterations else 0)


class TestDihedral:
    @pytest.fixture(scope="class")
    def configurations(self):
        rng = random.Random(1)
        flats = [near_flat_configuration(rng) for __ in range(5)]
        generics = [generic_configuration(rng) for __ in range(5)]
        return flats, generics

    def test_flat_angles_erroneous_in_naive(self, configurations):
        flats, generics = configurations
        result = run_dihedral(flats + generics, config=FAST)
        assert result.erroneous_angles >= len(flats) - 1

    def test_fixed_formula_clean(self, configurations):
        flats, generics = configurations
        result = run_dihedral(flats + generics, fixed=True, config=FAST)
        assert result.erroneous_angles == 0

    def test_fixed_matches_reference(self, configurations):
        flats, __ = configurations
        result = run_dihedral(flats, fixed=True, config=FAST)
        for configuration, angle in zip(flats, result.angles):
            assert angle == pytest.approx(reference_angle(configuration), abs=1e-9)

    def test_acos_flagged_in_naive(self, configurations):
        flats, generics = configurations
        result = run_dihedral(flats + generics, config=FAST)
        causes = result.analysis.reported_root_causes()
        assert any(c.op == "acos" or c.op == "/" for c in causes)

    def test_expression_crosses_boundaries(self, configurations):
        """The extracted expression gathers the determinant slivers that
        came through the heap (paper: 'gathered together the slivers of
        computation')."""
        flats, __ = configurations
        result = run_dihedral(flats, config=FAST)
        causes = result.analysis.reported_root_causes()
        assert causes
        deepest = max(
            len(format_expr(c.symbolic_expression)) for c in causes
        )
        assert deepest > 40  # spans the cross/dot pipeline, not one op


class TestTriangle:
    @pytest.fixture(scope="class")
    def study(self):
        return run_triangle_study(num_generic=8, num_degenerate=8, config=FAST)

    def test_compensations_detected(self, study):
        assert study.compensations_detected > 50
        assert study.compensating_sites >= 10

    def test_control_flow_misses_exist(self, study):
        """The tail == 0 early-exit branches go the 'wrong way' under
        real-number execution — the paper's 14 undetectable cases."""
        assert study.control_flow_misses > 0

    def test_adaptive_results_exact_for_degenerate(self, study):
        # orient2d's exact stage must agree in sign with the true
        # determinant; for our generated degenerates that is tiny or 0.
        for value in study.outputs:
            assert not math.isnan(value)

    def test_detection_reduces_candidate_influence(self):
        with_detection = run_triangle_study(
            num_generic=4, num_degenerate=4, config=FAST
        )
        without = run_triangle_study(
            num_generic=4, num_degenerate=4, config=FAST,
            detect_compensation=False,
        )
        assert without.compensations_detected == 0
        assert with_detection.compensations_detected > 0
