"""Tests for the IEEE-754 bit-level utilities and bits-of-error metric."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ieee import (
    DOUBLE_MAX,
    DOUBLE_MIN_SUBNORMAL,
    MAX_ERROR_BITS,
    bits_of_error,
    bits_of_error_single,
    bits_to_double,
    copysign_bit,
    double_exponent,
    double_to_bits,
    is_negative_zero,
    next_double,
    ordered_int,
    prev_double,
    significant_error,
    to_single,
    ulp,
    ulps_between,
)

finite_doubles = st.floats(allow_nan=False, allow_infinity=False)
any_doubles = st.floats(allow_nan=True, allow_infinity=True)


class TestBitCasts:
    def test_zero_pattern(self):
        assert double_to_bits(0.0) == 0
        assert double_to_bits(-0.0) == 1 << 63

    def test_one_pattern(self):
        assert double_to_bits(1.0) == 0x3FF0000000000000

    def test_inf_pattern(self):
        assert double_to_bits(math.inf) == 0x7FF0000000000000

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            bits_to_double(1 << 64)
        with pytest.raises(ValueError):
            bits_to_double(-1)

    @given(any_doubles)
    def test_roundtrip(self, x):
        back = bits_to_double(double_to_bits(x))
        assert back == x or (math.isnan(back) and math.isnan(x))

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_bits(self, bits):
        value = bits_to_double(bits)
        if not math.isnan(value):
            assert double_to_bits(value) == bits


class TestSignQueries:
    def test_negative_zero(self):
        assert is_negative_zero(-0.0)
        assert not is_negative_zero(0.0)
        assert not is_negative_zero(-1.0)

    def test_copysign_bit(self):
        assert copysign_bit(1.0) == 0
        assert copysign_bit(-1.0) == 1
        assert copysign_bit(-0.0) == 1
        assert copysign_bit(-math.inf) == 1


class TestExponent:
    def test_one(self):
        assert double_exponent(1.0) == 0

    def test_powers(self):
        assert double_exponent(8.0) == 3
        assert double_exponent(0.5) == -1

    def test_subnormal(self):
        assert double_exponent(DOUBLE_MIN_SUBNORMAL) == -1074

    def test_rejects_zero_and_specials(self):
        for bad in (0.0, math.inf, math.nan):
            with pytest.raises(ValueError):
                double_exponent(bad)


class TestOrdering:
    def test_zeros_coincide(self):
        assert ordered_int(0.0) == ordered_int(-0.0) == 0

    def test_adjacent(self):
        assert ulps_between(1.0, math.nextafter(1.0, 2.0)) == 1

    def test_across_zero(self):
        # Distance from the smallest negative to the smallest positive
        # subnormal is exactly two steps.
        assert ulps_between(-DOUBLE_MIN_SUBNORMAL, DOUBLE_MIN_SUBNORMAL) == 2

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ordered_int(math.nan)

    @given(finite_doubles, finite_doubles)
    def test_order_agreement(self, x, y):
        assert (ordered_int(x) < ordered_int(y)) == (
            x < y and not (x == 0.0 and y == 0.0)
        )

    @given(finite_doubles)
    def test_next_prev_inverse(self, x):
        assert prev_double(next_double(x)) == x or x == 0.0 or next_double(x) == 0.0

    @given(finite_doubles)
    def test_next_is_one_ulp(self, x):
        succ = next_double(x)
        if not math.isinf(succ):
            assert ulps_between(x, succ) == 1

    def test_next_at_top(self):
        assert next_double(DOUBLE_MAX) == math.inf
        assert next_double(math.inf) == math.inf

    def test_ulp_of_one(self):
        assert ulp(1.0) == 2.0 ** -52


class TestBitsOfError:
    def test_exact_is_zero(self):
        assert bits_of_error(1.5, 1.5) == 0.0

    def test_one_ulp_is_one_bit(self):
        assert bits_of_error(1.0, math.nextafter(1.0, 2.0)) == 1.0

    def test_nan_is_max(self):
        assert bits_of_error(math.nan, 1.0) == MAX_ERROR_BITS
        assert bits_of_error(1.0, math.nan) == MAX_ERROR_BITS
        assert bits_of_error(math.nan, math.nan) == MAX_ERROR_BITS

    def test_total_loss(self):
        # 0 computed where 1 was expected: all bits wrong.
        assert bits_of_error(0.0, 1.0) > 60

    def test_sign_flip_is_large(self):
        assert bits_of_error(-1.0, 1.0) > 60

    def test_capped(self):
        # The ordered-int distance across the whole double range is just
        # under 2^64, so only NaNs reach the exact cap.
        assert bits_of_error(-math.inf, math.inf) > 63.9
        assert bits_of_error(-DOUBLE_MAX, DOUBLE_MAX) > 63.9
        assert bits_of_error(math.nan, 0.0) == MAX_ERROR_BITS

    @given(finite_doubles, finite_doubles)
    def test_symmetry(self, x, y):
        assert bits_of_error(x, y) == bits_of_error(y, x)

    @given(finite_doubles)
    def test_self_error_zero(self, x):
        assert bits_of_error(x, x) == 0.0

    def test_significance_threshold(self):
        assert significant_error(5.1)
        assert not significant_error(5.0)
        assert significant_error(2.0, threshold=1.0)


class TestSingle:
    def test_rounding(self):
        assert to_single(0.1) != 0.1
        assert to_single(1.5) == 1.5

    def test_single_error(self):
        exact = 0.1
        assert bits_of_error_single(to_single(0.1), to_single(exact)) == 0.0

    def test_single_nan(self):
        assert bits_of_error_single(math.nan, 1.0) == 32.0
