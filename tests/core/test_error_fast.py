"""Edge semantics of the integer bits-of-error fast path.

The per-op pipeline's error stage (:func:`repro.ieee.error.
bits_of_error_fast`) reimplements :func:`~repro.ieee.error.bits_of_error`
on raw 64-bit patterns.  This suite pins the two functions against each
other — and against an *independent* exact metric computed through the
BigFloat/Fraction lattice — exhaustively over every pairing of the edge
values the metric's semantics turn on: NaN (both sides, both signs,
quiet payloads), ±0, ±inf, subnormal neighbors, boundary binades, and
ordinary normals.
"""

import itertools
import math
from fractions import Fraction

import pytest

from repro.bigfloat import BigFloat
from repro.ieee.error import MAX_ERROR_BITS, bits_of_error, bits_of_error_fast
from repro.ieee.float64 import (
    DOUBLE_MAX,
    DOUBLE_MIN_NORMAL,
    DOUBLE_MIN_SUBNORMAL,
    bits_to_double,
    next_double,
)


def exact_lattice_index(value: float) -> int:
    """Position of a double on the ulp lattice, derived from its exact
    rational value via BigFloat/Fraction — deliberately *not* from the
    bit pattern, so this oracle shares no code with either
    implementation under test.  NaN is rejected (callers special-case
    it); ±0 both map to 0.
    """
    assert not math.isnan(value)
    if value == 0.0:
        return 0
    if math.isinf(value):
        # One step past the largest finite double.
        top = exact_lattice_index(DOUBLE_MAX) + 1
        return top if value > 0 else -top
    big = BigFloat.from_float(value)
    fraction = abs(big.to_fraction())
    # Exponent e with 2^e <= |v| < 2^(e+1), via exact rational compares.
    exponent = fraction.numerator.bit_length() - \
        fraction.denominator.bit_length()
    if Fraction(2) ** exponent > fraction:
        exponent -= 1
    assert Fraction(2) ** exponent <= fraction < Fraction(2) ** (exponent + 1)
    if exponent < -1022:
        # Subnormal ladder: count steps of 2^-1074 from zero.
        steps = fraction / Fraction(2) ** -1074
        assert steps.denominator == 1
        magnitude = steps.numerator
    else:
        offset = (fraction / Fraction(2) ** exponent - 1) * Fraction(2) ** 52
        assert offset.denominator == 1
        magnitude = (exponent + 1022 + 1) * 2 ** 52 + offset.numerator
    return -magnitude if value < 0 else magnitude


def exact_bits_of_error(approx: float, exact: float) -> float:
    """The metric recomputed from the exact lattice oracle."""
    if math.isnan(approx) or math.isnan(exact):
        return MAX_ERROR_BITS
    distance = abs(exact_lattice_index(approx) - exact_lattice_index(exact))
    if distance == 0:
        return 0.0
    return min(MAX_ERROR_BITS, math.log2(1 + distance))


QUIET_NAN = float("nan")
PAYLOAD_NAN = bits_to_double(0x7FF8000000000F0F)
NEGATIVE_NAN = bits_to_double(0xFFF8000000000001)

EDGE_VALUES = [
    QUIET_NAN,
    PAYLOAD_NAN,
    NEGATIVE_NAN,
    math.inf,
    -math.inf,
    0.0,
    -0.0,
    DOUBLE_MIN_SUBNORMAL,
    -DOUBLE_MIN_SUBNORMAL,
    2 * DOUBLE_MIN_SUBNORMAL,
    next_double(DOUBLE_MIN_SUBNORMAL),
    DOUBLE_MIN_NORMAL - DOUBLE_MIN_SUBNORMAL,   # largest subnormal
    -(DOUBLE_MIN_NORMAL - DOUBLE_MIN_SUBNORMAL),
    DOUBLE_MIN_NORMAL,
    -DOUBLE_MIN_NORMAL,
    next_double(DOUBLE_MIN_NORMAL),
    DOUBLE_MAX,
    -DOUBLE_MAX,
    1.0,
    -1.0,
    next_double(1.0),
    1.0 + 2 ** -51,
    1.5,
    2.0,
    -2.0,
    0.1,
    1e300,
    -1e300,
    1e-300,
    4503599627370496.0,        # 2^52, mantissa boundary
    9007199254740992.0,        # 2^53
    math.pi,
]


class TestFastPathAgainstReference:
    def test_exhaustive_edge_pairs_match_reference(self):
        for approx, exact in itertools.product(EDGE_VALUES, repeat=2):
            fast = bits_of_error_fast(approx, exact)
            slow = bits_of_error(approx, exact)
            assert fast == slow, (approx, exact, fast, slow)

    def test_exhaustive_edge_pairs_match_exact_bigfloat_metric(self):
        for approx, exact in itertools.product(EDGE_VALUES, repeat=2):
            fast = bits_of_error_fast(approx, exact)
            oracle = exact_bits_of_error(approx, exact)
            assert fast == pytest.approx(oracle, abs=0.0), \
                (approx, exact, fast, oracle)

    def test_randomized_normal_pairs_match(self):
        import random

        rng = random.Random(20260729)
        for __ in range(2000):
            approx = rng.uniform(-1e308, 1e308) * 10 ** rng.randint(-300, 0)
            exact = approx * (1 + rng.uniform(-1e-12, 1e-12))
            assert bits_of_error_fast(approx, exact) == \
                bits_of_error(approx, exact)
            assert bits_of_error_fast(approx, exact) == pytest.approx(
                exact_bits_of_error(approx, exact), abs=1e-12
            )


class TestPinnedSemantics:
    def test_nan_nan_is_maximal(self):
        assert bits_of_error_fast(QUIET_NAN, QUIET_NAN) == MAX_ERROR_BITS
        assert bits_of_error_fast(PAYLOAD_NAN, NEGATIVE_NAN) == MAX_ERROR_BITS

    def test_nan_either_side_is_maximal(self):
        assert bits_of_error_fast(QUIET_NAN, 1.0) == MAX_ERROR_BITS
        assert bits_of_error_fast(1.0, QUIET_NAN) == MAX_ERROR_BITS

    def test_signed_zeros_agree(self):
        assert bits_of_error_fast(0.0, -0.0) == 0.0
        assert bits_of_error_fast(-0.0, 0.0) == 0.0

    def test_infinities_on_the_lattice(self):
        # Same-sign infinities agree; disagreement is finite on the
        # ordered-int lattice but enormous.
        assert bits_of_error_fast(math.inf, math.inf) == 0.0
        assert bits_of_error_fast(-math.inf, -math.inf) == 0.0
        assert bits_of_error_fast(math.inf, -math.inf) > 63.0
        assert bits_of_error_fast(1.0, math.inf) > 60.0

    def test_subnormal_neighbors_are_one_ulp(self):
        tiny = DOUBLE_MIN_SUBNORMAL
        assert bits_of_error_fast(tiny, 2 * tiny) == 1.0
        assert bits_of_error_fast(0.0, tiny) == 1.0
        # Crossing zero is two lattice steps (±0 share one point).
        assert bits_of_error_fast(-tiny, tiny) == math.log2(3)
        assert bits_of_error_fast(
            DOUBLE_MIN_NORMAL, DOUBLE_MIN_NORMAL - DOUBLE_MIN_SUBNORMAL
        ) == 1.0

    def test_normal_neighbors_are_one_ulp(self):
        assert bits_of_error_fast(1.0, next_double(1.0)) == 1.0
        assert bits_of_error_fast(-1.0, 1.0) == \
            bits_of_error(-1.0, 1.0)

    def test_metric_never_negative_or_nan(self):
        for approx, exact in itertools.product(EDGE_VALUES, repeat=2):
            result = bits_of_error_fast(approx, exact)
            assert result >= 0.0
            assert not math.isnan(result)
            assert result <= MAX_ERROR_BITS
