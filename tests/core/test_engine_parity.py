"""Engine parity: the compiled fast path must be report-identical.

The acceptance bar of the compiled engine is *byte-identical*
``AnalysisResult`` JSON against the reference engine — across the
whole corpus, under both precision policies, through the batch API,
and for every individual fast-path layer (threaded interpreter, trace
pool, steady-state anti-unification).
"""

import pytest

from repro.api import AnalysisSession, results_to_json
from repro.core import AnalysisConfig, EngineFeatures, analyze_program
from repro.fpcore import load_corpus


def corpus_json(engine: str, policy: str, points: int = 2, seed: int = 13):
    config = AnalysisConfig(precision_policy=policy, engine=engine)
    session = AnalysisSession(
        config=config, num_points=points, seed=seed, result_cache_size=0
    )
    return results_to_json(session.analyze_batch(load_corpus(), workers=1))


class TestCorpusParity:
    @pytest.mark.parametrize("policy", ["fixed", "adaptive"])
    def test_full_corpus_byte_identical(self, policy):
        assert corpus_json("compiled", policy) == \
            corpus_json("reference", policy)


class TestBatchParity:
    def test_worker_pool_matches_sequential_reference(self):
        corpus = load_corpus()[:12]
        compiled = AnalysisSession(
            config=AnalysisConfig(engine="compiled"),
            num_points=2, seed=5, result_cache_size=0,
        )
        reference = AnalysisSession(
            config=AnalysisConfig(engine="reference"),
            num_points=2, seed=5, result_cache_size=0,
        )
        parallel = compiled.analyze_batch(corpus, workers=2)
        sequential = reference.analyze_batch(corpus, workers=1)
        assert results_to_json(parallel) == results_to_json(sequential)


def analysis_signature(analysis):
    """Every externally observable per-site statistic."""
    rows = []
    for record in analysis.candidate_records():
        rows.append((
            record.site_id, record.op, record.loc, record.executions,
            record.candidate_executions, record.max_local_error,
            record.sum_local_error, record.compensations_detected,
            str(record.symbolic_expression),
            sorted(record.total_inputs.describe())
            if hasattr(record.total_inputs, "describe") else None,
        ))
    for spot in sorted(analysis.spot_records.values(), key=lambda s: s.site_id):
        rows.append((
            spot.site_id, spot.kind, spot.loc, spot.executions,
            spot.erroneous, spot.max_error, spot.sum_error,
            sorted(r.site_id for r in spot.influences),
        ))
    return rows


class TestLayerAttribution:
    """Each fast-path layer alone must preserve results exactly."""

    LAYERS = [
        EngineFeatures(True, False, False),   # dispatch only
        EngineFeatures(False, True, False),   # trace pool only
        EngineFeatures(False, False, True),   # fast anti-unify only
        EngineFeatures(True, True, True),     # PR-3 stack
        EngineFeatures(True, True, True, kernel_cache=True),  # PR-4 stack
        EngineFeatures(True, True, True, kernel_cache=True,
                       fused_pipeline=True),  # fused per-site pipeline
        EngineFeatures(True, True, True, kernel_cache=True,
                       fused_pipeline=True, profile=True),  # + counters
        EngineFeatures(True, True, True, fused_pipeline=True),  # no kcache
        EngineFeatures(True, True, True, kernel_cache=True,
                       fused_pipeline=True, batched=True),  # PR-7 stack
        EngineFeatures(True, True, True, kernel_cache=True,
                       fused_pipeline=True, batched=True,
                       profile=True),  # batched + counters
        EngineFeatures(True, True, True, fused_pipeline=True,
                       batched=True),  # batched without kernel cache
    ]

    @pytest.mark.parametrize("features", LAYERS)
    def test_each_layer_is_report_identical(self, features):
        from repro.fpcore.printer import format_fpcore
        from repro.machine import compile_fpcore
        from repro.api.sampling import sample_inputs

        corpus = load_corpus()
        chosen = [c for c in corpus if "(while" in format_fpcore(c)][:2] \
            + corpus[:4]
        baseline_features = EngineFeatures(False, False, False)
        for core in chosen:
            program = compile_fpcore(core)
            points = sample_inputs(core, 3, seed=3)
            base, __ = analyze_program(
                program, points, features=baseline_features
            )
            fast, __ = analyze_program(program, points, features=features)
            assert analysis_signature(fast) == analysis_signature(base), \
                f"{core.name} diverged under {features}"


class TestBatchedParity:
    """Lockstep batching must be invisible across the whole matrix:
    engine default × precision policy × BigFloat substrate, compared
    byte-for-byte against the same stack with batching forced off."""

    @pytest.mark.parametrize("substrate", ["python", "native"])
    @pytest.mark.parametrize("policy", ["fixed", "adaptive"])
    def test_corpus_byte_identical_with_batching_off(
        self, policy, substrate, monkeypatch
    ):
        def sweep():
            config = AnalysisConfig(
                precision_policy=policy, substrate=substrate,
                engine="compiled",
            )
            session = AnalysisSession(
                config=config, num_points=2, seed=13,
                result_cache_size=0,
            )
            return results_to_json(
                session.analyze_batch(load_corpus(), workers=1)
            )

        monkeypatch.delenv("REPRO_BATCHED", raising=False)
        batched = sweep()
        monkeypatch.setenv("REPRO_BATCHED", "0")
        sequential = sweep()
        assert batched == sequential


class TestHwTierParity:
    """The hardware double-double tier must be invisible in the bytes:
    every decision it takes either provably matches the full-precision
    oracle or escalates, so corpus reports are byte-identical with the
    tier on or off — under both engines, through the batched layer, and
    with the NumPy lane vectorization on or off."""

    @staticmethod
    def sweep(hw_tier, engine="compiled"):
        config = AnalysisConfig(
            precision_policy="adaptive", engine=engine, hw_tier=hw_tier,
        )
        session = AnalysisSession(
            config=config, num_points=2, seed=13, result_cache_size=0,
        )
        return results_to_json(
            session.analyze_batch(load_corpus(), workers=1)
        )

    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_corpus_byte_identical_with_hw_tier_off(self, engine):
        assert self.sweep(True, engine) == self.sweep(False, engine)

    def test_env_default_matches_explicit(self, monkeypatch):
        monkeypatch.delenv("REPRO_HWTIER", raising=False)
        ambient = self.sweep(None)
        monkeypatch.setenv("REPRO_HWTIER", "0")
        assert self.sweep(None) == ambient
        assert ambient == self.sweep(True)

    def test_byte_identical_without_lane_vectorization(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUMPY", raising=False)
        vectorized = self.sweep(True)
        monkeypatch.setenv("REPRO_NUMPY", "0")
        # A fresh import-time decision is not possible mid-process, so
        # force the runtime flag the callbacks consult at build time.
        from repro.machine import lanes

        monkeypatch.setattr(lanes, "HAVE_NUMPY", False)
        assert self.sweep(True) == vectorized

    def test_sequential_engine_ignores_hw_vectorization(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED", "0")
        assert self.sweep(True) == self.sweep(False)


class TestAppsParity:
    def test_pid_app_signature(self):
        from repro.apps.pid import build_pid_program

        program = build_pid_program()
        inputs = [[10.0], [4.0]]
        signatures = {}
        for engine in ("compiled", "reference"):
            analysis, __ = analyze_program(
                program, inputs, config=AnalysisConfig(engine=engine)
            )
            signatures[engine] = analysis_signature(analysis)
        assert signatures["compiled"] == signatures["reference"]
