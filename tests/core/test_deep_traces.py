"""Deep traces must never hit Python's recursion limit.

Loop programs grow concrete-trace DAGs thousands of levels deep — far
beyond the default recursion limit — while the *visible* (depth-
bounded) expression stays small.  Every trace traversal
(``structural_key``, ``node_count``, deep-marking, the initial
conversion, the merge, value collection) is iterative; these tests
pin that, at and beyond the bound, under both engines.
"""

import sys

import pytest

from repro.core import AnalysisConfig, analyze_program
from repro.core.antiunify import Generalization, collect_variable_values
from repro.core.trace import (
    const_leaf,
    input_leaf,
    node_count,
    op_node,
    structural_key,
)
from repro.machine import FunctionBuilder, Program


def chain(depth, leaf=None, op="+", salt=0.0):
    """A trace chain `op(op(... leaf ...), c)` of the given depth."""
    node = leaf if leaf is not None else input_leaf(1.0, 0)
    for level in range(depth - 1):
        node = op_node(
            op, (node, const_leaf(0.5)), float(level) + salt, loc=f"l:{level}"
        )
    return node


DEEP = sys.getrecursionlimit() * 3


class TestIterativeTraversals:
    def test_structural_key_beyond_recursion_limit(self):
        node = chain(DEEP)
        key = structural_key(node, DEEP)
        assert isinstance(key, tuple)
        # Cached second call returns the identical object.
        assert structural_key(node, DEEP) is key

    def test_node_count_beyond_recursion_limit(self):
        assert node_count(chain(DEEP)) == DEEP - 1

    def test_collect_variable_values_deep_expression(self):
        # An expression as deep as the trace: the collect walk spans it.
        node = chain(DEEP)
        site = Generalization(max_depth=DEEP + 1)
        expression = site.update(node)
        out = {}
        collect_variable_values(expression, node, out)
        assert out["x0"] == 1.0

    @pytest.mark.parametrize("fast", [False, True])
    def test_initial_and_merge_with_huge_depth_bound(self, fast):
        # max_depth at the trace's own scale: _initial and _merge must
        # walk the whole chain without recursing.
        site = Generalization(max_depth=DEEP + 1, fast=fast)
        first = site.update(chain(DEEP))
        assert first is not None
        merged, bindings = site.update_with_bindings(chain(DEEP, salt=0.25))
        assert merged is not None
        assert bindings["x0"] == 1.0

    @pytest.mark.parametrize("fast", [False, True])
    def test_deep_trace_with_default_bound(self, fast):
        # The everyday case: a trace far beyond max_depth=20.
        site = Generalization(fast=fast)
        site.update(chain(DEEP))
        expression, bindings = site.update_with_bindings(
            chain(DEEP, salt=0.25)
        )
        assert expression is not None
        assert "x0" not in bindings  # the input sits beyond the bound


class TestBoundaryParity:
    """Fast and reference walks agree exactly at the truncation bound."""

    @pytest.mark.parametrize("depth", [18, 19, 20, 21, 22, 40])
    def test_expression_identical_at_and_past_the_bound(self, depth):
        for salts in ([0.0, 0.0], [0.0, 0.25], [0.25, 0.5, 0.25]):
            sites = {
                fast: Generalization(max_depth=20, fast=fast)
                for fast in (False, True)
            }
            for salt in salts:
                results = {}
                for fast, site in sites.items():
                    results[fast] = site.update_with_bindings(
                        chain(depth, salt=salt)
                    )
                assert str(results[True][0]) == str(results[False][0])
                assert results[True][1] == results[False][1]


class TestDeepLoopPrograms:
    def run_deep_loop(self, engine, iterations=None):
        if iterations is None:
            iterations = sys.getrecursionlimit() * 2
        fn = FunctionBuilder("main")
        total = fn.const(0.0)
        one = fn.const(1.0)
        count = fn.read()
        i = fn.const(0.0)
        head = fn.label()
        done = fn.fresh_label("done")
        fn.branch("ge", i, count, done)
        fn.mov_to(total, fn.op("+", total, fn.op("/", one, fn.op("+", i, one))))
        fn.mov_to(i, fn.op("+", i, one))
        fn.jump(head)
        fn.label(done)
        fn.out(total)
        fn.halt()
        program = Program()
        program.add(fn.build())
        config = AnalysisConfig(engine=engine)
        return analyze_program(program, [[float(iterations)]], config=config)

    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_deep_loop_analysis_and_report(self, engine):
        analysis, outputs = self.run_deep_loop(engine)
        assert outputs[0][0] > 1.0
        # Report generation touches node_count/locations on the last
        # (deep) trace; it must not recurse either.
        from repro.core import generate_report

        report = generate_report(analysis)
        assert report.format()
