"""Tests for trace nodes and anti-unification."""

from repro.core.antiunify import Generalization, collect_variable_values
from repro.core.trace import (
    const_leaf,
    input_leaf,
    node_count,
    op_node,
    opaque_leaf,
    structural_key,
)
from repro.fpcore import parse_expr
from repro.fpcore.ast import Num, Op, Var, expression_depth


def add(a, b, value=0.0):
    return op_node("+", (a, b), value, None)


class TestTraceNodes:
    def test_depth(self):
        x = input_leaf(1.0, 0)
        assert x.depth == 1
        assert add(x, x).depth == 2
        assert add(add(x, x), x).depth == 3

    def test_traces_are_full_dags(self):
        # Construction never truncates; the bound applies at
        # generalization time.
        x = input_leaf(1.0, 0)
        deep = x
        for __ in range(30):
            deep = op_node("+", (deep, x), 0.0, None)
        assert deep.depth == 31

    def test_node_count_dag(self):
        x = input_leaf(1.0, 0)
        square = add(x, x)
        # Sharing: the same node used twice counts once.
        doubled = add(square, square)
        assert node_count(doubled) == 2

    def test_structural_key_depth(self):
        x = input_leaf(1.0, 0)
        a = add(add(x, x), x)
        b = add(add(x, const_leaf(2.0)), x)
        assert structural_key(a, 1)[1] == structural_key(b, 1)[1]
        assert structural_key(a, 3) != structural_key(b, 3)

    def test_opaque_keys_by_identity(self):
        a = opaque_leaf(1.0)
        b = opaque_leaf(1.0)
        assert structural_key(a, 5) != structural_key(b, 5)
        assert structural_key(a, 5) == structural_key(a, 5)


class TestGeneralization:
    def test_first_trace_structure(self):
        g = Generalization()
        x = input_leaf(2.0, 0)
        trace = add(op_node("*", (x, x), 4.0, None), const_leaf(1.0), 5.0)
        expr = g.update(trace)
        assert expr == parse_expr("(+ (* x0 x0) 1)")

    def test_opaque_becomes_variable(self):
        g = Generalization()
        t = opaque_leaf(7.0)
        expr = g.update(add(t, const_leaf(1.0), 8.0))
        assert isinstance(expr.args[0], Var)

    def test_shared_opaque_same_variable(self):
        g = Generalization()
        t = opaque_leaf(7.0)
        expr = g.update(op_node("*", (t, t), 49.0, None))
        assert expr.args[0] == expr.args[1]

    def test_distinct_opaques_distinct_variables(self):
        g = Generalization()
        expr = g.update(
            op_node("*", (opaque_leaf(7.0), opaque_leaf(7.0)), 49.0, None)
        )
        assert expr.args[0] != expr.args[1]

    def test_differing_constants_generalize(self):
        g = Generalization()
        x = input_leaf(0.0, 0)
        g.update(add(x, const_leaf(1.0), 1.0))
        expr = g.update(add(x, const_leaf(2.0), 2.0))
        assert isinstance(expr.args[1], Var)
        assert expr.args[0] == Var("x0")

    def test_same_constants_stay(self):
        g = Generalization()
        x = input_leaf(0.0, 0)
        g.update(add(x, const_leaf(1.0), 1.0))
        expr = g.update(add(x, const_leaf(1.0), 1.0))
        assert expr == parse_expr("(+ x0 1)")

    def test_operator_mismatch_generalizes_subtree(self):
        g = Generalization()
        x = input_leaf(0.0, 0)
        g.update(add(op_node("*", (x, x), 0.0, None), x, 0.0))
        expr = g.update(add(op_node("/", (x, x), 1.0, None), x, 1.0))
        assert isinstance(expr.args[0], Var)
        assert expr.args[1] == Var("x0")

    def test_equivalent_pairs_get_same_variable(self):
        # The same (old, new) subtree pair at two positions must yield
        # the same variable — that is what makes ranges meaningful.
        g = Generalization()
        one = const_leaf(1.0)
        two = const_leaf(2.0)
        # (1 + 1) first, then (2 + 2): both positions change identically.
        g.update(add(one, one, 2.0))
        expr = g.update(add(two, two, 4.0))
        assert isinstance(expr.args[0], Var)
        assert expr.args[0] == expr.args[1]

    def test_different_pairs_get_different_variables(self):
        g = Generalization()
        g.update(add(const_leaf(1.0), const_leaf(1.0), 2.0))
        expr = g.update(add(const_leaf(2.0), const_leaf(3.0), 5.0))
        assert expr.args[0] != expr.args[1]

    def test_monotone_generalization(self):
        """Once a position is a variable it never re-specializes."""
        g = Generalization()
        x = input_leaf(0.0, 0)
        g.update(add(x, const_leaf(1.0), 1.0))
        g.update(add(x, const_leaf(2.0), 2.0))
        expr = g.update(add(x, const_leaf(1.0), 1.0))
        assert isinstance(expr.args[1], Var)

    def test_deep_sharing_is_fast(self):
        """Repeated squaring (DAG) must not blow up exponentially."""
        g = Generalization(max_depth=50)
        for run in range(3):
            node = input_leaf(float(run + 2), 0)
            for __ in range(40):
                # value saturates to inf quickly; that is fine here.
                node = op_node("*", (node, node), node.value * node.value, None)
            g.update(node)
        assert g.expression is not None

    def test_csqrt_fragment_shape(self):
        """The paper's Section 3 extraction: differing pixel-coordinate
        computations generalize to variables, shared ones to the same."""
        g = Generalization()
        for i in range(4):
            # x and y come from opaque per-pixel computations; x is used
            # both inside the sqrt and as the subtrahend (shared node).
            x = opaque_leaf(0.1 * (i + 1))
            y = opaque_leaf(1e-9 * (i + 1))
            xx = op_node("*", (x, x), x.value ** 2, None)
            yy = op_node("*", (y, y), y.value ** 2, None)
            total = op_node("+", (xx, yy), xx.value + yy.value, None)
            root = op_node("sqrt", (total,), total.value ** 0.5, None)
            g.update(op_node("-", (root, x), root.value - x.value, None))
        expr = g.expression
        assert isinstance(expr, Op) and expr.op == "-"
        sqrt_node = expr.args[0]
        assert sqrt_node.op == "sqrt"
        sum_node = sqrt_node.args[0]
        x_var = sum_node.args[0].args[0]
        y_var = sum_node.args[1].args[0]
        assert isinstance(x_var, Var) and isinstance(y_var, Var)
        assert x_var != y_var
        # the x inside sqrt is the same variable as the trailing x
        assert expr.args[1] == x_var


class TestDepthBound:
    def chain(self, levels, leaf_value=1.0):
        node = input_leaf(leaf_value, 0)
        for __ in range(levels):
            node = op_node("+", (node, const_leaf(1.0)), node.value + 1, None)
        return node

    def test_initial_trace_depth_bounded(self):
        g = Generalization(max_depth=3)
        expr = g.update(self.chain(10))
        # 3 operator levels plus the leaf level.
        assert expression_depth(expr) <= 4

    def test_depth_one_single_operation(self):
        """Depth 1 'effectively disables symbolic expression tracking'
        (paper Section 8.2): only the erroneous op itself survives."""
        g = Generalization(max_depth=1)
        expr = g.update(self.chain(10))
        assert isinstance(expr, Op)
        assert all(isinstance(a, (Var, Num)) for a in expr.args)

    def test_merge_respects_bound(self):
        g = Generalization(max_depth=3)
        g.update(self.chain(10, 1.0))
        expr = g.update(self.chain(10, 2.0))
        assert expression_depth(expr) <= 4

    def test_large_depth_keeps_everything(self):
        g = Generalization(max_depth=64)
        expr = g.update(self.chain(10))
        assert expression_depth(expr) == 11

    def test_truncated_positions_are_variables(self):
        g = Generalization(max_depth=2)
        expr = g.update(self.chain(5))
        assert isinstance(expr, Op)
        inner = expr.args[0]
        assert isinstance(inner, Op)
        assert isinstance(inner.args[0], Var)


class TestCollectVariableValues:
    def test_values_recorded_per_variable(self):
        g = Generalization()
        x = input_leaf(3.0, 0)
        trace = add(x, const_leaf(1.0), 4.0)
        sym = g.update(trace)
        out = {}
        collect_variable_values(sym, trace, out)
        assert out == {"x0": 3.0}

    def test_generalized_position_values(self):
        g = Generalization()
        g.update(add(const_leaf(1.0), const_leaf(1.0), 2.0))
        trace = add(const_leaf(5.0), const_leaf(5.0), 10.0)
        sym = g.update(trace)
        out = {}
        collect_variable_values(sym, trace, out)
        assert list(out.values()) == [5.0]

    def test_truncated_variable_gets_subtree_value(self):
        g = Generalization(max_depth=1)
        x = input_leaf(3.0, 0)
        inner = op_node("*", (x, x), 9.0, None)
        trace = op_node("+", (inner, const_leaf(1.0)), 10.0, None)
        sym = g.update(trace)
        out = {}
        collect_variable_values(sym, trace, out)
        # The truncated (* x x) position reports its runtime value 9.0.
        assert 9.0 in out.values()

    def test_shared_node_truncates_everywhere(self):
        """A node shallow in one position but deep in another collapses
        to the SAME variable at both — the plotter-fragment mechanism."""
        g = Generalization(max_depth=4)
        coordinate = op_node(
            "+", (opaque_leaf(0.1), const_leaf(0.5)), 0.6, None
        )
        xx = op_node("*", (coordinate, coordinate), 0.36, None)
        yy = op_node("*", (opaque_leaf(1e-9), opaque_leaf(1e-9)), 1e-18, None)
        total = op_node("+", (xx, yy), 0.36, None)
        root = op_node("sqrt", (total,), 0.6, None)
        # coordinate occurs at depth 5 (inside sqrt) and depth 2 (arg).
        expr = g.update(op_node("-", (root, coordinate), 0.0, None))
        assert isinstance(expr.args[1], Var)
        inner_x = expr.args[0].args[0].args[0].args[0]
        assert inner_x == expr.args[1]
