"""Adaptive-vs-fixed precision equivalence (the tiering acceptance).

The adaptive policy's contract is *report-identical output*: same
candidates, same root causes, same error statistics — byte-identical
result JSON — as a fixed run at the full ``shadow_precision``.  These
tests pin that over a corpus slice, the paper's case-study apps, and
targeted escalation scenarios; ``benchmarks/bench_precision_tiers.py``
extends the check to the full corpus.
"""

import math

import pytest

from repro.api import AnalysisSession, results_to_json
from repro.bigfloat import BigFloat
from repro.core import AnalysisConfig, analyze_program
from repro.core.shadow import ShadowEscalator
from repro.core import trace as trace_mod
from repro.bigfloat.policy import AdaptivePrecisionPolicy
from repro.fpcore import load_corpus, parse_fpcore
from repro.machine import compile_fpcore

FIXED = AnalysisConfig(shadow_precision=1000)
ADAPTIVE = AnalysisConfig(shadow_precision=1000, precision_policy="adaptive")


def analysis_signature(analysis):
    """Everything the report is built from, in comparable form."""
    signature = []
    for record in analysis.candidate_records():
        signature.append((
            record.site_id, record.op, record.loc, record.executions,
            record.candidate_executions, record.max_local_error,
            record.sum_local_error, record.compensations_detected,
        ))
    for spot in sorted(
        analysis.spot_records.values(), key=lambda s: s.site_id
    ):
        signature.append((
            spot.site_id, spot.kind, spot.loc, spot.executions,
            spot.erroneous, spot.max_error, spot.sum_error,
            sorted(r.site_id for r in spot.influences),
        ))
    return signature


class TestCorpusEquivalence:
    def test_corpus_slice_byte_identical(self):
        corpus = load_corpus()[::4]
        fixed = AnalysisSession(config=FIXED, num_points=4, seed=11)
        adaptive = AnalysisSession(config=ADAPTIVE, num_points=4, seed=11)
        fixed_results = fixed.analyze_batch(corpus)
        adaptive_results = adaptive.analyze_batch(corpus)
        assert results_to_json(fixed_results) == \
            results_to_json(adaptive_results)

    def test_cancellation_benchmark_identical(self):
        source = "(FPCore (x) :pre (<= 1e16 x 1e17) (- (+ x 1) x))"
        fixed = AnalysisSession(config=FIXED, num_points=8).analyze(source)
        adaptive = AnalysisSession(config=ADAPTIVE, num_points=8).analyze(
            source
        )
        assert fixed.to_json() == adaptive.to_json()
        assert adaptive.detected


class TestAppEquivalence:
    def test_pid_case_study(self):
        from repro.apps.pid import build_pid_program

        program = build_pid_program()
        inputs = [[10.0], [4.0], [7.2]]
        fixed, fixed_outs = analyze_program(program, inputs, config=FIXED)
        adaptive, adaptive_outs = analyze_program(
            program, inputs, config=ADAPTIVE
        )
        assert fixed_outs == adaptive_outs
        assert analysis_signature(fixed) == analysis_signature(adaptive)

    def test_plotter_case_study(self):
        from repro.apps.plotter import PAPER_REGION, build_plotter_program

        program = build_plotter_program(6, 6)
        fixed, __ = analyze_program(
            program, [list(PAPER_REGION)], config=FIXED
        )
        adaptive, __ = analyze_program(
            program, [list(PAPER_REGION)], config=ADAPTIVE
        )
        assert analysis_signature(fixed) == analysis_signature(adaptive)


class TestEscalation:
    def test_escalation_fires_and_output_matches(self):
        # (1/3 + 1e-300) - 1/3: the inexact thirds cancel to ~1e-300,
        # far below the working tier's trusted band -> the output spot
        # must escalate, and still match fixed mode exactly.
        source = "(FPCore (x) :pre (<= 1 x 2) (- (+ (/ 1 x) 1e-300) (/ 1 x)))"
        fixed_session = AnalysisSession(config=FIXED, num_points=4)
        adaptive_session = AnalysisSession(config=ADAPTIVE, num_points=4)
        fixed = fixed_session.analyze(source)
        adaptive = adaptive_session.analyze(source)
        assert fixed.to_json() == adaptive.to_json()
        assert adaptive.raw.policy.stats["escalations"] > 0

    def test_no_escalations_on_benign_arithmetic(self):
        source = "(FPCore (x) :pre (<= 1 x 2) (+ (* x x) 1))"
        session = AnalysisSession(config=ADAPTIVE, num_points=4)
        result = session.analyze(source)
        assert result.raw.policy.stats["escalations"] == 0

    def test_branch_divergence_matches_fixed(self):
        # The PID drift phenomenon reduced to a benchmark: t drifts
        # below its real value, so the float takes one extra iteration.
        from repro.apps.pid import build_pid_program, run_pid

        fixed = run_pid(10.0, config=FIXED)
        adaptive = run_pid(10.0, config=ADAPTIVE)
        assert fixed.iterations == adaptive.iterations
        assert fixed.branch_divergences == adaptive.branch_divergences


class TestCopysignDrift:
    def test_drifted_sign_source_matches_fixed(self):
        # Regression: copysign must not drop its *sign* operand's
        # drift.  (x + y) - x - y cancels to a working-tier zero whose
        # sign is pure noise; routing it through copysign used to
        # launder the uncertainty into an EXACT-drift shadow, breaking
        # report-identity with fixed mode.
        source = "(FPCore (x y) (copysign 1 (- (- (+ x y) x) y)))"
        points = [[1.0, 2.0 ** -150], [1.0, 2.0 ** -80]]
        fixed = AnalysisSession(config=FIXED).analyze(
            source, points=points
        )
        adaptive = AnalysisSession(config=ADAPTIVE).analyze(
            source, points=points
        )
        assert fixed.to_json() == adaptive.to_json()

    def test_certain_sign_source_stays_cheap(self):
        from repro.bigfloat.policy import AdaptivePrecisionPolicy, EXACT

        policy = AdaptivePrecisionPolicy(1000, working_precision=144)
        magnitude = BigFloat.from_float(1.0)
        sign = BigFloat.from_float(-2.0)
        drift = policy.propagate(
            "copysign", [magnitude, sign], [3.0, 5.0], magnitude.neg()
        )
        assert drift == 3.0  # sign is decisively negative: no penalty


class TestSpecialArgumentExactness:
    def test_transcendental_of_zero_is_not_exact(self):
        # Regression: acos(0) = pi/2 is *rounded* at the working tier;
        # claiming exactness for any op with a zero argument exempted
        # it from escalation and tan amplified the tier difference
        # into a different report.
        source = "(FPCore (x) :pre (<= 0 x 0) (tan (acos x)))"
        points = [[0.0]]
        fixed = AnalysisSession(config=FIXED).analyze(source, points=points)
        adaptive = AnalysisSession(config=ADAPTIVE).analyze(
            source, points=points
        )
        assert fixed.to_json() == adaptive.to_json()

    def test_atan2_on_zero_axis_matches_fixed(self):
        source = "(FPCore (x) :pre (<= 1 x 2) (tan (atan2 x 0)))"
        fixed = AnalysisSession(config=FIXED, num_points=4).analyze(source)
        adaptive = AnalysisSession(config=ADAPTIVE, num_points=4).analyze(
            source
        )
        assert fixed.to_json() == adaptive.to_json()


class TestAdaptiveConfigValidation:
    def test_undersized_working_precision_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="too small"):
            AnalysisConfig(
                precision_policy="adaptive", working_precision=64
            )

    def test_fixed_policy_unconstrained(self):
        AnalysisConfig(precision_policy="fixed", working_precision=64)


class TestConfirmTier:
    def test_moderate_cancellation_certified_without_full_tier(self):
        # atan(N+1) - atan(N) at large N cancels ~2 log2(N) bits: too
        # deep for the working tier's guard band, easily decided at
        # the confirm tier without a 1000-bit re-execution.
        source = (
            "(FPCore (N) :pre (<= 1e6 N 1e7)"
            " (- (atan (+ N 1)) (atan N)))"
        )
        cfg = AnalysisConfig(
            shadow_precision=1000, precision_policy="adaptive",
            working_precision=64 + 16 + 8,  # minimal legal working tier
        )
        session = AnalysisSession(config=cfg, num_points=8)
        result = session.analyze(source)
        fixed = AnalysisSession(config=FIXED, num_points=8).analyze(source)
        assert result.to_json() == fixed.to_json()
        escalator = result.raw.escalator
        assert result.raw.policy.stats["escalations"] > 0
        assert escalator.confirm_certified > 0
        # certification avoided the exact tier entirely
        assert escalator.recomputed_nodes == 0

    def test_total_cancellation_skips_confirm_tier(self):
        # sin^2 + cos^2 - 1: the true value lives ~2^-999, rounding
        # noise at *every* intermediate tier; the escalator must go
        # straight to the full tier (no confirm-tier triple-pay) and
        # still match fixed mode.
        source = (
            "(FPCore (x) :pre (<= 0.1 x 1)"
            " (- (+ (* (sin x) (sin x)) (* (cos x) (cos x))) 1))"
        )
        adaptive = AnalysisSession(config=ADAPTIVE, num_points=4).analyze(
            source
        )
        fixed = AnalysisSession(config=FIXED, num_points=4).analyze(source)
        assert adaptive.to_json() == fixed.to_json()
        raw = adaptive.raw
        assert raw.policy.stats["escalations"] > 0
        assert raw.escalator.confirm_certified == 0
        assert raw.escalator.recomputed_nodes > 0


class TestShadowEscalator:
    def test_reexecution_matches_full_tier_computation(self):
        from repro.bigfloat import Context, apply

        policy = AdaptivePrecisionPolicy(1000, working_precision=192)
        escalator = ShadowEscalator(policy)
        full = Context(precision=1000)
        working = Context(precision=192)
        x = trace_mod.input_leaf(3.0, 0)
        third = trace_mod.op_node(
            "/", (trace_mod.const_leaf(1.0), x), 1.0 / 3.0
        )
        expr = trace_mod.op_node("sin", (third,), math.sin(1.0 / 3.0))
        expected = apply(
            "sin",
            [apply("/", [BigFloat.from_float(1.0),
                         BigFloat.from_float(3.0)], full)],
            full,
        )
        low = apply(
            "sin",
            [apply("/", [BigFloat.from_float(1.0),
                         BigFloat.from_float(3.0)], working)],
            working,
        )
        escalated = escalator.exact_node(expr)
        assert escalated.key() == expected.key()
        assert escalated.key() != low.key()

    def test_memoization_shares_nodes(self):
        policy = AdaptivePrecisionPolicy(1000, working_precision=192)
        escalator = ShadowEscalator(policy)
        x = trace_mod.input_leaf(7.0, 0)
        shared = trace_mod.op_node(
            "/", (trace_mod.const_leaf(2.0), x), 2.0 / 7.0
        )
        left = trace_mod.op_node("sqrt", (shared,), math.sqrt(2.0 / 7.0))
        right = trace_mod.op_node("exp", (shared,), math.exp(2.0 / 7.0))
        escalator.exact_node(left)
        nodes_after_left = escalator.recomputed_nodes
        escalator.exact_node(right)
        # `shared` is reused from the memo: only `right` itself is new.
        assert escalator.recomputed_nodes == nodes_after_left + 1

    def test_leaf_override_for_wide_integers(self):
        # 2^60 + 1 is not a double; the escalator must see the exact
        # integer, not the rounded float leaf value.
        policy = AdaptivePrecisionPolicy(1000, working_precision=192)
        escalator = ShadowEscalator(policy)
        wide = (1 << 60) + 1
        leaf = trace_mod.const_leaf(float(wide))
        escalator.register_leaf(leaf, BigFloat.from_int(wide))
        assert escalator.exact_node(leaf).key() == \
            BigFloat.from_int(wide).key()

    def test_deep_trace_does_not_recurse(self):
        # Loop traces grow thousands of levels; re-execution must be
        # iterative (a recursive walk would blow the stack).
        policy = AdaptivePrecisionPolicy(1000, working_precision=192)
        escalator = ShadowEscalator(policy)
        node = trace_mod.const_leaf(1.0)
        for __ in range(5000):
            node = trace_mod.op_node("+", (node, trace_mod.const_leaf(1.0)),
                                     0.0)
        value = escalator.exact_node(node)
        assert value.key() == BigFloat.from_int(5001).key()


class TestIntToFloatTier:
    def test_wide_integer_conversion_identical(self):
        # A program that converts a wide integer (> 2^53) to float:
        # the conversion itself is the error source, and adaptive mode
        # must agree with fixed mode on the bits.
        from repro.machine.builder import FunctionBuilder
        from repro.machine import Program

        def build():
            fn = FunctionBuilder("main")
            wide = fn.const_int((1 << 60) + 1)
            as_float = fn.int_to_float(wide)
            fn.out(as_float)
            fn.ret(fn.const(0.0))
            return Program(functions={"main": fn.build()}, entry="main")

        fixed, __ = analyze_program(build(), [[]], config=FIXED)
        adaptive, __ = analyze_program(build(), [[]], config=ADAPTIVE)
        assert analysis_signature(fixed) == analysis_signature(adaptive)
