"""Property-based tests of analysis invariants.

Random small FPCore expressions are generated, compiled and analysed;
the properties assert structural invariants of the analysis that must
hold regardless of the expression:

* shadow-real outputs agree with the direct FPCore real evaluator;
* spot influences only ever contain candidate operation sites;
* per-site statistics are internally consistent;
* symbolic expressions generalize their own traces (sizes, variables);
* an analysis at higher precision never reports *less* output error
  than the true rounding error by more than the metric's granularity.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat, Context
from repro.core import AnalysisConfig, analyze_program
from repro.fpcore import eval_double, eval_real, free_variables
from repro.fpcore.ast import Num, Op, Var, num
from repro.machine import compile_expression
from repro.ieee import bits_of_error

CONFIG = AnalysisConfig(shadow_precision=160)
CTX = Context(precision=160)


@st.composite
def small_expressions(draw, depth=0):
    """Random loop-free arithmetic expressions over x and y."""
    if depth >= 3 or draw(st.integers(0, 2)) == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return Var("x")
        if choice == 1:
            return Var("y")
        return num(draw(st.sampled_from([0.5, 1.0, 2.0, 3.0, 1e8, 1e-8])))
    operator = draw(st.sampled_from(["+", "-", "*", "/", "sqrt", "fabs", "exp"]))
    if operator in ("sqrt", "fabs", "exp"):
        return Op(operator, (draw(small_expressions(depth=depth + 1)),))
    left = draw(small_expressions(depth=depth + 1))
    right = draw(small_expressions(depth=depth + 1))
    return Op(operator, (left, right))


point_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def analyse(expr, x, y):
    program = compile_expression(expr, ["x", "y"], name="prop")
    return analyze_program(program, [[x, y]], config=CONFIG)


class TestAnalysisInvariants:
    @given(small_expressions(), point_values, point_values)
    @settings(max_examples=60, deadline=None)
    def test_output_matches_double_evaluator(self, expr, x, y):
        __, outputs = analyse(expr, x, y)
        direct = eval_double(expr, {"x": x, "y": y})
        computed = outputs[0][0]
        assert computed == direct or (
            math.isnan(computed) and math.isnan(direct)
        )

    @given(small_expressions(), point_values, point_values)
    @settings(max_examples=60, deadline=None)
    def test_spot_error_matches_real_evaluator(self, expr, x, y):
        analysis, outputs = analyse(expr, x, y)
        real = eval_real(
            expr,
            {"x": BigFloat.from_float(x), "y": BigFloat.from_float(y)},
            CTX,
        )
        expected = bits_of_error(outputs[0][0], real.to_float())
        output_spots = [
            s for s in analysis.spot_records.values() if s.kind == "output"
        ]
        assert len(output_spots) == 1
        assert output_spots[0].max_error == expected

    @given(small_expressions(), point_values, point_values)
    @settings(max_examples=40, deadline=None)
    def test_influences_are_candidates(self, expr, x, y):
        analysis, __ = analyse(expr, x, y)
        candidates = set(analysis.candidate_records())
        for spot in analysis.spot_records.values():
            assert spot.influences <= candidates

    @given(small_expressions(), point_values, point_values)
    @settings(max_examples=40, deadline=None)
    def test_record_statistics_consistent(self, expr, x, y):
        analysis, __ = analyse(expr, x, y)
        for record in analysis.op_records.values():
            assert 0 <= record.candidate_executions <= record.executions
            assert record.max_local_error <= 64.0
            assert record.average_local_error <= record.max_local_error + 1e-9
            if record.executions:
                assert record.symbolic_expression is not None

    @given(small_expressions(), point_values, point_values, point_values)
    @settings(max_examples=30, deadline=None)
    def test_generalization_variables_have_characteristics(
        self, expr, x, y, x2
    ):
        program = compile_expression(expr, ["x", "y"], name="prop")
        analysis, __ = analyze_program(
            program, [[x, y], [x2, y]], config=CONFIG
        )
        for record in analysis.op_records.values():
            symbolic = record.symbolic_expression
            if symbolic is None:
                continue
            for variable in free_variables(symbolic):
                assert variable in record.total_inputs.by_variable

    @given(small_expressions(), point_values, point_values)
    @settings(max_examples=30, deadline=None)
    def test_reruns_accumulate(self, expr, x, y):
        program = compile_expression(expr, ["x", "y"], name="prop")
        analysis, __ = analyze_program(
            program, [[x, y], [x, y], [x, y]], config=CONFIG
        )
        for record in analysis.op_records.values():
            assert record.executions % 3 == 0
        for spot in analysis.spot_records.values():
            assert spot.executions % 3 == 0
