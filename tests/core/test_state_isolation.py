"""Analysis-state isolation: no leakage between runs or sessions.

Two guards this suite pins:

* **Counter freshness** — every ``HerbgrindAnalysis`` starts with zero
  engine counters (kernel-cache hits/misses, pipeline stage counters),
  and repeated ``analyze_batch`` calls through one session never see a
  previous analysis' counts.
* **Pool memory** — the ident-first :class:`~repro.core.trace.TracePool`
  resets its flat arrays per execution: its live size after an analysis
  is bounded by *one* run's unique nodes, and repeated batch iterations
  do not grow it.
"""

import dataclasses

from repro.api import AnalysisSession
from repro.core import AnalysisConfig, EngineFeatures, analyze_program
from repro.core.analysis import HerbgrindAnalysis, PipelineStageCounters
from repro.fpcore import parse_fpcore
from repro.machine import compile_fpcore

LOOP = """(FPCore (x n) :name "iso-loop" :pre (and (<= 1 x 2) (<= 20 n 40))
    (while (<= i n) ([i 1 (+ i 1)]
                     [acc 0 (+ acc (/ (log x) i))])
      acc))"""

FAST = AnalysisConfig(shadow_precision=192)

PROFILED = dataclasses.replace(
    EngineFeatures.for_engine("compiled"), profile=True
)


def run_analysis(points, features=PROFILED):
    program = compile_fpcore(parse_fpcore(LOOP))
    return analyze_program(program, points, config=FAST, features=features)


class TestCounterReset:
    def test_fresh_analysis_has_zero_counters(self):
        analysis = HerbgrindAnalysis(FAST)
        assert analysis.kernel_cache_hits == 0
        assert analysis.kernel_cache_misses == 0
        assert all(
            value == 0 for value in analysis.stage_counters.to_dict().values()
        )

    def test_counters_do_not_accumulate_across_analyses(self):
        points = [[1.5, 25.0], [1.25, 30.0]]
        first, __ = run_analysis(points)
        second, __ = run_analysis(points)
        assert first.stage_counters.to_dict() == \
            second.stage_counters.to_dict()
        assert first.kernel_cache_hits == second.kernel_cache_hits
        assert first.kernel_cache_misses == second.kernel_cache_misses
        assert second.stage_counters.to_dict()["fused_ops"] > 0

    def test_stage_counters_reset_method(self):
        counters = PipelineStageCounters()
        counters.fused_ops = 7
        counters.kernel_evals = 3
        counters.reset()
        assert all(value == 0 for value in counters.to_dict().values())

    def test_batch_iterations_report_identical_profiles(self):
        session = AnalysisSession(
            config=FAST, num_points=3, seed=11, result_cache_size=0
        )
        core = parse_fpcore(LOOP)
        first = session.analyze_batch([core], profile=True)[0]
        second = session.analyze_batch([core], profile=True)[0]
        profile_a = first.extra["pipeline_profile"]
        profile_b = second.extra["pipeline_profile"]
        assert profile_a == profile_b
        assert profile_a["fused_ops"] > 0


class TestPoolMemoryGuard:
    def test_pool_size_bounded_by_one_run(self):
        one_point = [[1.5, 25.0]]
        single, __ = run_analysis(one_point)
        single_size = len(single.pool)
        many, __ = run_analysis(one_point * 6)
        # Re-running the same point must not accumulate nodes: the pool
        # holds only the final execution's entries.
        assert len(many.pool) == single_size

    def test_pool_resets_between_different_points(self):
        points = [[1.5, 25.0], [1.25, 30.0], [1.75, 35.0]]
        analysis, __ = run_analysis(points)
        biggest_run = 0
        probe = HerbgrindAnalysis(FAST)
        program = compile_fpcore(parse_fpcore(LOOP))
        for point in points:
            single, __ = analyze_program(program, [point], config=FAST)
            biggest_run = max(biggest_run, len(single.pool))
        assert len(analysis.pool) <= biggest_run

    def test_batch_iterations_do_not_grow_pools(self):
        session = AnalysisSession(
            config=FAST, num_points=4, seed=3, result_cache_size=0
        )
        core = parse_fpcore(LOOP)
        sizes = []
        for __ in range(3):
            result = session.analyze_batch([core])[0]
            sizes.append(len(result.raw.pool))
        assert sizes[0] == sizes[1] == sizes[2]

    def test_materialization_memo_cleared_per_run(self):
        analysis, __ = run_analysis([[1.5, 25.0], [1.25, 30.0]])
        pool = analysis.pool
        # Whatever was materialized for reporting belongs to the final
        # run only; the memo array has exactly the pool's length.
        assert len(pool.nodes) == len(pool)
