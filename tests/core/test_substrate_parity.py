"""Substrate parity: native kernels must be report-invisible.

The acceptance bar of the pluggable BigFloat substrate is
*byte-identical* ``AnalysisResult`` JSON across ``substrate`` x
``engine`` x ``precision_policy`` over the whole corpus, plus a
substrate-aware result-cache digest and a result-preserving
kernel-result cache.
"""

import pytest

from repro.api import AnalysisSession, results_to_json
from repro.api.requests import AnalysisRequest
from repro.api.session import request_digest
from repro.bigfloat import substrate_provider
from repro.core import AnalysisConfig, EngineFeatures, analyze_program
from repro.core.config import AnalysisConfig as Config
from repro.fpcore import load_corpus, parse_fpcore
from repro.machine import compile_fpcore


def corpus_json(substrate: str, engine: str = "compiled",
                policy: str = "fixed", points: int = 2, seed: int = 13):
    config = AnalysisConfig(
        substrate=substrate, engine=engine, precision_policy=policy
    )
    session = AnalysisSession(
        config=config, num_points=points, seed=seed, result_cache_size=0
    )
    return results_to_json(session.analyze_batch(load_corpus(), workers=1))


class TestCorpusParity:
    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    @pytest.mark.parametrize("policy", ["fixed", "adaptive"])
    def test_full_corpus_byte_identical(self, engine, policy):
        assert corpus_json("python", engine, policy) == \
            corpus_json("native", engine, policy)

    def test_native_works_in_worker_pool(self):
        corpus = load_corpus()[:10]
        native = AnalysisSession(
            config=AnalysisConfig(substrate="native"),
            num_points=2, seed=5, result_cache_size=0,
        )
        python = AnalysisSession(
            config=AnalysisConfig(substrate="python"),
            num_points=2, seed=5, result_cache_size=0,
        )
        assert results_to_json(native.analyze_batch(corpus, workers=2)) == \
            results_to_json(python.analyze_batch(corpus, workers=1))


class TestDigest:
    def test_substrate_is_in_the_request_digest(self):
        core = "(FPCore (x) (sqrt (+ x 1)))"
        python = AnalysisRequest.build(core, config=Config(substrate="python"))
        native = AnalysisRequest.build(core, config=Config(substrate="native"))
        assert request_digest(python) != request_digest(native)

    def test_substrate_round_trips_through_json(self):
        request = AnalysisRequest.build(
            "(FPCore (x) (+ x 1))", config=Config(substrate="native")
        )
        rebuilt = AnalysisRequest.from_json(request.to_json())
        assert rebuilt.config.substrate == "native"
        assert request_digest(rebuilt) == request_digest(request)

    def test_unknown_substrate_rejected_at_config_time(self):
        with pytest.raises(ValueError):
            Config(substrate="mpfr")


class TestKernelCache:
    LOOP = """(FPCore (x n) :name "cache-loop"
        (while (<= i n) ([i 1 (+ i 1)]
                         [acc 0 (+ acc (/ (log x) i))])
          acc))"""

    def analyse(self, kernel_cache: bool):
        program = compile_fpcore(parse_fpcore(self.LOOP))
        features = EngineFeatures(
            threaded_interpreter=True, trace_pool=True,
            fast_antiunify=True, kernel_cache=kernel_cache,
        )
        return analyze_program(
            program, [[7.5, 12.0], [3.25, 9.0]],
            config=AnalysisConfig(), features=features,
        )

    def test_loop_invariant_kernel_hits(self):
        analysis, __ = self.analyse(kernel_cache=True)
        # log x is loop-invariant: one miss per execution, the other
        # iterations hit.
        assert analysis.kernel_cache_misses == 2
        assert analysis.kernel_cache_hits >= 18

    def test_cache_off_by_default_without_pool(self):
        program = compile_fpcore(parse_fpcore(self.LOOP))
        features = EngineFeatures(
            threaded_interpreter=False, trace_pool=False,
            fast_antiunify=False, kernel_cache=True,
        )
        analysis, __ = analyze_program(
            program, [[7.5, 12.0]], config=AnalysisConfig(),
            features=features,
        )
        assert analysis.kernel_cache_hits == 0
        assert analysis.kernel_cache_misses == 0

    def test_cache_is_result_invisible(self):
        with_cache, outputs_on = self.analyse(kernel_cache=True)
        without, outputs_off = self.analyse(kernel_cache=False)
        assert outputs_on == outputs_off
        on = {r.site_id: (r.executions, r.max_local_error,
                          r.sum_local_error)
              for r in with_cache.op_records.values()}
        off = {r.site_id: (r.executions, r.max_local_error,
                           r.sum_local_error)
               for r in without.op_records.values()}
        assert on == off

    def test_for_engine_enables_cache_only_when_compiled(self):
        assert EngineFeatures.for_engine("compiled").kernel_cache
        assert not EngineFeatures.for_engine("reference").kernel_cache


class TestCli:
    def test_substrate_flag(self, capsys):
        from repro.cli import main

        code = main([
            "analyze", "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))",
            "--points", "2", "--substrate", "native", "--json",
        ])
        assert code == 0
        native_out = capsys.readouterr().out
        code = main([
            "analyze", "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))",
            "--points", "2", "--substrate", "python", "--json",
        ])
        assert code == 0
        python_out = capsys.readouterr().out
        assert native_out == python_out

    def test_provider_resolution_never_fails(self):
        # "native" must resolve even in a bare environment.
        assert substrate_provider("native") in ("gmpy2", "mpmath", "python")
