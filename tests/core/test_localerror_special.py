"""Special-value semantics of the error metrics (audited, pinned).

The audit behind these tests: ``bits_of_error`` and everything built
on it must stay *defined* (never NaN, never negative, always within
the cap) for every combination of NaN/±inf on either side, so no
nonsense float can reach candidate ranking or spot statistics.  The
paper's conventions are pinned explicitly:

* NaN involvement is maximal error — including the both-NaN case,
  because an operation invoked outside its real domain is exactly the
  Gram-Schmidt root cause (Section 7): the ``0/0`` division *is*
  reported even though float and real agree on "invalid".
* Infinities live on the ulp lattice: same-sign agreement is zero
  error; any disagreement saturates the cap.
"""

import math

import pytest

from repro.bigfloat import BigFloat, Context
from repro.core.localerror import (
    local_error,
    rounded_local_error,
    rounded_total_error,
    total_error,
)
from repro.ieee.error import MAX_ERROR_BITS

CTX = Context(precision=200)

NAN = float("nan")
INF = float("inf")


class TestTotalErrorSpecials:
    def test_nan_float_against_finite_real(self):
        assert total_error(NAN, BigFloat.from_float(1.5)) == MAX_ERROR_BITS

    def test_finite_float_against_nan_real(self):
        assert total_error(1.5, BigFloat.nan()) == MAX_ERROR_BITS

    def test_both_nan_is_still_maximal(self):
        # The Gram-Schmidt convention: invalid is invalid.
        assert total_error(NAN, BigFloat.nan()) == MAX_ERROR_BITS

    def test_matching_infinities_are_exact(self):
        assert total_error(INF, BigFloat.inf(0)) == 0.0
        assert total_error(-INF, BigFloat.inf(1)) == 0.0

    def test_opposite_infinities_nearly_saturate(self):
        # inf vs -inf spans the whole ordered-double lattice: just
        # under the 64-bit cap, and certainly "significant".
        bits = total_error(INF, BigFloat.inf(1))
        assert 63.0 < bits <= MAX_ERROR_BITS

    def test_finite_against_infinite_real_is_defined(self):
        # The ulp lattice extends to inf: a large-but-finite double
        # against an infinite real is a huge, *finite* distance — not
        # NaN, not the cap.
        bits = total_error(1e308, BigFloat.inf(0))
        assert 50.0 < bits <= MAX_ERROR_BITS

    def test_real_overflowing_double_range(self):
        # A shadow real beyond DBL_MAX rounds to inf; the metric stays
        # defined and registers dozens of bits of error.
        huge = BigFloat(0, 1, 5000)  # 2^5000
        bits = total_error(1e308, huge)
        assert 50.0 < bits <= MAX_ERROR_BITS


class TestLocalErrorSpecials:
    def test_domain_error_agreement_is_flagged(self):
        # sqrt(-4): float NaN, real NaN -> maximal local error (the
        # op *is* the root cause of the invalid result).
        arg = BigFloat.from_float(-4.0)
        result = BigFloat.nan()
        assert local_error("sqrt", [arg], result, CTX) == MAX_ERROR_BITS

    def test_agreeing_infinities_are_clean(self):
        # exp overflows both paths identically: no local error.
        arg = BigFloat.from_float(1000.0)
        real = BigFloat(0, 1, 1443)  # ~e^1000, far beyond double range
        assert local_error("exp", [arg], real, CTX) == 0.0

    def test_rounded_entry_points_match_bigfloat_entry_points(self):
        args = [BigFloat.from_float(3.0), BigFloat.from_float(7.0)]
        real = BigFloat.from_float(10.0)
        assert local_error("+", args, real, CTX) == rounded_local_error(
            "+", [3.0, 7.0], 10.0
        )
        assert total_error(2.5, BigFloat.from_float(2.5)) == \
            rounded_total_error(2.5, 2.5)

    @pytest.mark.parametrize("approx,exact", [
        (NAN, NAN), (NAN, 1.0), (1.0, NAN),
        (INF, INF), (-INF, INF), (INF, 1.0), (0.0, -INF),
        (NAN, INF), (INF, NAN),
    ])
    def test_metric_is_always_defined(self, approx, exact):
        bits = rounded_total_error(approx, exact)
        assert not math.isnan(bits)
        assert 0.0 <= bits <= MAX_ERROR_BITS
