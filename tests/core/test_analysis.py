"""Integration tests of the Herbgrind analysis on machine programs."""

import math

import pytest

from repro.api import AnalysisSession
from repro.core import (
    AnalysisConfig,
    HerbgrindAnalysis,
    SPOT_BRANCH,
    SPOT_CONVERSION,
    SPOT_OUTPUT,
    analyze_program,
    generate_report,
)
from repro.fpcore import parse_fpcore
from repro.fpcore.printer import format_expr
from repro.machine import FunctionBuilder, Interpreter, Program, build_libm

FAST = AnalysisConfig(shadow_precision=192)


def analyze_source(source, points, config=FAST, **kwargs):
    session = AnalysisSession(config=config, result_cache_size=0)
    result = session.analyze(
        parse_fpcore(source), points=[list(p) for p in points], **kwargs
    )
    return result.raw


class TestBasicDetection:
    def test_accurate_program_is_clean(self):
        analysis = analyze_source(
            "(FPCore (x) (* (+ x 1) 2))", [[0.5], [2.0], [100.0]]
        )
        assert analysis.erroneous_spots() == []
        assert analysis.candidate_records() == []

    def test_catastrophic_cancellation_detected(self):
        analysis = analyze_source(
            "(FPCore (x) (- (+ x 1) x))", [[1e16], [3e16]]
        )
        spots = analysis.erroneous_spots()
        assert len(spots) == 1
        assert spots[0].kind == SPOT_OUTPUT
        assert spots[0].max_error > 50
        causes = analysis.reported_root_causes()
        assert len(causes) >= 1
        rendered = format_expr(causes[0].symbolic_expression)
        assert rendered == "(- (+ x0 1) x0)"

    def test_error_metric_on_output(self):
        analysis = analyze_source("(FPCore (x) (- (+ x 1) x))", [[1e16]])
        [spot] = analysis.erroneous_spots()
        # computed 0 where the answer is 1: ~62-63 bits of error
        assert 55 < spot.max_error <= 64

    def test_nan_output_is_max_error(self):
        # The Gram-Schmidt phenomenon: NaN reported as maximal error.
        analysis = analyze_source("(FPCore (x) (/ (- x x) (- x x)))", [[3.0]])
        [spot] = analysis.erroneous_spots()
        assert spot.max_error == 64.0

    def test_influences_only_when_flowing_to_spot(self):
        # Local error exists but is multiplied by zero: spot sees no
        # error, so nothing should be reported.
        analysis = analyze_source(
            "(FPCore (x) (* (- (+ x 1) x) 0))", [[1e16]]
        )
        assert analysis.erroneous_spots() == []
        # the candidate exists, but is not *reported*
        assert len(analysis.candidate_records()) >= 1
        assert analysis.reported_root_causes() == []

    def test_local_error_blames_the_right_op(self):
        # In sqrt(x+1)-sqrt(x) at large x, the subtraction is the root
        # cause; the sqrts are innocent.
        analysis = analyze_source(
            "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))", [[1e13], [5e13]]
        )
        causes = analysis.reported_root_causes()
        assert causes
        assert causes[0].op == "-"


class TestSpots:
    def test_branch_divergence(self):
        # if (x + 1 == x) { out 1 } else { out 0 }: at 1e16 the float
        # path takes the "equal" branch, the real path would not.
        analysis = analyze_source(
            "(FPCore (x) (if (== (+ x 1) x) 1 0))", [[1e16]]
        )
        spots = analysis.erroneous_spots()
        assert any(s.kind == SPOT_BRANCH for s in spots)

    def test_branch_agreement_not_flagged(self):
        analysis = analyze_source(
            "(FPCore (x) (if (< x 100) 1 0))", [[5.0], [500.0]]
        )
        assert analysis.erroneous_spots() == []

    def test_conversion_spot(self):
        fn = FunctionBuilder("main")
        x = fn.read()
        big = fn.const(1e16)
        one = fn.const(1.0)
        # (x + 1e16) - 1e16 loses small x entirely.
        total = fn.op("+", x, big)
        back = fn.op("-", total, big)
        scaled = fn.op("*", back, one)
        converted = fn.float_to_int(scaled)
        fn.out(fn.int_to_float(converted))
        fn.halt()
        program = Program()
        program.add(fn.build())
        analysis, __ = analyze_program(program, [[7.25]], config=FAST)
        kinds = {s.kind for s in analysis.erroneous_spots()}
        assert SPOT_CONVERSION in kinds

    def test_output_threshold_respected(self):
        config = FAST.with_(output_error_threshold=63.0)
        analysis = analyze_source(
            "(FPCore (x) (- (+ x 1) x))", [[1e16]], config=config
        )
        # ~62 bits of error is below a 63-bit threshold.
        assert analysis.erroneous_spots() == []


class TestNonLocality:
    def test_error_across_function_and_heap(self):
        """The paper's foo/bar example: the root cause spans a call and
        a heap round-trip, and the extracted expression crosses both."""
        program = Program()
        foo = FunctionBuilder("foo", params=("ax", "ay", "bx", "by"))
        left = foo.op("+", "ax", "ay", loc="foo.c:2")
        right = foo.op("+", "bx", "by", loc="foo.c:2")
        diff = foo.op("-", left, right, loc="foo.c:2")
        foo.ret(foo.op("*", diff, "ax", loc="foo.c:2"))
        program.add(foo.build())

        main = FunctionBuilder("main")
        x = main.read()
        y = main.read()
        z = main.read()
        # Thread the values through the heap first.
        for offset, reg in enumerate((x, y, z)):
            main.store(main.const_int(offset), reg)
        loaded = [main.load(main.const_int(i)) for i in range(3)]
        result = main.call("foo", loaded[0], loaded[1], loaded[0], loaded[2])
        main.out(result, loc="main.c:9")
        main.halt()
        program.add(main.build())

        analysis, outputs = analyze_program(
            program, [[1e16, 1.0, 0.0]], config=FAST
        )
        assert outputs[0][0] == 0.0  # the buggy float answer
        causes = analysis.reported_root_causes()
        assert causes
        rendered = format_expr(causes[0].symbolic_expression)
        assert rendered == "(- (+ x0 x1) (+ x0 x2))"

    def test_input_characteristics_from_paper_baz(self):
        """baz is only problematic near x = 113; the problematic ranges
        must reflect that while total ranges cover everything."""
        source = """
        (FPCore (x)
          (- (+ (/ 1 (- x 113)) PI) (/ 1 (- x 113))))
        """
        good = [[150.0], [200.0], [50.0]]
        bad = [[113.0000001], [112.9999999]]
        analysis = analyze_source(source, good + bad)
        causes = analysis.reported_root_causes()
        assert causes
        record = causes[0]
        # z = 1/(x-113) is generalized to a variable; its problematic
        # range only contains the huge values near the pole.
        problem_summaries = record.problematic_inputs.by_variable
        assert problem_summaries
        total_summaries = record.total_inputs.by_variable
        assert set(problem_summaries) <= set(total_summaries)


class TestCompensation:
    def neumaier_program(self, count):
        """Neumaier summation: a compensating term, whose real-number
        value is exactly zero, is added to the plain sum at the end —
        the pattern Section 5.3's detector targets."""
        fn = FunctionBuilder("main")
        total = fn.mov(fn.const(0.0))
        compensation = fn.mov(fn.const(0.0))
        for __ in range(count):
            value = fn.read()
            t = fn.op("+", total, value, loc="neumaier.c:5")
            big = fn.fresh_label("big")
            done = fn.fresh_label("done")
            fn.branch("ge", fn.op("fabs", total), fn.op("fabs", value), big)
            low = fn.op("+", fn.op("-", value, t), total, loc="neumaier.c:8")
            fn.mov_to(compensation, fn.op("+", compensation, low))
            fn.jump(done)
            fn.label(big)
            low = fn.op("+", fn.op("-", total, t), value, loc="neumaier.c:11")
            fn.mov_to(compensation, fn.op("+", compensation, low))
            fn.label(done)
            fn.mov_to(total, t)
        fn.out(fn.op("+", total, compensation, loc="neumaier.c:14"))
        fn.halt()
        program = Program()
        program.add(fn.build())
        return program

    VALUES = [1e16, 1.0, 1.0, 1.0, 1.0, -1e16]

    def test_neumaier_not_reported_with_detection(self):
        program = self.neumaier_program(len(self.VALUES))
        analysis, outputs = analyze_program(program, [self.VALUES], config=FAST)
        assert outputs[0][0] == 4.0  # compensated sum gets it right
        # The compensating term had huge local error, but the final
        # compensated addition blocks its influence: no false positive.
        assert analysis.erroneous_spots() == []
        total_compensations = sum(
            r.compensations_detected for r in analysis.op_records.values()
        )
        assert total_compensations > 0
        assert analysis.candidate_records(), "the error term is a candidate"

    def test_influences_leak_without_detection(self):
        program = self.neumaier_program(len(self.VALUES))
        config = FAST.with_(detect_compensation=False)
        without, __ = analyze_program(program, [self.VALUES], config=config)
        with_detection, __ = analyze_program(program, [self.VALUES], config=FAST)

        def final_output_influences(analysis):
            from repro.core import SPOT_OUTPUT

            spots = [
                s for s in analysis.spot_records.values()
                if s.kind == SPOT_OUTPUT
            ]
            return sum(len(s.influences) for s in spots)

        # Output value is numerically fine either way; what detection
        # changes is whether the error-term ops taint downstream values.
        outputs_clean = [s for s in with_detection.erroneous_spots()]
        assert outputs_clean == []
        assert final_output_influences(without) >= final_output_influences(
            with_detection
        )


class TestConfigurationAxes:
    def test_threshold_sweep_monotone(self):
        source = "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))"
        points = [[10.0 ** k] for k in range(0, 14, 2)]
        flagged = []
        for threshold in (0.5, 4.0, 16.0, 48.0):
            config = FAST.with_(local_error_threshold=threshold)
            analysis = analyze_source(source, points, config=config)
            flagged.append(len(analysis.candidate_records()))
        assert flagged == sorted(flagged, reverse=True)

    def test_depth_one_is_fpdebug_like(self):
        config = FAST.with_(max_expression_depth=1)
        analysis = analyze_source(
            "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))", [[1e13]], config=config
        )
        causes = analysis.reported_root_causes()
        assert causes
        expr = causes[0].symbolic_expression
        # one operation over variables: no nested structure
        from repro.fpcore.ast import Op, Var

        assert isinstance(expr, Op)
        assert all(isinstance(a, Var) for a in expr.args)

    def test_influence_tracking_off(self):
        config = FAST.with_(track_influences=False)
        analysis = analyze_source(
            "(FPCore (x) (- (+ x 1) x))", [[1e16]], config=config
        )
        [spot] = analysis.erroneous_spots()
        assert spot.influences == set()

    def test_characteristics_none(self):
        config = FAST.with_(input_characteristics="none")
        analysis = analyze_source(
            "(FPCore (x) (- (+ x 1) x))", [[1e16]], config=config
        )
        [cause] = analysis.reported_root_causes()
        report = generate_report(analysis)
        assert report.spots[0].root_causes[0].precondition_clauses == []


class TestLibraryWrapping:
    def test_wrapped_trace_is_atomic(self):
        analysis = analyze_source(
            "(FPCore (x) (- (exp x) 1))", [[1e-10]]
        )
        causes = analysis.reported_root_causes()
        assert causes
        rendered = format_expr(causes[0].symbolic_expression)
        assert rendered == "(- (exp x0) 1)"

    def test_unwrapped_exposes_magic_constant(self):
        analysis = analyze_source(
            "(FPCore (x) (- (exp x) 1))",
            [[1e-10]],
            wrap_libraries=False,
            libm=build_libm(),
        )
        causes = analysis.reported_root_causes()
        assert causes
        from repro.fpcore import expression_size

        # The extracted expression now contains exp's internals: much
        # bigger, and mentioning the 6.755399e15 magic constant.
        sizes = [expression_size(c.symbolic_expression) for c in causes]
        texts = " ".join(format_expr(c.symbolic_expression) for c in causes)
        assert max(sizes) > 3
        assert "6755399441055744" in texts

    def test_wrapped_and_unwrapped_agree_on_detection(self):
        source = "(FPCore (x) (- (exp x) 1))"
        wrapped = analyze_source(source, [[1e-10]])
        unwrapped = analyze_source(
            source, [[1e-10]], wrap_libraries=False, libm=build_libm()
        )
        assert wrapped.erroneous_spots() and unwrapped.erroneous_spots()


class TestReportFormat:
    def test_report_structure(self):
        analysis = analyze_source(
            "(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))",
            [[0.1, 1e-9], [0.2, -2e-9]],
        )
        report = generate_report(analysis)
        text = report.format()
        assert "Output @" in text
        assert "Influenced by erroneous expressions:" in text
        assert "(FPCore (" in text
        assert ":pre" in text
        assert "Example problematic input:" in text

    def test_clean_report(self):
        analysis = analyze_source("(FPCore (x) (+ x 1))", [[1.0]])
        assert generate_report(analysis).format() == "No erroneous spots detected.\n"

    def test_branch_heading(self):
        analysis = analyze_source(
            "(FPCore (x) (if (== (+ x 1) x) 1 0))", [[1e16]]
        )
        text = generate_report(analysis).format()
        assert "Compare @" in text
        assert "incorrect values of" in text
