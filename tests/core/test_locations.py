"""Tests for per-node source locations (paper footnote 5)."""

from repro.core import AnalysisConfig, analyze_program
from repro.core.locations import format_located_expression, map_node_locations
from repro.machine import FunctionBuilder, Program

FAST = AnalysisConfig(shadow_precision=192)


def analysed_record():
    """A cross-file computation: (a+b at f1.c) - (a at f2.c) at f3.c."""
    fn = FunctionBuilder("main")
    a = fn.read()
    b = fn.read()
    total = fn.op("+", a, b, loc="f1.c:10")
    diff = fn.op("-", total, a, loc="f3.c:30")
    fn.out(diff, loc="f3.c:31")
    fn.halt()
    program = Program()
    program.add(fn.build())
    analysis, __ = analyze_program(program, [[1e16, 1.0]], config=FAST)
    causes = analysis.reported_root_causes()
    assert causes
    return causes[0]


class TestNodeLocations:
    def test_locations_per_operator(self):
        record = analysed_record()
        locations = record.node_locations()
        assert locations[()] == "f3.c:30"  # the root subtraction
        assert locations[(0,)] == "f1.c:10"  # the inner addition

    def test_located_rendering(self):
        record = analysed_record()
        text = record.located_expression()
        assert "f3.c:30" in text
        assert "f1.c:10" in text
        lines = text.splitlines()
        assert lines[0].startswith("(-")
        assert lines[1].strip().startswith("(+")

    def test_variables_have_no_location_entries(self):
        record = analysed_record()
        locations = record.node_locations()
        # Only the two operator positions are mapped.
        assert set(locations) == {(), (0,)}

    def test_empty_for_missing_trace(self):
        from repro.core.records import OpRecord

        record = OpRecord(site_id=1, op="+", loc=None, config=FAST)
        assert record.node_locations() == {}
        assert record.located_expression() == "<no expression>"

    def test_format_handles_leaf_expression(self):
        from repro.fpcore.ast import Var

        assert format_located_expression(Var("x"), {}) == "x"


class TestEngineLocationParity:
    def test_branch_divergent_locations_match_reference(self):
        """The most-recent-trace contract across engines.

        A site fed through *different branch arms* computing
        structurally identical subexpressions at different source
        lines must report the last run's locations under both engines
        — the compiled engine's lazy end-of-run materialization may
        not serve a stale earlier trace.
        """
        from repro.fpcore import parse_fpcore
        from repro.machine import compile_fpcore

        core = parse_fpcore(
            "(FPCore (x) (* (if (< x 0) (+ x 1.5) (+ x 1.5)) 2.0))"
        )
        program = compile_fpcore(core)
        points = [[-1.0], [1.0]]
        locations = {}
        for engine in ("compiled", "reference"):
            analysis, __ = analyze_program(
                program, points, config=FAST.with_(engine=engine)
            )
            records = sorted(
                analysis.op_records.values(), key=lambda r: r.site_id
            )
            locations[engine] = [r.node_locations() for r in records]
        assert locations["compiled"] == locations["reference"]
