"""The deterministic fault-injection registry: spec grammar, firing
schedules, arming state, and corruption helpers."""

import os

import pytest

from repro.resilience import faults
from repro.resilience.errors import DegradableError, FaultInjected, KernelFault


class TestSpecGrammar:
    def test_bare_site(self):
        plan = faults.parse_spec("kernel.raise")
        rule = plan.rules["kernel.raise"]
        assert (rule.skip, rule.times, rule.p, rule.seed) == (0, None, 1.0, 0)

    def test_full_clause(self):
        plan = faults.parse_spec(
            "worker.exit:skip=2,times=3,p=0.5,seed=7"
        )
        rule = plan.rules["worker.exit"]
        assert (rule.skip, rule.times, rule.p, rule.seed) == (2, 3, 0.5, 7)

    def test_multiple_clauses(self):
        plan = faults.parse_spec(
            "kernel.raise:times=1; store.write.truncate:skip=1 ;"
        )
        assert set(plan.rules) == {"kernel.raise", "store.write.truncate"}

    @pytest.mark.parametrize("bad", [
        ":times=1",              # empty seam name
        "site:times",            # missing '='
        "site:times=x",          # non-integer
        "site:p=1.5",            # out of range
        "site:skip=-1",          # negative
        "site:frobnicate=1",     # unknown parameter
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_spec(bad)


class TestFiringSchedules:
    def test_skip_then_times(self):
        plan = faults.parse_spec("s:skip=2,times=2")
        fires = [plan.fire("s") for _ in range(6)]
        assert fires == [False, False, True, True, False, False]

    def test_unknown_site_never_fires(self):
        plan = faults.parse_spec("s")
        assert not plan.fire("other")
        assert plan.fire("s")

    def test_probabilistic_stream_is_deterministic(self):
        plan_b = faults.parse_spec("s:p=0.5,seed=3")
        plan_c = faults.parse_spec("s:p=0.5,seed=3")
        draws_b = [plan_b.fire("s") for _ in range(64)]
        draws_c = [plan_c.fire("s") for _ in range(64)]
        assert draws_b == draws_c
        assert True in draws_b and False in draws_b

    def test_streams_keyed_per_site(self):
        plan = faults.parse_spec("a:p=0.5,seed=3;b:p=0.5,seed=3")
        draws_a = [plan.fire("a") for _ in range(64)]
        draws_b = [plan.fire("b") for _ in range(64)]
        assert draws_a != draws_b  # independent (seed, site) streams


class TestModuleState:
    def test_dormant_by_default(self):
        faults.uninstall()
        assert not faults.active()
        assert not faults.fire("anything")
        assert faults.snapshot() == {}

    def test_injected_restores_previous_plan_and_env(self):
        faults.uninstall()
        with faults.injected("outer.site:times=1"):
            assert faults.armed("outer.site")
            assert os.environ[faults.ENV_VAR] == "outer.site:times=1"
            with faults.injected("inner.site"):
                assert faults.armed("inner.site")
                assert not faults.armed("outer.site")
            assert faults.armed("outer.site")
            assert os.environ[faults.ENV_VAR] == "outer.site:times=1"
        assert not faults.active()
        assert faults.ENV_VAR not in os.environ

    def test_env_var_loads_lazily(self, monkeypatch):
        faults.uninstall()
        monkeypatch.setenv(faults.ENV_VAR, "env.site:times=1")
        # uninstall marked the env as consumed; force a re-load the way
        # a fresh worker process would see it.
        faults._env_loaded = False
        faults._plan = None
        assert faults.active()
        assert faults.armed("env.site")
        faults.uninstall()

    def test_trip_raises_typed_error_with_seam(self):
        with faults.injected("k.raise:times=1"):
            with pytest.raises(KernelFault) as info:
                faults.trip("k.raise", KernelFault)
            assert info.value.seam == "k.raise"
            assert isinstance(info.value, DegradableError)
            faults.trip("k.raise", KernelFault)  # exhausted: no raise

    def test_fired_counter(self):
        with faults.injected("s:times=2"):
            assert faults.fired("s") == 0
            faults.fire("s")
            faults.fire("s")
            faults.fire("s")
            assert faults.fired("s") == 2


class TestCorruptText:
    def test_truncate_halves(self):
        with faults.injected("store.write.truncate:times=1"):
            text = '{"key": "value"}'
            assert faults.corrupt_text("store.write", text) == \
                text[: len(text) // 2]
            # Exhausted: passthrough.
            assert faults.corrupt_text("store.write", text) == text

    def test_empty_empties(self):
        with faults.injected("store.read.empty:times=1"):
            assert faults.corrupt_text("store.read", "{}") == ""

    def test_dormant_passthrough(self):
        faults.uninstall()
        assert faults.corrupt_text("store.write", "{}") == "{}"

    def test_default_exception_type(self):
        with faults.injected("s"):
            with pytest.raises(FaultInjected):
                faults.trip("s")
