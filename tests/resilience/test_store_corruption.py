"""Store corruption chaos: torn writes and reads are quarantined to a
sidecar and recomputed — never served, never fatal."""

import hashlib
import json
import os

from repro.api.store import ShardedResultStore
from repro.resilience import faults


def _digest(tag) -> str:
    return hashlib.sha256(str(tag).encode()).hexdigest()


PAYLOAD = json.dumps({"benchmark": "t", "value": [1.0, 2.0, 3.0]})


class TestWriteCorruption:
    def test_truncated_write_reads_as_miss_and_quarantines(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        digest = _digest("a")
        with faults.injected("store.write.truncate:times=1"):
            store.put_text(digest, PAYLOAD)
        # The entry on disk is torn; the read must not serve it.
        assert store.get_text(digest) is None
        assert os.path.exists(store.path(digest) + ".quarantine")
        assert not os.path.exists(store.path(digest))
        stats = store.stats()
        assert stats["corrupt"] == 1
        assert stats["quarantined"] == 1
        # The recompute path: a clean rewrite fully recovers the entry.
        store.put_text(digest, PAYLOAD)
        assert store.get_text(digest) == PAYLOAD

    def test_zero_byte_write_reads_as_miss(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        digest = _digest("b")
        with faults.injected("store.write.empty:times=1"):
            store.put_text(digest, PAYLOAD)
        assert store.get_text(digest) is None
        assert os.path.exists(store.path(digest) + ".quarantine")

    def test_quarantined_sidecar_is_invisible_to_readers(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        digest = _digest("c")
        with faults.injected("store.write.truncate:times=1"):
            store.put_text(digest, PAYLOAD)
        store.get_text(digest)  # quarantines
        assert digest not in store
        assert list(store.iter_digests()) == []


class TestReadCorruption:
    def test_torn_read_is_not_served(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        digest = _digest("d")
        store.put_text(digest, PAYLOAD)
        with faults.injected("store.read.truncate:times=1"):
            assert store.get_text(digest) is None
        # The on-disk entry was intact; only the read was torn — but
        # the conservative response is quarantine + recompute, and the
        # recompute rewrites the entry.
        store.put_text(digest, PAYLOAD)
        assert store.get_text(digest) == PAYLOAD

    def test_legacy_entry_corruption_is_quarantined(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        digest = _digest("e")
        legacy = store.legacy_path(digest)
        os.makedirs(os.path.dirname(legacy), exist_ok=True)
        with open(legacy, "w", encoding="utf-8") as handle:
            handle.write('{"truncat')  # a killed legacy writer
        assert store.get_text(digest) is None
        assert os.path.exists(legacy + ".quarantine")


class TestKilledWriterArtifacts:
    """Corruption landed directly on disk, no seams: the store must
    harden against artifacts it did not write itself."""

    def test_hand_planted_zero_byte_entry(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        digest = _digest("f")
        path = store.path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        open(path, "w").close()
        assert store.get_text(digest) is None
        assert os.path.exists(path + ".quarantine")

    def test_hand_planted_partial_json(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        digest = _digest("g")
        path = store.path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(PAYLOAD[: len(PAYLOAD) // 2])
        assert store.get_text(digest) is None
        stats = store.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 0
