"""Shared fixtures for the chaos suite.

Reuses the real-socket :class:`ServerHarness` from the serving tests
(loaded by file path — ``tests/`` is not a package) and guarantees that
no test leaks an armed fault plan into the rest of the run: faults are
force-uninstalled after every test, whether it used
:func:`repro.resilience.faults.injected` or not.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

from repro.resilience import faults

_SERVE_CONFTEST = (
    pathlib.Path(__file__).resolve().parent.parent / "serve" / "conftest.py"
)
_spec = importlib.util.spec_from_file_location(
    "_serve_conftest_for_resilience", _SERVE_CONFTEST
)
_serve_conftest = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_serve_conftest)

ServerHarness = _serve_conftest.ServerHarness


@pytest.fixture(autouse=True)
def _no_fault_leaks():
    """Chaos tests control their own seams exactly.

    Uninstalls before each test (an ambient plan — e.g. a CI
    ``REPRO_FAULTS`` suite leg — would skew assertions about *which*
    faults fired) and after it (a leaked plan would silently chaos the
    rest of the suite).
    """
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture()
def harness_factory():
    """Build server harnesses that are always stopped at test exit."""
    created = []

    def make(**service_kwargs) -> ServerHarness:
        harness = ServerHarness(**service_kwargs)
        created.append(harness)
        return harness

    yield make
    for harness in created:
        harness.stop()
