"""Degraded-vs-clean byte identity: every result the ladder rescues
must serialize to exactly the bytes of the fault-free run.

This is the chaos suite's headline guarantee, and it is what makes the
ladder *sound*: the standing parity invariant (engine × policy ×
substrate × batched, pinned by ``tests/core/test_engine_parity.py`` and
friends) means a slower rung is the same analysis, so degrading can
never change an answer — only its cost.
"""

import pytest

from repro.api import AnalysisSession, results_to_json
from repro.core import AnalysisConfig
from repro.fpcore import load_corpus
from repro.resilience import faults
from repro.resilience.errors import OpBudgetExceeded
from repro.resilience.ladder import (
    RUNG_PYTHON_SUBSTRATE,
    RUNG_REFERENCE,
    RUNG_SEQUENTIAL,
    RUNG_WORKING_TIER,
)

#: A cross-family slice of the corpus — enough shapes to exercise the
#: trace pool, anti-unification, and the batched layer, small enough
#: for a chaos test.
CORPUS_SLICE = slice(0, 8)


def _corpus_json(points=2, seed=13, degrade=None, **config_fields):
    config = AnalysisConfig(**config_fields)
    session = AnalysisSession(
        config=config, num_points=points, seed=seed,
        result_cache_size=0, degrade=degrade,
    )
    cores = load_corpus()[CORPUS_SLICE]
    results = session.analyze_batch(cores, workers=1)
    return results_to_json(results), results


class TestEngineFaultParity:
    def test_compiled_engine_fault_converges_byte_identical(self):
        clean, __ = _corpus_json(engine="compiled")
        with faults.injected("engine.compiled.raise"):
            degraded, results = _corpus_json(engine="compiled")
        assert degraded == clean
        for result in results:
            record = result.extra["degradation"]
            assert record["rung"] == RUNG_REFERENCE
            assert [a["rung"] for a in record["attempts"]] == \
                ["initial", RUNG_SEQUENTIAL]

    def test_batched_fault_lands_on_sequential_rung(self):
        clean, __ = _corpus_json(points=4, engine="compiled")
        with faults.injected("engine.batched.raise"):
            degraded, results = _corpus_json(points=4, engine="compiled")
        assert degraded == clean
        for result in results:
            assert result.extra["degradation"]["rung"] == RUNG_SEQUENTIAL


class TestKernelFaultParity:
    def test_native_kernel_fault_falls_back_to_python(self):
        clean, __ = _corpus_json(engine="compiled", substrate="native")
        with faults.injected("kernel.native.raise"):
            degraded, results = _corpus_json(
                engine="compiled", substrate="native"
            )
        assert degraded == clean
        for result in results:
            assert result.extra["degradation"]["rung"] == \
                RUNG_PYTHON_SUBSTRATE


class TestPolicyFaultParity:
    def test_hw_tier_fault_lands_on_working_tier_rung(self):
        clean, __ = _corpus_json(
            engine="compiled", precision_policy="adaptive"
        )
        with faults.injected("policy.hwtier.raise"):
            degraded, results = _corpus_json(
                engine="compiled", precision_policy="adaptive"
            )
        assert degraded == clean
        # The seam trips at analysis setup whenever the hardware tier
        # is armed, so every benchmark degrades — and each one must
        # stop at the first rung: BigFloat working-tier shadows with
        # the rest of the stack (batching, engine, substrate) intact.
        for result in results:
            record = result.extra["degradation"]
            assert record["rung"] == RUNG_WORKING_TIER
            assert [a["rung"] for a in record["attempts"]] == ["initial"]

    def test_adaptive_fault_falls_back_to_fixed_policy(self):
        clean, __ = _corpus_json(
            engine="compiled", precision_policy="adaptive"
        )
        with faults.injected("policy.adaptive.raise"):
            degraded, results = _corpus_json(
                engine="compiled", precision_policy="adaptive"
            )
        assert degraded == clean
        degraded_rungs = {
            result.extra["degradation"]["rung"]
            for result in results if "degradation" in result.extra
        }
        # Only benchmarks whose analysis escalates trip the seam; each
        # one must converge at the fixed-policy rung.
        assert degraded_rungs == {"fixed-policy"}


class TestProbabilisticFaultParity:
    def test_flaky_backend_is_invisible_in_the_bytes(self):
        clean, __ = _corpus_json(engine="compiled")
        with faults.injected("backend.flaky:p=0.5,seed=11"):
            degraded, __ = _corpus_json(engine="compiled")
            assert faults.fired("backend.flaky") > 0
        assert degraded == clean


class TestSerializationContract:
    def test_degradation_never_reaches_the_json(self):
        with faults.injected("engine.compiled.raise"):
            text, results = _corpus_json(engine="compiled")
        assert "degradation" not in text
        assert all("degradation" in r.extra for r in results)


class TestResourceGuards:
    def test_op_budget_exhausts_every_rung(self):
        session = AnalysisSession(
            config=AnalysisConfig(op_budget=1), num_points=2,
            result_cache_size=0,
        )
        with pytest.raises(OpBudgetExceeded):
            session.analyze(load_corpus()[0])

    def test_generous_guard_is_invisible_in_the_bytes(self):
        clean, __ = _corpus_json(engine="compiled")
        guarded_session = AnalysisSession(
            config=AnalysisConfig(
                engine="compiled", deadline_seconds=3600.0,
                op_budget=10**12,
            ),
            num_points=2, seed=13, result_cache_size=0,
        )
        guarded = results_to_json(guarded_session.analyze_batch(
            load_corpus()[CORPUS_SLICE], workers=1
        ))
        assert guarded == clean

    def test_no_degrade_propagates_guard_violation(self):
        session = AnalysisSession(
            config=AnalysisConfig(op_budget=1), num_points=2,
            result_cache_size=0, degrade=False,
        )
        with pytest.raises(OpBudgetExceeded):
            session.analyze(load_corpus()[0])
