"""Serving-stack chaos: workers dying mid-task, poison requests,
reset sockets, and degradation surfacing in ``/v1/stats`` — all over
real sockets and real worker processes."""

import http.client

import pytest

from repro.api import AnalysisSession, request_digest
from repro.core import AnalysisConfig
from repro.resilience import faults
from repro.serve import ServeError

CORE = "(FPCore (x) :name \"t\" :pre (<= 1e16 x 1e17) (- (+ x 1) x))"
FAST = AnalysisConfig(shadow_precision=96)


def _request(**overrides):
    session = AnalysisSession(config=FAST, num_points=3)
    return session.request(CORE, **overrides)


def _expected_json(request):
    return AnalysisSession(config=FAST, num_points=3).analyze(
        request
    ).to_json()


class TestWorkerExit:
    def test_killed_worker_then_recovery(self, harness_factory):
        # skip=1,times=1 with per-process counters: every worker
        # process survives its first task and dies on its second — a
        # deterministic crash/recover alternation.  The plan crosses
        # the fork via REPRO_FAULTS.
        warmup = _request(seed=20)
        request = _request(seed=21)
        expected = _expected_json(request)
        with faults.injected("worker.exit:skip=1,times=1"):
            harness = harness_factory(workers=1, timeout=60.0)
            with harness.client() as client:
                assert client.analyze(warmup).status == 200
                with pytest.raises(ServeError) as info:
                    client.analyze(request)
                assert info.value.status == 500
                assert info.value.error_type == "worker_crashed"
                # The pool respawned the worker; the same request now
                # computes, byte-identical to the clean run.
                reply = client.analyze(request)
        assert reply.status == 200
        assert reply.text == expected
        stats = harness.service.stats()
        assert stats["pool"]["crashes"] >= 1
        assert stats["pool"]["restarts"] >= 1

    def test_client_retries_ride_out_worker_deaths(self, harness_factory):
        warmup = _request(seed=22)
        request = _request(seed=23)
        expected = _expected_json(request)
        with faults.injected("worker.exit:skip=1,times=1"):
            harness = harness_factory(workers=1, timeout=60.0)
            with harness.client() as client:
                client.retries = 3
                client.backoff_base = 0.01
                assert client.analyze(warmup).status == 200
                # This one crashes its worker; the client absorbs the
                # structured 500 and retries against the respawn.
                reply = client.analyze(request)
        assert reply.status == 200
        assert reply.text == expected  # byte-identical despite the chaos
        stats = harness.service.stats()
        assert stats["pool"]["crashes"] >= 1
        assert stats["pool"]["restarts"] >= 1


class TestPoisonQuarantine:
    def test_repeat_killer_digest_is_quarantined(self, harness_factory):
        request = _request(seed=33)
        digest = request_digest(request)
        # Unbounded worker.exit: this request kills every worker that
        # picks it up, forever — the poison-request shape.
        with faults.injected("worker.exit"):
            harness = harness_factory(
                workers=1, timeout=60.0, poison_threshold=2
            )
            with harness.client() as client:
                for _ in range(2):
                    with pytest.raises(ServeError) as info:
                        client.analyze(request)
                    assert info.value.error_type == "worker_crashed"
                # Threshold reached: the breaker answers without
                # touching the pool, so no further respawn loop.
                crashes_before = harness.service.pool.stats()["crashes"]
                with pytest.raises(ServeError) as info:
                    client.analyze(request)
                assert info.value.error_type == "quarantined"
                assert info.value.digest == digest
                assert harness.service.pool.stats()["crashes"] == \
                    crashes_before
                stats = harness.service.stats()
                assert stats["quarantined_digests"] == 1
                assert stats["service"]["quarantined"] == 1

    def test_success_resets_the_failure_count(self, harness_factory):
        warmup = _request(seed=35)
        request = _request(seed=34)
        # One crash, then a success on the retry: the consecutive
        # counter must reset, so the digest is never quarantined even
        # at the lowest meaningful threshold.
        with faults.injected("worker.exit:skip=1,times=1"):
            harness = harness_factory(
                workers=1, timeout=60.0, poison_threshold=2
            )
            with harness.client() as client:
                client.retries = 3
                client.backoff_base = 0.01
                assert client.analyze(warmup).status == 200
                reply = client.analyze(request)  # crash, retry, success
                assert reply.status == 200
                stats = harness.service.stats()
                assert stats["pool"]["crashes"] >= 1
                assert stats["quarantined_digests"] == 0


class TestDegradationSurfacing:
    def test_degraded_result_is_byte_identical_and_counted(
        self, harness_factory
    ):
        request = _request(seed=55)
        expected = _expected_json(request)
        # backend.flaky trips once per worker process on the compiled
        # engine; the in-worker ladder absorbs it and the reply carries
        # the degradation sidecar.
        with faults.injected("backend.flaky:times=1"):
            harness = harness_factory(workers=1, timeout=60.0)
            with harness.client() as client:
                reply = client.analyze(request)
        assert reply.status == 200
        assert reply.text == expected
        stats = harness.service.stats()
        assert stats["service"]["degraded"] == 1
        assert sum(stats["degraded_rungs"].values()) == 1
        assert set(stats["degraded_rungs"]) <= {
            "sequential", "reference-engine",
        }

    def test_clean_requests_report_no_degradation(self, harness_factory):
        harness = harness_factory(workers=1, timeout=60.0)
        with harness.client() as client:
            reply = client.analyze(_request(seed=56))
        assert reply.status == 200
        stats = harness.service.stats()
        assert stats["service"]["degraded"] == 0
        assert stats["degraded_rungs"] == {}


class TestSocketReset:
    def test_reset_connection_is_retried_transparently(
        self, harness_factory
    ):
        request = _request(seed=77)
        expected = _expected_json(request)
        harness = harness_factory(workers=1, timeout=60.0)
        # Arm only the parent (server) process — no env export, so the
        # already-forked workers are unaffected.  times=2 defeats the
        # client's built-in single stale-connection re-send, so the
        # outer retry loop is what saves the exchange.
        with faults.injected("socket.reset:times=2", export_env=False):
            with harness.client() as client:
                client.retries = 2
                client.backoff_base = 0.01
                reply = client.analyze(request)
        assert reply.status == 200
        assert reply.text == expected

    def test_without_retries_the_reset_is_visible(self, harness_factory):
        harness = harness_factory(workers=1, timeout=60.0)
        with faults.injected("socket.reset:times=2", export_env=False):
            with harness.client() as client:
                with pytest.raises(
                    (ConnectionError, OSError, http.client.HTTPException)
                ):
                    client.analyze(_request(seed=78))


class TestStoreQuarantineThroughService:
    def test_corrupt_store_entry_recomputes_not_crashes(
        self, harness_factory, tmp_path
    ):
        from repro.api.store import ShardedResultStore

        request = _request(seed=99)
        expected = _expected_json(request)
        digest = request_digest(request)
        # Plant a torn entry where the service's store will look.
        store = ShardedResultStore(str(tmp_path))
        with faults.injected("store.write.truncate:times=1"):
            store.put_text(digest, expected)
        harness = harness_factory(
            store=ShardedResultStore(str(tmp_path)), workers=1,
            timeout=60.0,
        )
        with harness.client() as client:
            reply = client.analyze(request)
            assert reply.status == 200
            assert reply.text == expected
            assert reply.source == "computed"  # recomputed, not served
            # The rewrite healed the entry: now it is a store hit.
            again = harness.client()
            with again:
                warm = again.result_text(digest)
            assert warm.text == expected
        stats = harness.service.stats()
        assert stats["store"]["quarantined"] == 1
