"""The degradation ladder: classification, rung planning, and the
retry driver — unit-level, with stub executors."""

import pytest

from repro.api import AnalysisSession
from repro.core import AnalysisConfig
from repro.machine.interpreter import MachineError
from repro.resilience.errors import (
    EngineFault,
    KernelFault,
    OpBudgetExceeded,
)
from repro.resilience.ladder import (
    RUNG_FIXED_POLICY,
    RUNG_PYTHON_SUBSTRATE,
    RUNG_REFERENCE,
    RUNG_SEQUENTIAL,
    RUNG_WORKING_TIER,
    DegradationLadder,
    classify,
    degradation_enabled,
    run_with_ladder,
)

CORE = "(FPCore (x) :name \"t\" :pre (<= 1 x 2) (+ x 1))"


def _request(**config_fields):
    config = AnalysisConfig(shadow_precision=96, **config_fields)
    return AnalysisSession(config=config, num_points=2).request(CORE)


class TestClassify:
    def test_degradable_errors(self):
        assert classify(KernelFault("k")) == "KernelFault"
        assert classify(EngineFault("e")) == "EngineFault"
        assert classify(OpBudgetExceeded("b")) == "OpBudgetExceeded"
        assert classify(MachineError("m")) == "MachineError"

    def test_foreign_errors_are_not_ours(self):
        assert classify(ValueError("v")) is None
        assert classify(KeyboardInterrupt()) is None


class TestPlanning:
    def test_full_ladder_from_the_top(self):
        request = _request(engine="compiled", substrate="native",
                           precision_policy="adaptive")
        plan = DegradationLadder(enabled=True).plan(request)
        names = [name for name, _ in plan]
        assert names == [RUNG_WORKING_TIER, RUNG_SEQUENTIAL,
                         RUNG_REFERENCE, RUNG_PYTHON_SUBSTRATE,
                         RUNG_FIXED_POLICY]
        bottom = plan[-1][1]
        assert bottom.config.engine == "reference"
        assert bottom.config.substrate == "python"
        assert bottom.config.precision_policy == "fixed"
        assert bottom.config.hw_tier is False

    def test_rungs_are_cumulative(self):
        request = _request(engine="compiled", substrate="native")
        plan = dict(DegradationLadder(enabled=True).plan(request))
        assert plan[RUNG_PYTHON_SUBSTRATE].config.engine == "reference"

    def test_working_tier_rung_only_disables_hw_tier(self):
        request = _request(engine="compiled",
                           precision_policy="adaptive")
        plan = dict(DegradationLadder(enabled=True).plan(request))
        working = plan[RUNG_WORKING_TIER]
        assert working.config.hw_tier is False
        assert working.config == request.config.with_(hw_tier=False)
        assert working.features is request.features
        # Every rung below it keeps the hardware tier off (cumulative).
        assert plan[RUNG_SEQUENTIAL].config.hw_tier is False
        assert plan[RUNG_REFERENCE].config.hw_tier is False

    def test_fixed_policy_has_no_working_tier_rung(self):
        request = _request(engine="compiled")
        plan = dict(DegradationLadder(enabled=True).plan(request))
        assert RUNG_WORKING_TIER not in plan

    def test_hw_tier_off_skips_the_working_tier_rung(self):
        request = _request(engine="compiled",
                           precision_policy="adaptive", hw_tier=False)
        plan = dict(DegradationLadder(enabled=True).plan(request))
        assert RUNG_WORKING_TIER not in plan

    def test_sequential_rung_only_disables_batching(self):
        request = _request(engine="compiled")
        plan = dict(DegradationLadder(enabled=True).plan(request))
        sequential = plan[RUNG_SEQUENTIAL]
        assert sequential.config == request.config
        assert sequential.features is not None
        assert sequential.features.batched is False

    def test_bottom_configuration_has_no_ladder(self):
        request = _request(engine="reference", substrate="python",
                           precision_policy="fixed")
        assert DegradationLadder(enabled=True).plan(request) == []

    def test_requests_keep_identity_fields(self):
        request = _request(engine="compiled", substrate="native")
        for _, degraded in DegradationLadder(enabled=True).plan(request):
            assert degraded.name == request.name
            assert degraded.seed == request.seed
            assert degraded.num_points == request.num_points


class _Recorder:
    """An executor stub that fails per-script and records the configs."""

    def __init__(self, failures):
        self.failures = dict(failures)
        self.calls = []

    def __call__(self, request):
        key = self._key(request)
        self.calls.append(key)
        exc = self.failures.get(key)
        if exc is not None:
            raise exc
        from repro.api.results import AnalysisResult

        return AnalysisResult(benchmark="stub", backend="stub",
                              seed=0, num_points=1)

    @staticmethod
    def _key(request):
        if request.features is not None and not request.features.batched:
            return RUNG_SEQUENTIAL
        config = request.config
        if config.engine == "compiled":
            if config.hw_tier is False:
                return RUNG_WORKING_TIER
            return "initial"
        if config.substrate != "python":
            return RUNG_REFERENCE
        if config.precision_policy != "fixed":
            return RUNG_PYTHON_SUBSTRATE
        return RUNG_FIXED_POLICY


class TestDriver:
    def test_success_needs_no_ladder(self):
        execute = _Recorder({})
        result = run_with_ladder(_request(engine="compiled"), execute,
                                 enabled=True)
        assert execute.calls == ["initial"]
        assert "degradation" not in result.extra

    def test_walks_down_until_success(self):
        request = _request(engine="compiled", substrate="native",
                           precision_policy="adaptive")
        execute = _Recorder({
            "initial": EngineFault("boom"),
            RUNG_WORKING_TIER: EngineFault("hw boom"),
            RUNG_SEQUENTIAL: EngineFault("still boom"),
            RUNG_REFERENCE: KernelFault("kernel boom"),
        })
        result = run_with_ladder(request, execute, enabled=True)
        record = result.extra["degradation"]
        assert record["degraded"] is True
        assert record["rung"] == RUNG_PYTHON_SUBSTRATE
        assert [a["rung"] for a in record["attempts"]] == \
            ["initial", RUNG_WORKING_TIER, RUNG_SEQUENTIAL,
             RUNG_REFERENCE]
        assert record["attempts"][3]["error"]["kind"] == "KernelFault"

    def test_non_degradable_error_propagates_immediately(self):
        execute = _Recorder({"initial": ValueError("not ours")})
        with pytest.raises(ValueError):
            run_with_ladder(_request(engine="compiled"), execute,
                            enabled=True)
        assert execute.calls == ["initial"]

    def test_dry_ladder_reraises_last_failure(self):
        request = _request(engine="compiled", substrate="native",
                           precision_policy="adaptive")
        execute = _Recorder({
            "initial": EngineFault("a"),
            RUNG_WORKING_TIER: EngineFault("a2"),
            RUNG_SEQUENTIAL: EngineFault("b"),
            RUNG_REFERENCE: EngineFault("c"),
            RUNG_PYTHON_SUBSTRATE: EngineFault("d"),
            RUNG_FIXED_POLICY: EngineFault("e"),
        })
        with pytest.raises(EngineFault, match="e"):
            run_with_ladder(request, execute, enabled=True)
        assert execute.calls == ["initial", RUNG_WORKING_TIER,
                                 RUNG_SEQUENTIAL, RUNG_REFERENCE,
                                 RUNG_PYTHON_SUBSTRATE,
                                 RUNG_FIXED_POLICY]

    def test_disabled_ladder_propagates_first_failure(self):
        execute = _Recorder({"initial": EngineFault("boom")})
        with pytest.raises(EngineFault):
            run_with_ladder(_request(engine="compiled"), execute,
                            enabled=False)
        assert execute.calls == ["initial"]


class TestSwitch:
    def test_explicit_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEGRADE", "0")
        assert degradation_enabled(True) is True
        assert degradation_enabled(None) is False

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("", True), ("0", False), ("false", False),
        ("OFF", False), ("yes", True),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_DEGRADE", value)
        assert degradation_enabled(None) is expected

    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEGRADE", raising=False)
        assert degradation_enabled(None) is True
