"""Client-side resilience: transient classification, exponential
backoff with deterministic jitter, and the Retry-After floor."""

import pytest

from repro.serve.client import ServeClient, ServeError, _retry_after


class TestTransientClassification:
    @pytest.mark.parametrize("status,error_type,expected", [
        (429, "queue_full", True),
        (503, "shutting_down", True),
        (500, "worker_crashed", True),
        (500, "analysis_error", False),   # deterministic: retry is futile
        (500, "quarantined", False),      # the breaker said stop
        (504, "analysis_timeout", False),  # slow is slow on retry too
        (400, "invalid_request", False),
        (404, "not_found", False),
    ])
    def test_matrix(self, status, error_type, expected):
        error = ServeError(
            status, {"error": {"type": error_type, "message": "m"}}
        )
        assert error.transient is expected

    def test_retry_after_is_carried(self):
        error = ServeError(429, {"error": {"type": "queue_full",
                                           "message": "m"}},
                           retry_after=2.0)
        assert error.retry_after == 2.0


class TestBackoffSchedule:
    def test_exponential_growth_within_jitter_band(self):
        client = ServeClient(backoff_base=0.1, backoff_cap=5.0,
                             jitter_seed=7)
        for attempt in range(6):
            delay = client._retry_delay(attempt, None)
            ideal = min(5.0, 0.1 * (2.0 ** attempt))
            assert 0.5 * ideal <= delay <= 1.5 * ideal

    def test_cap_bounds_the_delay(self):
        client = ServeClient(backoff_base=1.0, backoff_cap=2.0,
                             jitter_seed=0)
        assert client._retry_delay(30, None) <= 2.0 * 1.5

    def test_jitter_is_deterministic_per_seed(self):
        a = ServeClient(jitter_seed=42)
        b = ServeClient(jitter_seed=42)
        c = ServeClient(jitter_seed=43)
        seq_a = [a._retry_delay(i, None) for i in range(8)]
        seq_b = [b._retry_delay(i, None) for i in range(8)]
        seq_c = [c._retry_delay(i, None) for i in range(8)]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_retry_after_floors_the_delay(self):
        client = ServeClient(backoff_base=0.01, backoff_cap=0.1,
                             jitter_seed=1)
        assert client._retry_delay(0, 3.0) >= 3.0
        # ... but a tiny hint does not cancel a larger backoff.
        big = ServeClient(backoff_base=10.0, backoff_cap=10.0,
                          jitter_seed=1)
        assert big._retry_delay(0, 0.001) >= 5.0


class TestRetryAfterHeader:
    def test_parses_integer_seconds(self):
        assert _retry_after({"Retry-After": "5"}) == 5.0

    def test_parses_float_seconds(self):
        assert _retry_after({"Retry-After": "0.5"}) == 0.5

    def test_missing_header(self):
        assert _retry_after({}) is None

    def test_garbage_is_ignored(self):
        assert _retry_after({"Retry-After": "Thu, 01 Jan"}) is None

    def test_negative_clamped_to_zero(self):
        assert _retry_after({"Retry-After": "-3"}) == 0.0


class TestRetryLoop:
    """Drive _exchange against a stubbed _exchange_once — no sockets."""

    def _client(self, script, retries=3):
        client = ServeClient(retries=retries, backoff_base=0.0,
                             backoff_cap=0.0, jitter_seed=0)
        calls = []

        def fake_exchange_once(method, path, body=None):
            calls.append(path)
            action = script[min(len(calls) - 1, len(script) - 1)]
            if isinstance(action, Exception):
                raise action
            return action

        client._exchange_once = fake_exchange_once
        return client, calls

    def test_transient_errors_are_retried_to_success(self):
        reply = object()
        client, calls = self._client([
            ServeError(429, {"error": {"type": "queue_full",
                                       "message": "m"}}),
            ServeError(500, {"error": {"type": "worker_crashed",
                                       "message": "m"}}),
            reply,
        ])
        assert client._exchange("GET", "/v1/health") is reply
        assert len(calls) == 3

    def test_non_transient_error_raises_immediately(self):
        client, calls = self._client([
            ServeError(400, {"error": {"type": "invalid_request",
                                       "message": "m"}}),
        ])
        with pytest.raises(ServeError):
            client._exchange("GET", "/v1/health")
        assert len(calls) == 1

    def test_budget_exhaustion_raises_the_last_error(self):
        client, calls = self._client([
            ServeError(503, {"error": {"type": "shutting_down",
                                       "message": "m"}}),
        ], retries=2)
        with pytest.raises(ServeError) as info:
            client._exchange("GET", "/v1/health")
        assert info.value.status == 503
        assert len(calls) == 3  # initial + 2 retries

    def test_transport_errors_are_retried(self):
        reply = object()
        client, calls = self._client([
            ConnectionResetError("reset"),
            reply,
        ])
        assert client._exchange("GET", "/v1/health") is reply
        assert len(calls) == 2

    def test_zero_retries_preserves_legacy_behavior(self):
        client, calls = self._client([
            ServeError(429, {"error": {"type": "queue_full",
                                       "message": "m"}}),
        ], retries=0)
        with pytest.raises(ServeError):
            client._exchange("GET", "/v1/health")
        assert len(calls) == 1
