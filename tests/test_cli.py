"""Tests for the herbgrind-py command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_analyze_inline(self, capsys):
        code = main([
            "analyze",
            "(FPCore (x) :pre (<= 1e16 x 1e17) (- (+ x 1) x))",
            "--points", "4", "--precision", "192",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "erroneous values" in out
        assert "(FPCore" in out

    def test_analyze_file(self, tmp_path, capsys):
        path = tmp_path / "bench.fpcore"
        path.write_text("(FPCore (x) :pre (<= 1 x 10) (+ x 1))")
        code = main(["analyze", str(path), "--points", "4",
                     "--precision", "192"])
        assert code == 0
        assert "No erroneous spots" in capsys.readouterr().out

    def test_improve(self, capsys):
        code = main([
            "improve", "(- (exp x) 1)", "--range", "1e-12", "1e-6",
            "--points", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "expm1" in out

    def test_improve_no_variables(self, capsys):
        code = main(["improve", "(+ 1 2)"])
        assert code == 1

    def test_corpus_list(self, capsys):
        code = main(["corpus", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper-csqrt-imag" in out
        assert out.count("\n") == 86

    def test_corpus_single(self, capsys):
        code = main([
            "corpus", "--name", "paper-x-plus-1-minus-x",
            "--points", "4", "--precision", "192",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "max-error" in out

    def test_corpus_unknown_name(self):
        assert main(["corpus", "--name", "nope", "--points", "2"]) == 1

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_json(self, capsys):
        code = main([
            "analyze",
            "(FPCore (x) :pre (<= 1e16 x 1e17) (- (+ x 1) x))",
            "--points", "4", "--precision", "192", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["backend"] == "herbgrind"
        assert data["max_output_error"] > 50
        assert data["root_causes"]
        assert data["spots"]

    def test_analyze_alternate_backend(self, capsys):
        code = main([
            "analyze",
            "(FPCore (x) :pre (<= 1e16 x 1e17) (- (+ x 1) x))",
            "--points", "4", "--precision", "192",
            "--backend", "fpdebug", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["backend"] == "fpdebug"

    def test_corpus_json(self, capsys):
        code = main([
            "corpus", "--name", "paper-x-plus-1-minus-x",
            "--points", "4", "--precision", "192", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert isinstance(data, list) and len(data) == 1
        assert data[0]["benchmark"] == "paper-x-plus-1-minus-x"

    def test_analyze_non_herbgrind_backend_without_json(self, capsys):
        # Backends without a report renderer fall back to JSON instead
        # of crashing in generate_report.
        for backend in ("fpdebug", "bz", "verrou"):
            code = main([
                "analyze",
                "(FPCore (x) :pre (<= 1e16 x 1e17) (- (+ x 1) x))",
                "--points", "4", "--precision", "192",
                "--backend", backend,
            ])
            assert code == 0
            data = json.loads(capsys.readouterr().out)
            assert data["backend"] == backend

    def test_corpus_single_non_herbgrind_backend(self, capsys):
        code = main([
            "corpus", "--name", "paper-x-plus-1-minus-x",
            "--points", "4", "--precision", "192", "--backend", "bz",
        ])
        assert code == 0
        assert "max-error" in capsys.readouterr().out

    def test_backends_listed(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out.split()
        assert {"herbgrind", "fpdebug", "verrou", "bz"} <= set(out)
