"""Tests for the herbgrind-py command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_analyze_inline(self, capsys):
        code = main([
            "analyze",
            "(FPCore (x) :pre (<= 1e16 x 1e17) (- (+ x 1) x))",
            "--points", "4", "--precision", "192",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "erroneous values" in out
        assert "(FPCore" in out

    def test_analyze_file(self, tmp_path, capsys):
        path = tmp_path / "bench.fpcore"
        path.write_text("(FPCore (x) :pre (<= 1 x 10) (+ x 1))")
        code = main(["analyze", str(path), "--points", "4",
                     "--precision", "192"])
        assert code == 0
        assert "No erroneous spots" in capsys.readouterr().out

    def test_improve(self, capsys):
        code = main([
            "improve", "(- (exp x) 1)", "--range", "1e-12", "1e-6",
            "--points", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "expm1" in out

    def test_improve_no_variables(self, capsys):
        code = main(["improve", "(+ 1 2)"])
        assert code == 1

    def test_corpus_list(self, capsys):
        code = main(["corpus", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper-csqrt-imag" in out
        assert out.count("\n") == 86

    def test_corpus_single(self, capsys):
        code = main([
            "corpus", "--name", "paper-x-plus-1-minus-x",
            "--points", "4", "--precision", "192",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "max-error" in out

    def test_corpus_unknown_name(self):
        assert main(["corpus", "--name", "nope", "--points", "2"]) == 1

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
