"""Section 7: the three case studies as one regenerable table.

* Gram-Schmidt: Polybench 3.2.1's zero-column initializer produces a
  64-bit (NaN) error whose problematic input is the zero vector; the
  4.2.0 initializer is clean.
* PID: the t += 0.2 loop overruns its bound for some N (51 iterations
  for N = 10), caught as a branch divergence attributed to the
  increment.
* Dihedral: near-flat four-atom configurations lose most bits in the
  acos-based angle; the atan2 form is stable.
"""

from __future__ import annotations

import random

from repro.apps.dihedral import (
    generic_configuration,
    near_flat_configuration,
    run_dihedral,
)
from repro.apps.gramschmidt import (
    INIT_POLYBENCH_3_2_1,
    INIT_POLYBENCH_4_2_0,
    run_gramschmidt,
)
from repro.apps.pid import sweep_bounds
from repro.core import AnalysisConfig

from conftest import write_result

CONFIG = AnalysisConfig(shadow_precision=256, max_expression_depth=6)


def test_sec7_case_studies(benchmark):
    def experiment():
        buggy = run_gramschmidt(rows=6, cols=4, config=CONFIG)
        fixed = run_gramschmidt(
            rows=6, cols=4, initializer=INIT_POLYBENCH_4_2_0, config=CONFIG
        )
        pid_results = sweep_bounds([2.0, 4.0, 6.0, 8.0, 10.0])
        rng = random.Random(3)
        flats = [near_flat_configuration(rng) for __ in range(8)]
        generics = [generic_configuration(rng) for __ in range(8)]
        naive_dihedral = run_dihedral(flats + generics, config=CONFIG)
        fixed_dihedral = run_dihedral(
            flats + generics, fixed=True, config=CONFIG
        )
        return buggy, fixed, pid_results, naive_dihedral, fixed_dihedral

    buggy, fixed, pid_results, naive_d, fixed_d = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    lines = [
        "Section 7 — case studies",
        "",
        "Gram-Schmidt (Polybench):",
        f"  3.2.1 initializer: {buggy.nan_outputs} NaN outputs of"
        f" {len(buggy.outputs)}; max error"
        f" {max(s.max_error for s in buggy.analysis.erroneous_spots()):.0f}"
        " bits (paper: 64 bits)",
        f"  4.2.0 initializer: {fixed.nan_outputs} NaN outputs,"
        f" {len(fixed.analysis.erroneous_spots())} erroneous spots",
        "",
        "PID controller (t += 0.2 loop):",
        "  bound  iterations  exact  divergences",
    ]
    for result in pid_results:
        lines.append(
            f"  {result.bound:5.1f}  {result.iterations:10d}"
            f"  {result.expected_iterations:5d}"
            f"  {result.branch_divergences:11d}"
        )
    lines += [
        "  (paper: N = 10 runs 51 times, not 50)",
        "",
        "Gromacs dihedral angles (8 near-flat + 8 generic):",
        f"  acos formula:  {naive_d.erroneous_angles} of"
        f" {len(naive_d.angles)} erroneous",
        f"  atan2 formula: {fixed_d.erroneous_angles} of"
        f" {len(fixed_d.angles)} erroneous",
    ]
    write_result("sec7_casestudies", "\n".join(lines))

    n10 = next(r for r in pid_results if r.bound == 10.0)
    benchmark.extra_info.update(
        {
            "gramschmidt_nans": buggy.nan_outputs,
            "pid_n10_iterations": n10.iterations,
            "dihedral_naive_errors": naive_d.erroneous_angles,
        }
    )
    assert buggy.nan_outputs > 0 and fixed.nan_outputs == 0
    assert n10.iterations == 51
    assert naive_d.erroneous_angles > 0 and fixed_d.erroneous_angles == 0
