#!/usr/bin/env python3
"""Adaptive-precision tiers: equivalence, speedup, and cache benchmark.

Measures the tiered shadow substrate (``repro.bigfloat.policy``)
against the paper's fixed 1000-bit mode and emits
``BENCH_precision.json``:

* **Equivalence** — the adaptive policy must produce *byte-identical*
  result JSON (same candidates, same root causes, same error
  statistics) over the corpus and identical analysis signatures on the
  case-study apps.  Any mismatch fails the run.
* **Speedup** — wall-clock fixed vs adaptive, reported per suite:

  - ``corpus``  — every benchmark (dominated by the loop benchmarks,
    whose cost is the Python interpreter and anti-unification, not
    shadow arithmetic — adaptive neither helps nor hurts much there);
  - ``kernel``  — the precision-bound suite: straight-line benchmarks
    whose expression contains a *heavy* library kernel (log family,
    trig, inverse trig, atanh/asinh, pow, atan2 — the calls measured
    at >= ~150us each at 1000 bits, 5-10x their working-tier cost; the
    unit-cost table is part of the output).  This is the workload the
    adaptive tier exists for; the headline ``speedup`` field is this
    suite's median per-benchmark wall-clock ratio (the aggregate ratio
    is reported alongside).

* **Result cache** — a cold corpus batch vs a warm rerun of the same
  batch through ``AnalysisSession``'s result cache (and a disk-warm
  rerun in a fresh session via ``cache_dir``); the warm rerun must
  complete in under 10% of the cold time.

Usage::

    PYTHONPATH=src python benchmarks/bench_precision_tiers.py \
        [--points 8] [--kernel-points 32] [--slice N] [--repeat 2] \
        [--out BENCH_precision.json] [--require-speedup 2.0]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import statistics
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import AnalysisSession, results_to_json
from repro.core import AnalysisConfig, analyze_program
from repro.fpcore import load_corpus
from repro.fpcore.printer import format_fpcore

#: Library kernels whose 1000-bit software implementations cost
#: >= ~150us per call (measured by :func:`bench_kernel_unit_costs` and
#: recorded in the output) — 5-10x their working-tier cost.  These are
#: the calls the fixed tier actually spends its time in; benchmarks
#: containing one define the precision-bound suite.
HEAVY_KERNELS = (
    "log", "log2", "log10", "log1p", "pow", "sin", "cos", "tan", "asin",
    "acos", "atan", "atan2", "asinh", "atanh",
)

_KERNEL_RE = re.compile(r"\(\s*(%s)\b" % "|".join(HEAVY_KERNELS))

FULL_PRECISION = 1000


def fixed_config() -> AnalysisConfig:
    return AnalysisConfig(shadow_precision=FULL_PRECISION)


def adaptive_config() -> AnalysisConfig:
    return AnalysisConfig(
        shadow_precision=FULL_PRECISION, precision_policy="adaptive"
    )


def is_kernel_bound(core) -> bool:
    """Straight-line and containing an expensive library kernel."""
    text = format_fpcore(core)
    return bool(_KERNEL_RE.search(text)) and "(while" not in text


def timed_batch(
    cores, config: AnalysisConfig, points: int, seed: int, repeat: int
) -> Tuple[List, float]:
    best: Optional[float] = None
    results = None
    for __ in range(repeat):
        session = AnalysisSession(
            config=config, num_points=points, seed=seed,
            result_cache_size=0,
        )
        start = time.perf_counter()
        results = session.analyze_batch(cores, workers=1)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return results, best


def escalation_stats(results) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for result in results:
        if result.raw is None or not hasattr(result.raw, "policy"):
            continue
        for key, value in result.raw.policy.stats.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def bench_suite(
    name: str, cores, points: int, seed: int, repeat: int
) -> Dict:
    fixed_results, fixed_time = timed_batch(
        cores, fixed_config(), points, seed, repeat
    )
    adaptive_results, adaptive_time = timed_batch(
        cores, adaptive_config(), points, seed, repeat
    )
    identical = results_to_json(fixed_results) == \
        results_to_json(adaptive_results)
    mismatches = []
    if not identical:
        for fr, ar in zip(fixed_results, adaptive_results):
            if fr.to_json() != ar.to_json():
                mismatches.append(fr.benchmark)
    return {
        "benchmarks": len(cores),
        "num_points": points,
        "fixed_seconds": round(fixed_time, 4),
        "adaptive_seconds": round(adaptive_time, 4),
        "aggregate_speedup": round(fixed_time / adaptive_time, 3),
        "report_identical": identical,
        "mismatched_benchmarks": mismatches,
        "escalations": escalation_stats(adaptive_results),
    }


def timed_single_steady(
    core, config: AnalysisConfig, points: int, seed: int, repeat: int
) -> float:
    """Steady-state analysis time: program and input-set caches warm,
    result cache off, so only the analysis itself is on the clock."""
    session = AnalysisSession(
        config=config, num_points=points, seed=seed, result_cache_size=0
    )
    session.analyze(core)  # warm the compile/sampling caches
    best = None
    for __ in range(max(2, repeat)):
        start = time.perf_counter()
        session.analyze(core)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def bench_kernel_details(
    cores, points: int, seed: int, repeat: int
) -> Dict:
    """Per-benchmark steady-state timing for the kernel suite."""
    rows = []
    for core in cores:
        fixed_time = timed_single_steady(
            core, fixed_config(), points, seed, repeat
        )
        adaptive_time = timed_single_steady(
            core, adaptive_config(), points, seed, repeat
        )
        rows.append({
            "benchmark": core.name,
            "fixed_seconds": round(fixed_time, 4),
            "adaptive_seconds": round(adaptive_time, 4),
            "speedup": round(fixed_time / adaptive_time, 3),
        })
    rows.sort(key=lambda r: -r["speedup"])
    speedups = [row["speedup"] for row in rows]
    if not speedups:
        # A small --slice can contain no kernel-bound benchmark.
        return {
            "per_benchmark": [],
            "median_speedup": None,
            "best_speedup": None,
            "worst_speedup": None,
        }
    return {
        "per_benchmark": rows,
        "median_speedup": round(statistics.median(speedups), 3),
        "best_speedup": max(speedups),
        "worst_speedup": min(speedups),
    }


def bench_kernel_unit_costs() -> Dict[str, Dict[str, float]]:
    """Microbenchmark: per-call cost of each library kernel per tier."""
    from repro.bigfloat import BigFloat, Context, apply

    x = BigFloat.from_float(0.7346298156)
    y = BigFloat.from_float(2.34964)
    full = Context(precision=FULL_PRECISION)
    working = Context(precision=adaptive_config().working_precision)
    table: Dict[str, Dict[str, float]] = {}
    for op in HEAVY_KERNELS + ("exp", "sqrt"):
        args = [x, y] if op in ("pow", "atan2") else [x]
        row = {}
        for label, context in (("full_us", full), ("working_us", working)):
            rounds = 40
            start = time.perf_counter()
            for __ in range(rounds):
                apply(op, args, context)
            row[label] = round(
                (time.perf_counter() - start) / rounds * 1e6, 1
            )
        row["ratio"] = round(row["full_us"] / max(row["working_us"], 0.01), 2)
        table[op] = row
    return table


def bench_apps() -> Dict:
    """Equivalence + timing on the paper's case-study apps."""
    from repro.apps.pid import build_pid_program
    from repro.apps.plotter import PAPER_REGION, build_plotter_program

    def signature(analysis):
        rows = []
        for record in analysis.candidate_records():
            rows.append((record.site_id, record.op, record.loc,
                         record.executions, record.candidate_executions,
                         record.max_local_error, record.sum_local_error,
                         record.compensations_detected))
        for spot in sorted(analysis.spot_records.values(),
                           key=lambda s: s.site_id):
            rows.append((spot.site_id, spot.kind, spot.loc,
                         spot.executions, spot.erroneous, spot.max_error,
                         sorted(r.site_id for r in spot.influences)))
        return rows

    cases = [
        ("plotter-8x8", build_plotter_program(8, 8),
         [list(PAPER_REGION)]),
        ("pid", build_pid_program(), [[10.0], [4.0], [7.2]]),
    ]
    out = {}
    for name, program, inputs in cases:
        timings = {}
        signatures = {}
        for mode, config in (("fixed", fixed_config()),
                             ("adaptive", adaptive_config())):
            start = time.perf_counter()
            analysis, __ = analyze_program(program, inputs, config=config)
            timings[mode] = time.perf_counter() - start
            signatures[mode] = signature(analysis)
        out[name] = {
            "fixed_seconds": round(timings["fixed"], 4),
            "adaptive_seconds": round(timings["adaptive"], 4),
            "speedup": round(timings["fixed"] / timings["adaptive"], 3),
            "report_identical":
                signatures["fixed"] == signatures["adaptive"],
        }
    return out


def bench_result_cache(cores, points: int, seed: int) -> Dict:
    """Cold batch vs warm (memory) and disk-warm (fresh session) reruns."""
    with tempfile.TemporaryDirectory() as cache_dir:
        session = AnalysisSession(
            config=adaptive_config(), num_points=points, seed=seed,
            cache_dir=cache_dir,
        )
        start = time.perf_counter()
        cold = session.analyze_batch(cores, workers=1)
        cold_time = time.perf_counter() - start

        start = time.perf_counter()
        warm = session.analyze_batch(cores, workers=1)
        warm_time = time.perf_counter() - start

        fresh = AnalysisSession(
            config=adaptive_config(), num_points=points, seed=seed,
            cache_dir=cache_dir,
        )
        start = time.perf_counter()
        disk = fresh.analyze_batch(cores, workers=1)
        disk_time = time.perf_counter() - start

    return {
        "benchmarks": len(cores),
        "cold_seconds": round(cold_time, 4),
        "warm_seconds": round(warm_time, 4),
        "disk_warm_seconds": round(disk_time, 4),
        "warm_fraction_of_cold": round(warm_time / cold_time, 5),
        "disk_fraction_of_cold": round(disk_time / cold_time, 5),
        "warm_identical": results_to_json(cold) == results_to_json(warm),
        "disk_identical": results_to_json(cold) == results_to_json(disk),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--points", type=int, default=8,
                        help="input points per corpus benchmark")
    parser.add_argument("--kernel-points", type=int, default=32,
                        help="input points for the kernel suite")
    parser.add_argument("--slice", type=int, default=None,
                        help="limit the corpus to its first N benchmarks")
    parser.add_argument("--repeat", type=int, default=1,
                        help="timing repetitions (min is reported)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--skip-apps", action="store_true",
                        help="skip the case-study app benchmarks")
    parser.add_argument("--out", default="BENCH_precision.json")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless the kernel-suite median "
                             "speedup reaches this factor")
    args = parser.parse_args(argv)

    corpus = load_corpus()
    if args.slice is not None:
        corpus = corpus[:args.slice]
    kernel_suite = [c for c in corpus if is_kernel_bound(c)]

    print(f"corpus: {len(corpus)} benchmarks "
          f"({len(kernel_suite)} kernel-bound), "
          f"fixed tier = {FULL_PRECISION} bits")

    report = {
        "schema_version": 1,
        "settings": {
            "full_precision": FULL_PRECISION,
            "working_precision": adaptive_config().working_precision,
            "guard_bits": adaptive_config().escalation_guard_bits,
            "points": args.points,
            "kernel_points": args.kernel_points,
            "seed": args.seed,
            "repeat": args.repeat,
            "corpus_size": len(corpus),
        },
        "suites": {},
    }

    report["kernel_unit_costs"] = bench_kernel_unit_costs()

    report["suites"]["corpus"] = bench_suite(
        "corpus", corpus, args.points, args.seed, args.repeat
    )
    print(f"corpus : fixed {report['suites']['corpus']['fixed_seconds']}s"
          f" adaptive {report['suites']['corpus']['adaptive_seconds']}s"
          f" ({report['suites']['corpus']['aggregate_speedup']}x)"
          f" identical={report['suites']['corpus']['report_identical']}")

    kernel = bench_suite(
        "kernel", kernel_suite, args.kernel_points, args.seed, args.repeat
    )
    kernel.update(bench_kernel_details(
        kernel_suite, args.kernel_points, args.seed, args.repeat
    ))
    report["suites"]["kernel"] = kernel
    print(f"kernel : fixed {kernel['fixed_seconds']}s"
          f" adaptive {kernel['adaptive_seconds']}s"
          f" (aggregate {kernel['aggregate_speedup']}x,"
          f" median {kernel['median_speedup']}x)"
          f" identical={kernel['report_identical']}")

    if not args.skip_apps:
        report["suites"]["apps"] = bench_apps()
        for name, row in report["suites"]["apps"].items():
            print(f"app    : {name} {row['speedup']}x"
                  f" identical={row['report_identical']}")

    report["result_cache"] = bench_result_cache(
        corpus, args.points, args.seed
    )
    cache = report["result_cache"]
    print(f"cache  : cold {cache['cold_seconds']}s"
          f" warm {cache['warm_seconds']}s"
          f" ({cache['warm_fraction_of_cold'] * 100:.2f}% of cold),"
          f" disk {cache['disk_warm_seconds']}s")

    #: The headline number: median per-benchmark wall-clock speedup on
    #: the precision-bound suite.
    report["speedup"] = kernel["median_speedup"]

    failures = []
    for name, suite in report["suites"].items():
        if isinstance(suite, dict) and "report_identical" in suite:
            if not suite["report_identical"]:
                failures.append(f"suite {name} not report-identical")
        else:
            for app, row in suite.items():
                if not row["report_identical"]:
                    failures.append(f"app {app} not report-identical")
    if not cache["warm_identical"] or not cache["disk_identical"]:
        failures.append("cache rerun not byte-identical")
    if cache["warm_fraction_of_cold"] >= 0.10:
        failures.append(
            f"warm rerun took {cache['warm_fraction_of_cold'] * 100:.1f}% "
            "of cold (budget: < 10%)"
        )
    if args.require_speedup is not None and (
        report["speedup"] is None
        or report["speedup"] < args.require_speedup
    ):
        failures.append(
            f"kernel-suite median speedup {report['speedup']}x below "
            f"required {args.require_speedup}x"
        )

    report["failures"] = failures
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}; headline speedup {report['speedup']}x")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
