#!/usr/bin/env python3
"""Tracer fast path: per-op overhead, layer attribution, and parity.

PR 2 measured that the corpus is *interpreter/anti-unification-bound*:
per-op tracer overhead (Python dispatch, trace-node allocation, the
anti-unify walk) dominates everything else.  This benchmark measures
the compiled fast path that attacks all three layers and emits
``BENCH_tracer.json``:

* **Per-op overhead vs native** — uninstrumented (no-op tracer)
  execution per engine, and fully traced execution, reported in
  microseconds per floating-point operation.
* **End-to-end wall-clock** — the interpreter-bound corpus suite (the
  loop benchmarks plus the most operation-heavy straight-line
  benchmarks) per engine configuration, with **per-layer attribution**:

  - ``dispatch``   — threaded-code interpreter only,
  - ``trace_alloc`` — + ident-interning trace pool,
  - ``antiunify``  — + steady-state anti-unification fast path
    (the PR-3 stack),
  - ``kernel_cache`` — + transcendental kernel-result memoization
    (the PR-4 stack),
  - ``fused``      — + site-compiled per-op pipeline callbacks,
  - ``batched``    — + lockstep multi-point execution (= the full
    compiled engine; loop benchmarks fall back per-point, so the
    batched gain concentrates in the straight-line suite).

* **Hardware shadow tier** (``hw_tier``) — adaptive-policy per-op cost
  with the double-double hardware tier on vs off, measured on a
  synthetic kernel-bound straight-line core where shadow arithmetic
  dominates tracing, with per-tier residency counters and
  promotion/escalation rates from the hw-on run.
* **Parity gate** — byte-identical ``AnalysisResult`` JSON between
  every configuration and the reference engine, under both precision
  policies.  Any mismatch fails the run.
* **Live baseline** (optional, ``--baseline-rev``; default the PR-4
  commit) — checks out the baseline tree in a temporary git worktree
  and times *its* analysis on the same suite/points/seed, so the
  headline speedup is measured against the actual predecessor rather
  than remembered numbers.  Without git, the current reference engine
  is the (conservative) stand-in.
* **Floor regression gate** (``--gate-regression FACTOR``) — reads the
  previously committed ``per_op_floor_ns`` out of ``--out`` before
  overwriting it and fails when the fresh floor exceeds the committed
  one by more than FACTOR (CI uses 1.3x).  The committed floor is
  scaled by the ratio of native (uninstrumented) per-op speeds first,
  so the gate compares analysis overhead, not the runner's clock.

Usage::

    PYTHONPATH=src python benchmarks/bench_tracer_overhead.py \
        [--points 8] [--suite-size 12] [--repeat 2] [--parity-points 3] \
        [--out BENCH_tracer.json] [--require-speedup 1.5] \
        [--baseline-rev <git-rev>] [--skip-baseline] \
        [--gate-regression 1.3]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.api import AnalysisSession, results_to_json
from repro.core import AnalysisConfig, EngineFeatures, analyze_program
from repro.fpcore import load_corpus
from repro.fpcore.parser import parse_fpcore
from repro.fpcore.printer import format_fpcore
from repro.machine import CompiledProgram, Interpreter, compile_fpcore
from repro.api.sampling import sample_inputs

#: Layer stack, innermost first; each entry adds one fast-path layer.
#: "antiunify" is the PR-3 stack, "kernel_cache" the PR-4 stack,
#: "fused" adds the site-compiled per-op pipeline, and "batched" runs
#: all sample points in lockstep through it (the full compiled
#: engine).
LAYERS = (
    ("reference", EngineFeatures(False, False, False)),
    ("dispatch", EngineFeatures(True, False, False)),
    ("trace_alloc", EngineFeatures(True, True, False)),
    ("antiunify", EngineFeatures(True, True, True)),
    ("kernel_cache", EngineFeatures(True, True, True, kernel_cache=True)),
    ("fused", EngineFeatures(True, True, True, kernel_cache=True,
                             fused_pipeline=True)),
    ("batched", EngineFeatures(True, True, True, kernel_cache=True,
                               fused_pipeline=True, batched=True)),
)


def select_suites(corpus, points: int, seed: int, size: int):
    """The two measurement suites.

    * ``loops`` — the interpreter-bound suite: benchmarks with loops,
      whose deep trace DAGs make per-op tracer overhead (dispatch,
      trace allocation, anti-unification) the dominant cost.  This is
      the suite the fast path targets and the headline median.
    * ``straightline`` — the most operation-heavy straight-line
      benchmarks ("heavy" is measured: executed float operations under
      native execution).  Their shallow traces spend proportionally
      more time in 1000-bit shadow arithmetic, which the tracer fast
      path deliberately leaves untouched; reported separately so the
      headline measures what the PR changes.
    """
    weights = []
    for core in corpus:
        program = compile_fpcore(core)
        compiled = CompiledProgram(program)
        ops = 0
        for point in sample_inputs(core, points, seed=seed):
            compiled.run(point)
            ops += compiled.stats.float_ops + compiled.stats.library_calls
        weights.append((ops, core))
    loops = [core for __, core in weights if "(while" in format_fpcore(core)]
    straight = sorted(
        (
            (ops, core) for ops, core in weights
            if "(while" not in format_fpcore(core)
        ),
        key=lambda pair: -pair[0],
    )
    straightline = [
        core for __, core in straight[: max(0, size - len(loops))]
    ]
    return loops, straightline


def bench_native_overhead(suite, points: int, seed: int, repeat: int) -> Dict:
    """Per-op cost: native per engine, and fully traced (compiled)."""
    rows = {"reference_native": 0.0, "compiled_native": 0.0,
            "compiled_traced": 0.0, "reference_traced": 0.0}
    total_ops = 0
    for core in suite:
        program = compile_fpcore(core)
        sampled = sample_inputs(core, points, seed=seed)
        compiled = CompiledProgram(program)
        for point in sampled:
            compiled.run(point)
            total_ops += compiled.stats.float_ops + compiled.stats.library_calls

        def timed(run_once) -> float:
            best = None
            for __ in range(repeat):
                start = time.perf_counter()
                run_once()
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            return best

        rows["compiled_native"] += timed(
            lambda: [compiled.run(p) for p in sampled]
        )
        rows["reference_native"] += timed(
            lambda: [Interpreter(program).run(p) for p in sampled]
        )
        for label, engine in (("compiled_traced", "compiled"),
                              ("reference_traced", "reference")):
            config = AnalysisConfig(engine=engine)
            rows[label] += timed(
                lambda: analyze_program(
                    program, sampled, config=config
                )
            )
    out = {"executed_float_ops": total_ops}
    for label, seconds in rows.items():
        out[label + "_us_per_op"] = round(seconds / max(total_ops, 1) * 1e6, 3)
        out[label + "_seconds"] = round(seconds, 4)
    native = out["compiled_native_us_per_op"]
    #: The per-op analysis floor: fully traced compiled-engine cost per
    #: executed float operation, in nanoseconds (the regression gate's
    #: metric).
    out["per_op_floor_ns"] = round(out["compiled_traced_us_per_op"] * 1000.0)
    out["tracer_overhead_factor_compiled"] = round(
        out["compiled_traced_us_per_op"] / max(native, 1e-9), 1
    )
    out["tracer_overhead_factor_reference"] = round(
        out["reference_traced_us_per_op"] / max(native, 1e-9), 1
    )
    return out


def bench_layers(suite, points: int, seed: int, repeat: int) -> Dict:
    """Per-benchmark, per-layer steady-state analysis times.

    Repetitions are *interleaved* across the layer configurations
    (reference, dispatch, ... all timed once per round, best-of-rounds
    reported) so slow drift in machine load hits every configuration
    equally instead of skewing the ratios.
    """
    per_benchmark = []
    for core in suite:
        program = compile_fpcore(core)
        sampled = sample_inputs(core, points, seed=seed)
        config = AnalysisConfig()
        best: Dict[str, float] = {}
        for label, features in LAYERS:  # warm every configuration once
            analyze_program(
                program, sampled, config=config, features=features
            )
        for __ in range(max(1, repeat)):
            for label, features in LAYERS:
                start = time.perf_counter()
                analyze_program(
                    program, sampled, config=config, features=features
                )
                elapsed = time.perf_counter() - start
                if label not in best or elapsed < best[label]:
                    best[label] = elapsed
        row = {"benchmark": core.name}
        for label, __features in LAYERS:
            row[label + "_seconds"] = round(best[label], 4)
        outer = LAYERS[-1][0]
        row["speedup_vs_reference"] = round(
            row["reference_seconds"] / max(row[outer + "_seconds"], 1e-9), 3
        )
        per_benchmark.append(row)
    speedups = [row["speedup_vs_reference"] for row in per_benchmark]
    attribution = {}
    previous = "reference"
    for label, __ in LAYERS[1:]:
        gains = [
            row[previous + "_seconds"] / max(row[label + "_seconds"], 1e-9)
            for row in per_benchmark
        ]
        attribution[label] = {
            "median_incremental_speedup": round(statistics.median(gains), 3),
        }
        previous = label
    return {
        "per_benchmark": sorted(
            per_benchmark, key=lambda r: -r["speedup_vs_reference"]
        ),
        "median_speedup_vs_reference": round(statistics.median(speedups), 3),
        "best_speedup_vs_reference": max(speedups),
        "worst_speedup_vs_reference": min(speedups),
        "layer_attribution": attribution,
    }


def bench_batched_per_op(suite, points: int, seed: int, repeat: int) -> Dict:
    """Straight-line per-op cost, batched on vs off.

    The headline number for lockstep execution: the same full fused
    stack, with only the batched layer toggled, on the suite where it
    actually engages (loop benchmarks fall back per-point).
    """
    on = LAYERS[-1][1]
    off = LAYERS[-2][1]
    total_ops = 0
    seconds = {"batched": 0.0, "unbatched": 0.0}
    for core in suite:
        program = compile_fpcore(core)
        sampled = sample_inputs(core, points, seed=seed)
        compiled = CompiledProgram(program)
        for point in sampled:
            compiled.run(point)
            total_ops += compiled.stats.float_ops + compiled.stats.library_calls
        config = AnalysisConfig()
        for label, features in (("batched", on), ("unbatched", off)):
            analyze_program(  # warm caches outside the timed region
                program, sampled, config=config, features=features
            )
            best = None
            for __ in range(max(1, repeat)):
                start = time.perf_counter()
                analyze_program(
                    program, sampled, config=config, features=features
                )
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            seconds[label] += best
    out = {"executed_float_ops": total_ops}
    for label, secs in seconds.items():
        out[label + "_us_per_op"] = round(secs / max(total_ops, 1) * 1e6, 3)
    out["batched_speedup"] = round(
        seconds["unbatched"] / max(seconds["batched"], 1e-9), 3
    )
    return out


def _kernel_bound_core():
    """A deep straight-line arithmetic core for the hw-tier headline.

    The corpus straight-line benchmarks are shallow enough that
    sampling, tracing, and reporting dilute the shadow-kernel cost this
    measurement targets, so the hw-tier row uses a synthetic core:
    well-conditioned rational arithmetic nested three deep, which keeps
    every operation on the double-double fast path (no transcendental
    promotes) while still exercising +, -, *, and /.
    """
    expr = "(* (+ x y) (/ (- x y) (+ (* x x) (* y y))))"
    for __ in range(3):
        expr = f"(+ (* {expr} x) (/ {expr} y))"
    return parse_fpcore(
        '(FPCore (x y) :name "hw-kernel-bound" '
        ":pre (and (<= 1 x 2) (<= 1 y 2)) " + expr + ")"
    )


def bench_hw_tier(points: int, seed: int, repeat: int) -> Dict:
    """Adaptive per-op cost, hardware shadow tier on vs off.

    Both configurations run the full compiled/batched stack; only
    ``hw_tier`` is toggled, so the ratio isolates the double-double
    bottom rung.  Repetitions are interleaved (hw-on and hw-off timed
    once per round, best-of-rounds reported) so machine drift hits both
    configurations equally.  The hw-on run's tier residency counters
    are reported alongside, with the promotion and escalation rates
    that explain how much work stayed on the hardware tier.
    """
    core = _kernel_bound_core()
    program = compile_fpcore(core)
    sampled = sample_inputs(core, points, seed=seed)
    compiled = CompiledProgram(program)
    total_ops = 0
    for point in sampled:
        compiled.run(point)
        total_ops += compiled.stats.float_ops + compiled.stats.library_calls
    configs = (
        ("hw_on", AnalysisConfig(precision_policy="adaptive", hw_tier=True)),
        ("hw_off", AnalysisConfig(precision_policy="adaptive",
                                  hw_tier=False)),
    )
    residency = {}
    signatures = {}
    for label, config in configs:  # warm caches outside the timed region
        analysis, __ = analyze_program(program, sampled, config=config)
        signatures[label] = _signature_json(analysis)
        if label == "hw_on":
            residency = analysis.tier_residency()
    best: Dict[str, float] = {}
    for __ in range(max(1, repeat)):
        for label, config in configs:
            start = time.perf_counter()
            analyze_program(program, sampled, config=config)
            elapsed = time.perf_counter() - start
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
    out = {
        "benchmark": core.name,
        "points": points,
        "executed_float_ops": total_ops,
        "parity_identical": signatures["hw_on"] == signatures["hw_off"],
    }
    for label, seconds in best.items():
        out[label + "_us_per_op"] = round(
            seconds / max(total_ops, 1) * 1e6, 3
        )
        out[label + "_seconds"] = round(seconds, 4)
    out["hw_speedup"] = round(best["hw_off"] / max(best["hw_on"], 1e-9), 3)
    kernel_ops = residency.get("hw_kernel_ops", 0)
    promotions = residency.get("hw_promotions", 0)
    out["tier_residency"] = residency
    #: Fraction of hardware-tier kernel attempts the kernels declined
    #: (returned None), sending the operation to the working tier.
    out["hw_promotion_rate"] = round(
        promotions / max(kernel_ops + promotions, 1), 6
    )
    #: Escalations (rounding ties, comparisons, integer conversions,
    #: drift-bound violations) per accepted hardware kernel result.
    out["escalation_rate"] = round(
        residency.get("escalations", 0) / max(kernel_ops, 1), 6
    )
    return out


def bench_parity(suite, points: int, seed: int) -> Dict:
    """Byte-identical JSON across every layer stack and both policies."""
    failures = []
    for policy in ("fixed", "adaptive"):
        baseline = None
        for label, features in LAYERS:
            serialized = []
            for core in suite:
                program = compile_fpcore(core)
                sampled = sample_inputs(core, points, seed=seed)
                config = AnalysisConfig(precision_policy=policy)
                analysis, __ = analyze_program(
                    program, sampled, config=config, features=features
                )
                serialized.append(_signature_json(analysis))
            blob = "\n".join(serialized)
            if baseline is None:
                baseline = blob
            elif blob != baseline:
                failures.append(f"{policy}/{label} diverged from reference")
    # The session-level byte-for-byte check on full AnalysisResult JSON.
    for policy in ("fixed", "adaptive"):
        outputs = {}
        for engine in ("compiled", "reference"):
            session = AnalysisSession(
                config=AnalysisConfig(
                    precision_policy=policy, engine=engine
                ),
                num_points=points, seed=seed, result_cache_size=0,
            )
            outputs[engine] = results_to_json(
                session.analyze_batch(suite, workers=1)
            )
        if outputs["compiled"] != outputs["reference"]:
            failures.append(f"{policy}: result JSON not byte-identical")
    return {"identical": not failures, "failures": failures}


def _signature_json(analysis) -> str:
    rows = []
    for record in analysis.candidate_records():
        rows.append([
            record.site_id, record.op, record.loc, record.executions,
            record.candidate_executions, record.max_local_error,
            record.sum_local_error, record.compensations_detected,
            str(record.symbolic_expression),
        ])
    for spot in sorted(analysis.spot_records.values(), key=lambda s: s.site_id):
        rows.append([
            spot.site_id, spot.kind, spot.loc, spot.executions,
            spot.erroneous, spot.max_error,
            sorted(r.site_id for r in spot.influences),
        ])
    return json.dumps(rows, sort_keys=True)


BASELINE_TIMING_SCRIPT = """\
import json, sys, time
sys.path.insert(0, sys.argv[1])
from repro.api import AnalysisSession
from repro.core import AnalysisConfig
from repro.fpcore.parser import parse_fpcore

spec = json.load(open(sys.argv[2]))
rows = {}
for source in spec["cores"]:
    core = parse_fpcore(source)
    session = AnalysisSession(
        num_points=spec["points"], seed=spec["seed"], result_cache_size=0
    )
    session.analyze(core)  # warm compile/sampling caches
    best = None
    for _ in range(spec["repeat"]):
        start = time.perf_counter()
        session.analyze(core)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    rows[core.name] = best
json.dump(rows, open(sys.argv[3], "w"))
"""


def _time_in_subprocess(
    src_path: str, scratch: str, tag: str, suite, points: int, seed: int,
    repeat: int,
) -> Optional[Dict[str, float]]:
    """Per-benchmark steady-state seconds, measured by a fresh process
    importing ``src_path`` — the same script for every code version, so
    baseline and current measurements share one methodology and one
    machine state."""
    spec = {
        "cores": [format_fpcore(core) for core in suite],
        "points": points, "seed": seed, "repeat": max(1, repeat),
    }
    spec_path = os.path.join(scratch, f"spec-{tag}.json")
    out_path = os.path.join(scratch, f"times-{tag}.json")
    script_path = os.path.join(scratch, "time_session.py")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(spec, handle)
    if not os.path.exists(script_path):
        with open(script_path, "w", encoding="utf-8") as handle:
            handle.write(BASELINE_TIMING_SCRIPT)
    try:
        subprocess.run(
            [sys.executable, script_path, src_path, spec_path, out_path],
            check=True, capture_output=True, timeout=3600,
        )
    except (subprocess.CalledProcessError, subprocess.TimeoutExpired):
        return None
    with open(out_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def bench_live_baseline(
    suite, points: int, seed: int, repeat: int, rev: str
) -> Optional[Dict]:
    """Time the baseline revision and the current code on the same
    work, each in a fresh subprocess via the same script (the baseline
    from a git worktree), interleaved so machine drift cancels."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(repo_root, ".git")):
        return None
    with tempfile.TemporaryDirectory() as scratch:
        worktree = os.path.join(scratch, "baseline")
        try:
            subprocess.run(
                ["git", "-C", repo_root, "worktree", "add", "--detach",
                 worktree, rev],
                check=True, capture_output=True,
            )
        except (subprocess.CalledProcessError, FileNotFoundError):
            return None
        try:
            current_src = os.path.join(repo_root, "src")
            base_src = os.path.join(worktree, "src")
            rounds = []
            for index in range(2):  # two interleaved rounds, best-of
                base = _time_in_subprocess(
                    base_src, scratch, f"base-{index}", suite, points, seed,
                    repeat,
                )
                now = _time_in_subprocess(
                    current_src, scratch, f"now-{index}", suite, points,
                    seed, repeat,
                )
                if base is None or now is None:
                    return None
                rounds.append((base, now))
            base_best = {
                name: min(r[0][name] for r in rounds) for name in rounds[0][0]
            }
            now_best = {
                name: min(r[1][name] for r in rounds) for name in rounds[0][1]
            }
            return {
                "rev": rev,
                "seconds_by_benchmark": base_best,
                "current_seconds_by_benchmark": now_best,
            }
        finally:
            subprocess.run(
                ["git", "-C", repo_root, "worktree", "remove", "--force",
                 worktree],
                capture_output=True,
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--points", type=int, default=8,
                        help="input points per benchmark for timing")
    parser.add_argument("--parity-points", type=int, default=3,
                        help="input points for the parity gate")
    parser.add_argument("--suite-size", type=int, default=12,
                        help="size of the interpreter-bound suite")
    parser.add_argument("--repeat", type=int, default=2,
                        help="timing repetitions (min is reported)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_tracer.json")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless the suite's median speedup vs "
                             "the live baseline (or, without git, the "
                             "reference engine) reaches this factor")
    parser.add_argument("--hw-points", type=int, default=32,
                        help="input points for the hw-tier row (enough "
                             "lanes to engage vectorized batch columns)")
    parser.add_argument("--require-hw-speedup", type=float, default=None,
                        metavar="FACTOR",
                        help="fail unless the kernel-bound hw-tier "
                             "speedup reaches this factor")
    parser.add_argument("--baseline-rev", default="7ba76a9",
                        help="git revision of the live baseline "
                             "(default: the PR-4 commit)")
    parser.add_argument("--skip-baseline", action="store_true",
                        help="skip the live baseline measurement")
    parser.add_argument("--gate-regression", type=float, default=None,
                        metavar="FACTOR",
                        help="fail when the fresh per-op floor exceeds "
                             "the committed per_op_floor_ns in --out by "
                             "more than FACTOR (e.g. 1.3)")
    args = parser.parse_args(argv)

    committed_floor_ns = None
    committed_native_us = None
    if args.gate_regression is not None and os.path.exists(args.out):
        try:
            with open(args.out, "r", encoding="utf-8") as handle:
                committed = json.load(handle)
            committed_floor_ns = committed.get("per_op_overhead", {}).get(
                "per_op_floor_ns"
            )
            committed_native_us = committed.get("per_op_overhead", {}).get(
                "compiled_native_us_per_op"
            )
        except (OSError, ValueError):
            committed_floor_ns = None

    corpus = load_corpus()
    loops, straightline = select_suites(
        corpus, args.points, args.seed, args.suite_size
    )
    everything = loops + straightline
    print(f"interpreter-bound suite: {len(loops)} loop benchmarks "
          f"({', '.join(core.name for core in loops)}); "
          f"{len(straightline)} op-heavy straight-line benchmarks")

    report = {
        "schema_version": 1,
        "settings": {
            "points": args.points,
            "parity_points": args.parity_points,
            "seed": args.seed,
            "repeat": args.repeat,
            "interpreter_bound_suite": [core.name for core in loops],
            "straightline_suite": [core.name for core in straightline],
        },
    }

    report["per_op_overhead"] = bench_native_overhead(
        everything, args.points, args.seed, args.repeat
    )
    o = report["per_op_overhead"]
    print(f"native : reference {o['reference_native_us_per_op']}us/op,"
          f" compiled {o['compiled_native_us_per_op']}us/op")
    print(f"traced : reference {o['reference_traced_us_per_op']}us/op,"
          f" compiled {o['compiled_traced_us_per_op']}us/op"
          f" (overhead {o['tracer_overhead_factor_compiled']}x native)")

    # The PR-2 subprocess runs immediately before the layer timings so
    # both phases see the same machine state; ratios across phases are
    # then meaningful.
    baseline = None
    if not args.skip_baseline:
        baseline = bench_live_baseline(
            everything, args.points, args.seed, args.repeat,
            args.baseline_rev
        )

    report["suites"] = {}
    for label, suite in (("loops", loops), ("straightline", straightline)):
        layers = bench_layers(suite, args.points, args.seed, args.repeat)
        report["suites"][label] = layers
        print(f"{label:7s}: median {layers['median_speedup_vs_reference']}x"
              f" vs reference engine; attribution "
              + ", ".join(
                  f"{k}={v['median_incremental_speedup']}x"
                  for k, v in layers["layer_attribution"].items()
              ))

    report["batched_per_op"] = bench_batched_per_op(
        straightline, args.points, args.seed, args.repeat
    )
    b = report["batched_per_op"]
    print(f"batched: straight-line {b['batched_us_per_op']}us/op vs "
          f"{b['unbatched_us_per_op']}us/op unbatched "
          f"({b['batched_speedup']}x)")

    # The hw-tier row times a ~tens-of-ms workload, so best-of needs
    # more rounds than the big suites to converge; five rounds still
    # cost well under a second.
    report["hw_tier"] = bench_hw_tier(
        args.hw_points, args.seed, max(args.repeat, 5)
    )
    h = report["hw_tier"]
    print(f"hw tier: kernel-bound {h['hw_on_us_per_op']}us/op vs "
          f"{h['hw_off_us_per_op']}us/op without the hardware tier "
          f"({h['hw_speedup']}x); promotion rate "
          f"{h['hw_promotion_rate']}, escalation rate "
          f"{h['escalation_rate']}, parity={h['parity_identical']}")

    report["parity"] = bench_parity(
        everything, args.parity_points, args.seed
    )
    print(f"parity : identical={report['parity']['identical']}")
    if baseline is not None:
        current = baseline["current_seconds_by_benchmark"]
        for label in ("loops", "straightline"):
            layers = report["suites"][label]
            names = {row["benchmark"] for row in layers["per_benchmark"]}
            ratios = [
                seconds / max(current[name], 1e-9)
                for name, seconds in baseline["seconds_by_benchmark"].items()
                if name in names and name in current
            ]
            layers["median_speedup_vs_baseline"] = round(
                statistics.median(ratios), 3
            ) if ratios else None
        report["baseline"] = baseline
        report["speedup"] = report["suites"]["loops"][
            "median_speedup_vs_baseline"
        ]
        print(f"base   : interpreter-bound median vs live baseline "
              f"({baseline['rev']}): {report['speedup']}x; straight-line "
              f"{report['suites']['straightline']['median_speedup_vs_baseline']}x")
    else:
        report["baseline"] = None
        report["speedup"] = report["suites"]["loops"][
            "median_speedup_vs_reference"
        ]
        print("base   : live baseline unavailable; using the reference "
              "engine as the (conservative) baseline")

    failures = list(report["parity"]["failures"])
    floor_ns = report["per_op_overhead"]["per_op_floor_ns"]
    report["committed_floor_ns"] = committed_floor_ns
    if committed_floor_ns is not None and args.gate_regression is not None:
        # The committed floor was measured on a different machine;
        # absolute ns are not portable.  Scale the committed value by
        # this machine's native (uninstrumented compiled-engine) speed
        # relative to the committed run's — the gate then measures the
        # analysis overhead ratio, not the runner's clock.
        scale = 1.0
        fresh_native = report["per_op_overhead"]["compiled_native_us_per_op"]
        if committed_native_us and fresh_native:
            scale = fresh_native / committed_native_us
        limit = committed_floor_ns * scale * args.gate_regression
        report["floor_gate"] = {
            "committed_floor_ns": committed_floor_ns,
            "machine_scale": round(scale, 3),
            "limit_ns": round(limit),
        }
        if floor_ns > limit:
            failures.append(
                f"per-op floor {floor_ns}ns regressed more than "
                f"{args.gate_regression}x over the committed "
                f"{committed_floor_ns}ns (machine-normalized limit "
                f"{round(limit)}ns)"
            )
    if args.require_speedup is not None and (
        report["speedup"] is None or report["speedup"] < args.require_speedup
    ):
        failures.append(
            f"median speedup {report['speedup']}x below required "
            f"{args.require_speedup}x"
        )
    if not report["hw_tier"]["parity_identical"]:
        failures.append(
            "hw_tier: analysis signatures diverge between hw on and off"
        )
    if args.require_hw_speedup is not None and (
        report["hw_tier"]["hw_speedup"] < args.require_hw_speedup
    ):
        failures.append(
            f"hw-tier speedup {report['hw_tier']['hw_speedup']}x below "
            f"required {args.require_hw_speedup}x"
        )
    report["failures"] = failures

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}; headline speedup {report['speedup']}x")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
