"""Shared fixtures and helpers for the experiment benchmarks.

Every module in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Conventions:

* heavy experiment drivers run once via ``benchmark.pedantic(rounds=1)``,
* every experiment prints its table AND writes it to
  ``benchmarks/results/<name>.txt`` so the artifacts survive pytest's
  output capture,
* headline numbers are attached to ``benchmark.extra_info``.

Scale note: the paper ran on native binaries; this reproduction runs a
Python interpreter over an IR, so workloads are scaled down (fewer
sample points, smaller grids).  The *shape* of each result is the
reproduction target, not absolute magnitudes.
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.core import AnalysisConfig
from repro.fpcore import load_corpus
from repro.improve import SearchSettings

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Analysis configuration for experiment sweeps: 256-bit shadows keep
#: the metric exact for doubles while staying fast in pure Python.
SWEEP_CONFIG = AnalysisConfig(shadow_precision=256)

#: Reduced improver budget for sweeps.
SWEEP_SETTINGS = SearchSettings(
    beam_width=4, generations=3, max_candidates_per_generation=1500
)

#: Benchmarks per sweep point for the Figure 5 ablations (the full
#: corpus is used for the headline Section 8.1 run).
SWEEP_CORPUS_SIZE = 30


def write_result(name: str, text: str) -> None:
    """Print an experiment table and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print()
    print(text)


@pytest.fixture(scope="session")
def corpus():
    """The full 86-benchmark corpus."""
    return load_corpus()


@pytest.fixture(scope="session")
def sweep_corpus(corpus) -> List:
    """A smaller corpus slice for the multi-configuration sweeps:
    every 3rd benchmark, preserving family diversity."""
    return corpus[::3][:SWEEP_CORPUS_SIZE]
