"""Section 8.2: the library-wrapping ablation.

With wrapping *on*, math calls are atomic: extracted expressions are
small (the paper's largest is 9 operations).  With wrapping *off*, the
analysis sees the software libm's internals: expressions balloon (to 31
ops in the paper, 133 expressions above 9 ops, 848 flagged in total,
"mostly false positives in the internals of the math library"), and the
magic round-to-int constant 6.755399e15 shows up inside them — the
paper prints

    (x − 0.6931472 (y − 6.755399e15) + 2.576980e10) − 2.576980e10

as what you get instead of e^x - 1.
"""

from __future__ import annotations

from repro.api import AnalysisSession
from repro.fpcore import corpus_by_name, expression_size
from repro.fpcore.printer import format_expr
from repro.machine import build_libm

from conftest import SWEEP_CONFIG, write_result

#: Library-heavy benchmarks (exp/log/trig/pow users).
WORKLOAD = [
    "nmse-ex-3-7", "nmse-ex-3-4", "nmse-ex-3-9", "nmse-ex-3-10",
    "nmse-ex-3-11", "nmse-p-3-4-3", "nmse-p-3-4-4", "expq2",
    "logit", "softplus", "difference-quotient", "cosh-minus-one",
]


def _collect(wrap: bool):
    corpus = corpus_by_name()
    libm = None if wrap else build_libm()
    config = SWEEP_CONFIG.with_(max_expression_depth=40)
    session = AnalysisSession(config=config, num_points=6, seed=9)
    sizes = []
    flagged = 0
    texts = []
    for name in WORKLOAD:
        analysis = session.analyze(
            corpus[name], wrap_libraries=wrap, libm=libm,
        ).raw
        for record in analysis.candidate_records():
            flagged += 1
            if record.symbolic_expression is not None:
                sizes.append(expression_size(record.symbolic_expression))
                texts.append(format_expr(record.symbolic_expression))
    return sizes, flagged, texts


def test_sec82_library_wrapping(benchmark):
    def experiment():
        return _collect(wrap=True), _collect(wrap=False)

    (wrapped_sizes, wrapped_flagged, __), (
        unwrapped_sizes, unwrapped_flagged, unwrapped_texts
    ) = benchmark.pedantic(experiment, rounds=1, iterations=1)

    wrapped_max = max(wrapped_sizes, default=0)
    unwrapped_max = max(unwrapped_sizes, default=0)
    wrapped_big = sum(1 for s in wrapped_sizes if s > 9)
    unwrapped_big = sum(1 for s in unwrapped_sizes if s > 9)
    magic_hits = sum("6755399441055744" in t for t in unwrapped_texts)

    lines = [
        "Section 8.2 — library wrapping ablation",
        f"({len(WORKLOAD)} libm-heavy benchmarks x 6 points)",
        "",
        f"{'metric':<38}{'wrapped':>9}{'unwrapped':>11}{'paper':>22}",
        f"{'largest expression (ops)':<38}{wrapped_max:>9}"
        f"{unwrapped_max:>11}{'9 vs 31':>22}",
        f"{'expressions over 9 ops':<38}{wrapped_big:>9}"
        f"{unwrapped_big:>11}{'0 vs 133':>22}",
        f"{'flagged expressions':<38}{wrapped_flagged:>9}"
        f"{unwrapped_flagged:>11}{'vs 848 (mostly FP)':>22}",
        f"{'magic 6.755399e15 in expressions':<38}{0:>9}"
        f"{magic_hits:>11}{'(paper shows one)':>22}",
    ]
    sample = next(
        (t for t in unwrapped_texts if "6755399441055744" in t), None
    )
    if sample:
        lines += ["", "sample unwrapped extraction (cf. the paper's e^x - 1):",
                  f"  {sample[:140]}..."]
    write_result("sec82_wrapping", "\n".join(lines))

    benchmark.extra_info.update(
        {
            "wrapped_max_ops": wrapped_max,
            "unwrapped_max_ops": unwrapped_max,
            "unwrapped_flagged": unwrapped_flagged,
        }
    )
    assert unwrapped_max > wrapped_max
    assert unwrapped_flagged > wrapped_flagged
    assert magic_hits > 0
    assert unwrapped_big > wrapped_big
