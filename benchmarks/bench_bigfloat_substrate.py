"""BigFloat substrate benchmark: native kernels vs the python reference.

Measures what PR 4 changes — the cost of the shadow-real kernel layer —
and gates on what it must preserve: byte-identical corpus reports
across ``substrate`` x ``engine`` x ``precision_policy``.

Sections (all recorded in ``BENCH_bigfloat.json``):

* **Kernel unit costs** — per-call cost of each library kernel at the
  paper's 1000-bit shadow precision, per substrate.
* **Op-heavy straight-line suite** — the headline: synthetic
  straight-line programs dominated by library-kernel shadow
  evaluation, one dense chain per kernel family (exp included, where
  the mpmath provider wins least).  Reported: per-benchmark
  steady-state speedup of the native substrate and the suite median.
* **Kernel-dominated corpus benchmarks** — the same measurement on
  real corpus benchmarks whose *measured* kernel time share is at
  least half (via a null-kernel floor run).
* **All kernel-bound corpus benchmarks** — and on every straight-line
  corpus benchmark containing a library kernel, dominant or not, so
  nothing is curated away.
* **Kernel-result cache** — hits and speedup on loop benchmarks with
  loop-invariant kernel arguments (the cache memoizes per operand
  trace ident through the TracePool's hash-consing).
* **Parity gate** — byte-identical ``AnalysisResult`` JSON for
  substrate x engine x policy over a corpus slice; the benchmark
  *fails* on any mismatch.

Usage:
    PYTHONPATH=src python benchmarks/bench_bigfloat_substrate.py \
        [--points 8] [--repeat 3] [--slice N] [--parity-points 3] \
        [--min-sample-ms 5] [--out BENCH_bigfloat.json]

CI runs a small-budget smoke subset; the checked-in BENCH_bigfloat.json
comes from a full local run.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import AnalysisSession, results_to_json
from repro.api.sampling import sample_inputs
from repro.bigfloat import (
    KERNEL_CACHE_OPERATIONS,
    BigFloat,
    Context,
    get_backend,
    substrate_provider,
)
from repro.core import AnalysisConfig
from repro.core.analysis import analyze_program
from repro.fpcore import load_corpus, parse_fpcore
from repro.fpcore.printer import format_fpcore
from repro.machine import compile_fpcore

SHADOW_PRECISION = 1000

#: The op-heavy straight-line suite: synthetic dense chains of library
#: kernels over the inputs — straight-line programs whose cost is, by
#: construction, dominated by shadow-kernel evaluation (the regime the
#: native substrate targets, and the cost profile PR 3 identified as
#: the remaining floor).  One chain per kernel family, *including* the
#: exp family where the mpmath provider wins least, so the median is
#: not curated around the substrate's weak spot.  Preconditions keep
#: every call on its general path.
SYNTHETIC_SUITE = [
    """(FPCore (x y) :name "synth-log-chain" :pre (and (<= 1.5 x 40) (<= 1.5 y 40))
        (log (* (log (* x y)) (* (log (* x 2)) (* (log (* y 3))
         (* (log (+ x y)) (* (log (+ 1 (* x y)))
         (* (log (+ 2 (* x 3))) (* (log (+ 3 (* y 2)))
            (log (+ x (* 2 y))))))))))))""",
    """(FPCore (x y) :name "synth-exp-chain" :pre (and (<= 0.2 x 1.4) (<= 0.2 y 1.4))
        (+ (exp (* x y)) (+ (exp (- x y)) (+ (expm1 (* 0.5 x))
           (+ (exp2 (+ x y)) (+ (exp (/ x (+ y 1)))
           (+ (expm1 (* 0.25 y)) (+ (exp (* 0.75 (+ x y)))
           (+ (exp2 (- x (* 2 y))) (+ (exp (* 1.25 x))
           (+ (expm1 (* 0.125 (+ x y))) (+ (exp (* 0.3 y))
           (+ (exp2 (* 0.6 x)) (+ (exp (- y (* 0.5 x)))
              (expm1 (* 0.4 (- x y)))))))))))))))))""",
    """(FPCore (x y) :name "synth-trig-mix" :pre (and (<= 0.3 x 1.2) (<= 0.3 y 1.2))
        (+ (* (sin x) (cos y)) (+ (* (tan x) (sin y))
           (+ (* (cos x) (tan y)) (+ (* (sin (+ x y)) (cos (- x y)))
           (+ (* (sin (* 2 x)) (cos (* 2 y))) (* (tan (* 0.5 (+ x y)))
              (sin (* x y)))))))))""",
    """(FPCore (x y) :name "synth-pow-ladder" :pre (and (<= 1.1 x 3) (<= 0.2 y 2.5))
        (+ (pow x y) (+ (pow x (+ y 0.5)) (+ (pow (+ x 1) y)
           (+ (pow (+ x 0.5) (+ y 0.25)) (+ (pow x (* 0.75 y))
           (pow (+ x 0.25) (+ y 0.75))))))))""",
    """(FPCore (x y) :name "synth-atan-field" :pre (and (<= 0.4 x 6) (<= 0.4 y 6))
        (+ (atan2 y x) (+ (atan (* x y)) (+ (atan2 x (+ y 1))
           (+ (atan (/ x y)) (+ (atan2 (+ x y) (* x y))
           (+ (atan (+ x (* 2 y))) (+ (asin (/ x (+ (+ x y) 1)))
           (+ (acos (/ y (+ (+ x y) 1))) (+ (atan (* 3 (+ x y)))
           (+ (atan2 (* 2 y) (+ x 3)) (+ (asin (/ y (+ (+ x y) 2)))
           (+ (acos (/ x (+ (+ x y) 3))) (+ (atan (/ (+ x 1) (+ y 1)))
              (atan2 (- x y) (+ (* x y) 1))))))))))))))))""",
    """(FPCore (x y) :name "synth-hyper-chain" :pre (and (<= 0.4 x 2) (<= 0.4 y 2))
        (+ (tanh (* x y)) (+ (asinh (+ x y)) (+ (acosh (+ 1.5 (* x y)))
           (+ (atanh (/ x (+ (+ x y) 1))) (+ (asinh (* x 3))
           (+ (acosh (+ 2 x)) (+ (atanh (/ y (+ (+ x y) 2)))
           (+ (sinh (* 0.5 (+ x y))) (+ (asinh (* 5 y))
           (+ (acosh (+ 3 (* 2 y))) (+ (atanh (/ (* 0.5 x) (+ y 1)))
           (+ (asinh (/ x y)) (+ (acosh (+ 1.25 x))
              (cosh (* 0.75 (- x y)))))))))))))))))""",
    """(FPCore (x y) :name "synth-root-chain" :pre (and (<= 0.5 x 9) (<= 0.5 y 9))
        (+ (cbrt (* x y)) (+ (hypot x y) (+ (cbrt (+ x (* 2 y)))
           (+ (hypot (+ x 1) (+ y 2)) (+ (cbrt (/ x y))
           (+ (hypot (* 2 x) (* 3 y)) (+ (cbrt (+ (* 3 x) y))
           (+ (cbrt (* 0.5 (+ x y))) (+ (cbrt (+ 1 (* x x)))
           (+ (hypot (+ x y) (* x y)) (+ (cbrt (* 7 y))
              (cbrt (/ (+ x 2) (+ y 2)))))))))))))))""",
    """(FPCore (x y) :name "synth-log-pow-mix" :pre (and (<= 1.2 x 20) (<= 1.2 y 20))
        (/ (log (pow x y)) (+ (log2 (* x y)) (+ (log10 (+ x y))
           (+ (log1p (* 0.5 (* x y))) (+ (log2 (+ 1 (* x 2)))
           (+ (log10 (+ 2 (* y 3))) (pow (+ x y) 0.375))))))))""",
]

#: Loop benchmarks with loop-invariant kernel arguments: the
#: kernel-result cache computes each invariant shadow once per
#: execution instead of once per iteration.
CACHE_SUITE = [
    """(FPCore (x n) :name "loop-invariant-log" :pre (and (<= 2 x 50) (<= 8 n 16))
        (while (<= i n) ([i 1 (+ i 1)]
                         [acc 0 (+ acc (/ (log (* x 3)) (+ i (log x))))])
          acc))""",
    """(FPCore (x n) :name "loop-invariant-pow" :pre (and (<= 1.5 x 4) (<= 8 n 16))
        (while (<= i n) ([i 1 (+ i 1)]
                         [acc 1 (+ acc (* (pow x 2.5) (/ 1 (+ i (sin x)))))])
          acc))""",
]


def _steady_seconds(fn, repeat: int, min_sample_ms: float) -> float:
    """Best-of-``repeat`` wall-clock of ``fn``, with each sample batched
    until it lasts at least ``min_sample_ms`` (per-call time returned)."""
    calls = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - t0
        if elapsed * 1000 >= min_sample_ms or calls >= 1 << 14:
            break
        scale = max(2.0, (min_sample_ms / 1000) / max(elapsed, 1e-9) * 1.2)
        calls = min(1 << 14, int(calls * scale) + 1)
    best = elapsed / calls
    for _ in range(repeat - 1):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, (time.perf_counter() - t0) / calls)
    return best


def _analysis_timer(core, points, substrate: str, apply_override=None):
    """A thunk running one full analysis of ``core`` over ``points``."""
    program = compile_fpcore(core)
    config = AnalysisConfig(
        substrate=substrate, shadow_precision=SHADOW_PRECISION
    )

    if apply_override is None:
        def run():
            analyze_program(program, points, config=config)
        return run

    from unittest import mock
    from repro.bigfloat import backend as backend_mod

    def run():
        with mock.patch.object(
            backend_mod.PythonBackend, "apply",
            staticmethod(apply_override),
        ):
            backend_mod._BACKENDS.pop("python", None)
            try:
                analyze_program(program, points, config=config)
            finally:
                backend_mod._BACKENDS.pop("python", None)
    return run


def _null_kernel_apply():
    """A python-substrate ``apply`` whose heavy kernels are free.

    Timing an analysis under it yields the *non-kernel floor*; the
    kernel time share is 1 - floor/total.  Results are garbage — the
    run is used for timing only.
    """
    real_apply = get_backend("python").apply
    one = BigFloat.from_float(1.0)

    def apply(op, args, context=None):
        if op in KERNEL_CACHE_OPERATIONS:
            return one
        return real_apply(op, args, context)

    return apply


def bench_kernel_unit_costs(repeat: int, min_sample_ms: float) -> Dict:
    """Per-call kernel cost at the shadow precision, per substrate."""
    context = Context(precision=SHADOW_PRECISION)
    python = get_backend("python")
    native = get_backend("native")
    x = BigFloat.from_float(1.2345678901234567)
    y = BigFloat.from_float(9.876543210987654)
    #: |x| < 1 general-path operand for the bounded-domain inverses.
    unit = BigFloat.from_float(0.7324081429644442)
    operands = {1: [x], 2: [x, y]}
    bounded = {"asin": [unit], "acos": [unit], "atanh": [unit],
               "acosh": [y], "log1p": [unit]}
    from repro.bigfloat.functions import arity

    table = {}
    for op in sorted(KERNEL_CACHE_OPERATIONS) + ["+", "*", "/", "sqrt"]:
        args = bounded.get(op, operands[min(2, arity(op))])
        t_py = _steady_seconds(
            lambda: python.apply(op, args, context), repeat, min_sample_ms
        )
        t_nat = _steady_seconds(
            lambda: native.apply(op, args, context), repeat, min_sample_ms
        )
        table[op] = {
            "python_us": round(t_py * 1e6, 2),
            "native_us": round(t_nat * 1e6, 2),
            "speedup": round(t_py / t_nat, 2),
        }
    return table


def kernel_bound_corpus(corpus) -> List:
    """Straight-line corpus benchmarks containing a library kernel."""
    selected = []
    for core in corpus:
        text = format_fpcore(core)
        if "(while" in text:
            continue
        if any(f"({op} " in text or f"({op})" in text
               for op in KERNEL_CACHE_OPERATIONS):
            selected.append(core)
    return selected


def bench_straightline(
    corpus,
    points: int,
    seed: int,
    repeat: int,
    min_sample_ms: float,
    share_threshold: float = 0.5,
) -> Tuple[Dict, Dict, Dict]:
    """(op-heavy suite, kernel-dominated corpus, all kernel-bound).

    The headline op-heavy suite is the synthetic dense-kernel set --
    op-heavy by construction, one chain per kernel family.  The two
    corpus tables put the same measurement on real benchmarks: ones
    whose measured kernel time share is at least ``share_threshold``
    (via a null-kernel floor run), and every kernel-containing
    straight-line benchmark, so nothing is curated away.
    """

    def timed(core, pts):
        t_python = _steady_seconds(
            _analysis_timer(core, pts, "python"), repeat, min_sample_ms
        )
        t_native = _steady_seconds(
            _analysis_timer(core, pts, "native"), repeat, min_sample_ms
        )
        return t_python, t_native

    def median_of(rows: Dict) -> Optional[float]:
        speedups = [row["speedup"] for row in rows.values()]
        return round(statistics.median(speedups), 2) if speedups else None

    null_apply = _null_kernel_apply()
    all_rows = {}
    for core in kernel_bound_corpus(corpus):
        pts = sample_inputs(core, points, seed=seed)
        t_python, t_native = timed(core, pts)
        t_floor = _steady_seconds(
            _analysis_timer(core, pts, "python", apply_override=null_apply),
            repeat, min_sample_ms,
        )
        share = max(0.0, 1.0 - t_floor / t_python) if t_python else 0.0
        all_rows[core.name] = {
            "python_ms": round(t_python * 1000, 3),
            "native_ms": round(t_native * 1000, 3),
            "kernel_time_share": round(share, 3),
            "speedup": round(t_python / t_native, 2),
        }
    synth_rows = {}
    for source in SYNTHETIC_SUITE:
        core = parse_fpcore(source)
        pts = sample_inputs(core, points, seed=seed)
        t_python, t_native = timed(core, pts)
        synth_rows[core.name] = {
            "python_ms": round(t_python * 1000, 3),
            "native_ms": round(t_native * 1000, 3),
            "speedup": round(t_python / t_native, 2),
        }
    headline = {
        "definition": (
            "synthetic straight-line programs dominated by library-"
            "kernel shadow evaluation, one dense chain per kernel "
            "family (including the exp family, the mpmath provider's "
            "weakest)"
        ),
        "members": synth_rows,
        "median_speedup": median_of(synth_rows),
    }
    dominated = {
        name: row for name, row in all_rows.items()
        if row["kernel_time_share"] >= share_threshold
    }
    corpus_dominated = {
        "definition": (
            "corpus straight-line benchmarks whose shadow-kernel "
            f"evaluation is >= {share_threshold:.0%} of analysis "
            "wall-clock under the python substrate (measured via a "
            "null-kernel floor run)"
        ),
        "members": dominated,
        "median_speedup": median_of(dominated),
    }
    secondary = {
        "definition": "every straight-line corpus benchmark containing "
                      "a library kernel (suite-selection transparency)",
        "members": all_rows,
        "median_speedup": median_of(all_rows),
    }
    return headline, corpus_dominated, secondary


def bench_kernel_cache(points: int, seed: int, repeat: int,
                       min_sample_ms: float) -> Dict:
    """Loop-invariant kernel memoization: hits and wall-clock win."""
    from repro.core.analysis import EngineFeatures

    rows = {}
    for source in CACHE_SUITE:
        core = parse_fpcore(source)
        pts = sample_inputs(core, points, seed=seed)
        program = compile_fpcore(core)
        config = AnalysisConfig(shadow_precision=SHADOW_PRECISION)
        with_cache = EngineFeatures.for_engine("compiled")
        without_cache = EngineFeatures(
            threaded_interpreter=True, trace_pool=True, fast_antiunify=True,
            kernel_cache=False,
        )
        analysis, __ = analyze_program(
            program, pts, config=config, features=with_cache
        )
        t_on = _steady_seconds(
            lambda: analyze_program(
                program, pts, config=config, features=with_cache
            ),
            repeat, min_sample_ms,
        )
        t_off = _steady_seconds(
            lambda: analyze_program(
                program, pts, config=config, features=without_cache
            ),
            repeat, min_sample_ms,
        )
        rows[core.name] = {
            "cache_hits": analysis.kernel_cache_hits,
            "cache_misses": analysis.kernel_cache_misses,
            "with_cache_ms": round(t_on * 1000, 3),
            "without_cache_ms": round(t_off * 1000, 3),
            "speedup": round(t_off / t_on, 2),
        }
    return rows


def bench_parity(corpus, points: int, seed: int) -> Dict:
    """Byte-identical reports across substrate x engine x policy."""
    combos = [
        (substrate, engine, policy)
        for substrate in ("python", "native")
        for engine in ("compiled", "reference")
        for policy in ("fixed", "adaptive")
    ]
    reference_json: Optional[str] = None
    checked = 0
    for substrate, engine, policy in combos:
        config = AnalysisConfig(
            substrate=substrate, engine=engine, precision_policy=policy
        )
        session = AnalysisSession(
            config=config, num_points=points, seed=seed, result_cache_size=0
        )
        text = results_to_json(session.analyze_batch(corpus, workers=1))
        if reference_json is None:
            reference_json = text
        elif text != reference_json:
            raise SystemExit(
                f"PARITY FAILURE: substrate={substrate} engine={engine} "
                f"policy={policy} diverged from the reference report"
            )
        checked += 1
    return {
        "combinations_checked": checked,
        "benchmarks": len(corpus),
        "points": points,
        "byte_identical": True,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=8)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--slice", type=int, default=0,
                        help="limit the parity corpus to N benchmarks "
                             "(0 = full corpus)")
    parser.add_argument("--parity-points", type=int, default=3)
    parser.add_argument("--min-sample-ms", type=float, default=5.0)
    parser.add_argument("--skip-unit-costs", action="store_true")
    parser.add_argument("--out", default="BENCH_bigfloat.json")
    args = parser.parse_args(argv)

    corpus = load_corpus()
    parity_corpus = corpus[: args.slice] if args.slice else corpus

    report = {
        "benchmark": "bigfloat-substrate",
        "shadow_precision": SHADOW_PRECISION,
        "native_provider": substrate_provider("native"),
        "config": {
            "points": args.points, "seed": args.seed,
            "repeat": args.repeat, "min_sample_ms": args.min_sample_ms,
        },
    }
    print(f"native substrate provider: {report['native_provider']}")

    print("parity gate "
          f"({len(parity_corpus)} benchmarks x 8 combinations)...")
    report["parity"] = bench_parity(
        parity_corpus, args.parity_points, args.seed
    )
    print("  byte-identical across all combinations")

    if not args.skip_unit_costs:
        print("kernel unit costs at 1000 bits...")
        report["kernel_unit_costs"] = bench_kernel_unit_costs(
            args.repeat, args.min_sample_ms
        )

    print("op-heavy straight-line suite...")
    headline, dominated, secondary = bench_straightline(
        corpus, args.points, args.seed, args.repeat, args.min_sample_ms
    )
    report["op_heavy_straightline"] = headline
    report["corpus_kernel_dominated"] = dominated
    report["all_kernel_bound"] = secondary
    print(f"  op-heavy suite median speedup: {headline['median_speedup']}x "
          f"({len(headline['members'])} members); kernel-dominated corpus "
          f"median: {dominated['median_speedup']}x "
          f"({len(dominated['members'])} members); all kernel-bound "
          f"median: {secondary['median_speedup']}x "
          f"({len(secondary['members'])} members)")

    print("kernel-result cache (loop-invariant kernels)...")
    report["kernel_cache"] = bench_kernel_cache(
        max(2, args.points // 2), args.seed, args.repeat, args.min_sample_ms
    )
    for name, row in report["kernel_cache"].items():
        print(f"  {name}: {row['cache_hits']} hits, "
              f"{row['speedup']}x with cache")

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
