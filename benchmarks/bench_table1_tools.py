"""Table 1: comparison of floating-point error detection tools.

Regenerates both halves of the paper's Table 1 on identical workloads:

* the feature matrix (what each tool can and cannot do), demonstrated
  operationally — each claim is backed by running the tool;
* the overhead row: wall-clock of each tool relative to the plain
  (uninstrumented) interpreter on the same programs.

Paper's overhead numbers: FpDebug 395x, BZ 7.91x, Verrou 7x,
Herbgrind 574x — measured against native hardware execution.  Our
baseline is already an interpreter, so ratios are compressed; the
*ordering* (BZ/Verrou cheap, FpDebug expensive, Herbgrind most
expensive) is the reproduction target.
"""

from __future__ import annotations

import time

from repro.api import AnalysisRequest, AnalysisSession, get_backend
from repro.comparisons.verrou import RandomRoundingTracer
from repro.fpcore import corpus_by_name
from repro.machine import Interpreter

from conftest import SWEEP_CONFIG, write_result

#: A representative workload: cancellation, library calls, branches.
WORKLOAD_NAMES = [
    "nmse-ex-3-1", "nmse-ex-3-7", "quadp", "doppler1", "sine-taylor",
    "logit", "paper-csqrt-imag",
]
POINTS_PER_BENCHMARK = 20


def _workload():
    """(request, program, points) triples via the repro.api session —
    all four tools run on identical compiled programs and inputs."""
    corpus = corpus_by_name()
    session = AnalysisSession(
        config=SWEEP_CONFIG, num_points=POINTS_PER_BENCHMARK, seed=3
    )
    triples = []
    for name in WORKLOAD_NAMES:
        core = corpus[name]
        request = AnalysisRequest.build(
            core, num_points=POINTS_PER_BENCHMARK, seed=3,
            config=SWEEP_CONFIG,
        )
        triples.append((request, session.compiled(core), session.sampled(core)))
    return triples


def _time_native(workload) -> float:
    start = time.perf_counter()
    for __, program, points in workload:
        for point in points:
            Interpreter(program).run(point)
    return time.perf_counter() - start


def _time_backend(workload, backend_name: str) -> float:
    backend = get_backend(backend_name)
    start = time.perf_counter()
    for request, program, points in workload:
        backend.run(program, points, request)
    return time.perf_counter() - start


def _time_verrou(workload) -> float:
    # Timed as a single perturbed execution per point (the Monte-Carlo
    # kernel) rather than the full 8-run stability protocol of the
    # ``verrou`` backend, matching the paper's per-run overhead row.
    import random

    start = time.perf_counter()
    for __, program, points in workload:
        for point in points:
            tracer = RandomRoundingTracer(random.Random(1))
            Interpreter(program, tracer=tracer).run(point)
    return time.perf_counter() - start


def test_table1_overhead_and_features(benchmark):
    workload = _workload()

    def experiment():
        native = _time_native(workload)
        rows = {
            "FpDebug": _time_backend(workload, "fpdebug") / native,
            "BZ": _time_backend(workload, "bz") / native,
            "Verrou": _time_verrou(workload) / native,
            "Herbgrind": _time_backend(workload, "herbgrind") / native,
        }
        return native, rows

    native, rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    paper = {"FpDebug": 395.0, "BZ": 7.91, "Verrou": 7.0, "Herbgrind": 574.0}
    lines = [
        "Table 1 — tool comparison (overhead vs uninstrumented interpreter)",
        f"native baseline: {native:.3f}s for"
        f" {len(WORKLOAD_NAMES)}x{POINTS_PER_BENCHMARK} runs",
        "",
        f"{'Tool':<10} {'ours':>8} {'paper':>8}",
    ]
    for tool in ("FpDebug", "BZ", "Verrou", "Herbgrind"):
        lines.append(f"{tool:<10} {rows[tool]:>7.1f}x {paper[tool]:>7.1f}x")
    lines += [
        "",
        "Feature matrix (each row verified by the tests in",
        "tests/comparisons and tests/core):",
        "  Shadow reals:        FpDebug yes, BZ no, Verrou no, Herbgrind yes",
        "  Local error:         only Herbgrind",
        "  Library abstraction: only Herbgrind",
        "  Output-sensitive:    only Herbgrind",
        "  Control divergence:  BZ and Herbgrind",
        "  Localization:        FpDebug opcode, BZ/Verrou none,"
        " Herbgrind abstracted fragment",
        "  Characterize inputs: only Herbgrind",
    ]
    write_result("table1_tools", "\n".join(lines))

    benchmark.extra_info.update(
        {f"overhead_{k.lower()}": round(v, 2) for k, v in rows.items()}
    )
    # Shape assertions: the cheap heuristics stay cheap; the shadow-real
    # tools cost more; Herbgrind is the most expensive.
    assert rows["BZ"] < rows["FpDebug"]
    assert rows["Verrou"] < rows["Herbgrind"]
    assert rows["Herbgrind"] >= rows["FpDebug"] * 0.8
