"""Table 1: comparison of floating-point error detection tools.

Regenerates both halves of the paper's Table 1 on identical workloads:

* the feature matrix (what each tool can and cannot do), demonstrated
  operationally — each claim is backed by running the tool;
* the overhead row: wall-clock of each tool relative to the plain
  (uninstrumented) interpreter on the same programs.

Paper's overhead numbers: FpDebug 395x, BZ 7.91x, Verrou 7x,
Herbgrind 574x — measured against native hardware execution.  Our
baseline is already an interpreter, so ratios are compressed; the
*ordering* (BZ/Verrou cheap, FpDebug expensive, Herbgrind most
expensive) is the reproduction target.
"""

from __future__ import annotations

import time

from repro.comparisons import run_bz, run_fpdebug, run_verrou
from repro.comparisons.verrou import RandomRoundingTracer
from repro.core import AnalysisConfig, analyze_program
from repro.fpcore import corpus_by_name
from repro.machine import Interpreter, compile_fpcore

from conftest import SWEEP_CONFIG, write_result

#: A representative workload: cancellation, library calls, branches.
WORKLOAD_NAMES = [
    "nmse-ex-3-1", "nmse-ex-3-7", "quadp", "doppler1", "sine-taylor",
    "logit", "paper-csqrt-imag",
]
POINTS_PER_BENCHMARK = 20


def _workload():
    corpus = corpus_by_name()
    programs = []
    for name in WORKLOAD_NAMES:
        core = corpus[name]
        from repro.core.driver import sample_inputs

        points = sample_inputs(core, POINTS_PER_BENCHMARK, seed=3)
        programs.append((name, compile_fpcore(core), points))
    return programs


def _time_native(workload) -> float:
    start = time.perf_counter()
    for __, program, points in workload:
        for point in points:
            Interpreter(program).run(point)
    return time.perf_counter() - start


def _time_herbgrind(workload) -> float:
    start = time.perf_counter()
    for __, program, points in workload:
        analyze_program(program, points, config=SWEEP_CONFIG)
    return time.perf_counter() - start


def _time_fpdebug(workload) -> float:
    start = time.perf_counter()
    for __, program, points in workload:
        run_fpdebug(program, points, precision=256)
    return time.perf_counter() - start


def _time_verrou(workload) -> float:
    import random

    start = time.perf_counter()
    for __, program, points in workload:
        for point in points:
            tracer = RandomRoundingTracer(random.Random(1))
            Interpreter(program, tracer=tracer).run(point)
    return time.perf_counter() - start


def _time_bz(workload) -> float:
    start = time.perf_counter()
    for __, program, points in workload:
        run_bz(program, points)
    return time.perf_counter() - start


def test_table1_overhead_and_features(benchmark):
    workload = _workload()

    def experiment():
        native = _time_native(workload)
        rows = {
            "FpDebug": _time_fpdebug(workload) / native,
            "BZ": _time_bz(workload) / native,
            "Verrou": _time_verrou(workload) / native,
            "Herbgrind": _time_herbgrind(workload) / native,
        }
        return native, rows

    native, rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    paper = {"FpDebug": 395.0, "BZ": 7.91, "Verrou": 7.0, "Herbgrind": 574.0}
    lines = [
        "Table 1 — tool comparison (overhead vs uninstrumented interpreter)",
        f"native baseline: {native:.3f}s for"
        f" {len(WORKLOAD_NAMES)}x{POINTS_PER_BENCHMARK} runs",
        "",
        f"{'Tool':<10} {'ours':>8} {'paper':>8}",
    ]
    for tool in ("FpDebug", "BZ", "Verrou", "Herbgrind"):
        lines.append(f"{tool:<10} {rows[tool]:>7.1f}x {paper[tool]:>7.1f}x")
    lines += [
        "",
        "Feature matrix (each row verified by the tests in",
        "tests/comparisons and tests/core):",
        "  Shadow reals:        FpDebug yes, BZ no, Verrou no, Herbgrind yes",
        "  Local error:         only Herbgrind",
        "  Library abstraction: only Herbgrind",
        "  Output-sensitive:    only Herbgrind",
        "  Control divergence:  BZ and Herbgrind",
        "  Localization:        FpDebug opcode, BZ/Verrou none,"
        " Herbgrind abstracted fragment",
        "  Characterize inputs: only Herbgrind",
    ]
    write_result("table1_tools", "\n".join(lines))

    benchmark.extra_info.update(
        {f"overhead_{k.lower()}": round(v, 2) for k, v in rows.items()}
    )
    # Shape assertions: the cheap heuristics stay cheap; the shadow-real
    # tools cost more; Herbgrind is the most expensive.
    assert rows["BZ"] < rows["FpDebug"]
    assert rows["Verrou"] < rows["Herbgrind"]
    assert rows["Herbgrind"] >= rows["FpDebug"] * 0.8
