"""Section 8.3: compensation detection on Triangle's predicates.

The paper runs Herbgrind on Shewchuk's Triangle and finds the
compensation detector handles all but 14 of 225 compensating terms with
local error; the 14 misses are terms that flow into *control flow*
(the adaptive predicates' error-bound and tail tests), where the
real-number shadow of a compensating term — exactly 0 — sends branches
"the wrong way".
"""

from __future__ import annotations

from repro.apps.triangle import run_triangle_study

from conftest import SWEEP_CONFIG, write_result


def test_sec83_compensation(benchmark):
    def experiment():
        with_detection = run_triangle_study(
            num_generic=16, num_degenerate=16, config=SWEEP_CONFIG
        )
        without_detection = run_triangle_study(
            num_generic=16, num_degenerate=16, config=SWEEP_CONFIG,
            detect_compensation=False,
        )
        return with_detection, without_detection

    study, without = benchmark.pedantic(experiment, rounds=1, iterations=1)

    detected = study.compensations_detected
    misses = study.control_flow_misses
    lines = [
        "Section 8.3 — compensating-term handling on Triangle's orient2d",
        "(32 point triples: generic + near-degenerate)",
        "",
        f"{'metric':<44}{'ours':>7}{'paper':>9}",
        f"{'compensating terms handled':<44}{detected:>7}{'211/225':>9}",
        f"{'missed via control flow (divergences)':<44}{misses:>7}{14:>9}",
        f"{'compensating operation sites':<44}{study.compensating_sites:>7}"
        f"{'—':>9}",
        f"{'handled without detection enabled':<44}"
        f"{without.compensations_detected:>7}{'0':>9}",
        "",
        "(the misses are the tail == 0 branches of the adaptive stage:",
        " the real shadow of a compensating term is exactly 0, so the",
        " real path and float path disagree — undetectable by design,",
        " but 'easy to check in the Triangle source' per the paper)",
    ]
    write_result("sec83_compensation", "\n".join(lines))

    benchmark.extra_info.update(
        {"compensations": detected, "control_flow_misses": misses}
    )
    assert detected > 100
    assert misses > 0
    assert misses < 0.2 * detected  # misses are the small minority
    assert without.compensations_detected == 0
