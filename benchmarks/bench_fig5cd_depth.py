"""Figures 5c and 5d: effect of the maximum expression depth.

The paper varies the maximum depth of tracked expressions and measures
(5c) runtime and (5d) benchmarks improved.  Depth 1 "effectively
disables symbolic expression tracking, and only reports the operation
where error is detected, much like FpDebug" — faster, but none of the
resulting single-op expressions are significantly improvable.
"""

from __future__ import annotations

import time

from repro.eval import evaluate_suite

from conftest import SWEEP_CONFIG, SWEEP_SETTINGS, write_result

DEPTHS = [1, 2, 3, 5, 10, 20]


def test_fig5cd_depth_sweep(benchmark, sweep_corpus):
    def experiment():
        rows = {}
        for depth in DEPTHS:
            config = SWEEP_CONFIG.with_(max_expression_depth=depth)
            start = time.perf_counter()
            summary = evaluate_suite(
                sweep_corpus, config=config, num_points=10,
                settings=SWEEP_SETTINGS,
            )
            elapsed = time.perf_counter() - start
            rows[depth] = (
                elapsed,
                summary.herbgrind_improvable,
                summary.oracle_erroneous,
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        "Figures 5c/5d — runtime and improvability vs max expression depth",
        f"({len(sweep_corpus)} benchmarks)",
        "",
        f"{'depth':>6} {'runtime (s)':>12} {'improved':>9} {'erroneous':>10}",
    ]
    for depth in DEPTHS:
        elapsed, improved, erroneous = rows[depth]
        lines.append(
            f"{depth:>6} {elapsed:>12.1f} {improved:>9} {erroneous:>10}"
        )
    lines += [
        "",
        "(paper Figure 5c: deeper tracking costs more; Figure 5d: at",
        " depth 1 'none of the expressions produced are significantly",
        " improvable'; improvability saturates after a modest depth)",
    ]
    write_result("fig5cd_depth", "\n".join(lines))

    benchmark.extra_info.update(
        {f"improved_depth_{d}": rows[d][1] for d in DEPTHS}
    )
    # Shape assertions: depth-1 improvability is far below the deepest
    # configuration; improvability grows then saturates.
    deepest = rows[DEPTHS[-1]][1]
    assert rows[1][1] <= 0.5 * max(1, deepest)
    assert rows[5][1] >= 0.8 * deepest
