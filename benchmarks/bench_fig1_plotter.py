"""Figure 1 + the Section 3 report: the complex plotter, before/after.

The paper plots 795x600 = 477,000 pixels and reports

    Compare @ main.cpp:24 ... 231878 incorrect values of 477000

with the extracted fragment ``(- (sqrt (+ (* x x) (* y y))) x)``.  We
plot a scaled-down grid (the interpreter is ~10^4x slower than native
code), assert the same extraction, and report the incorrect-pixel
fraction before and after the Herbie-derived csqrt repair.
"""

from __future__ import annotations

from repro.apps.plotter import run_plotter
from repro.core import AnalysisConfig
from repro.fpcore.printer import format_expr

from conftest import write_result

WIDTH, HEIGHT = 44, 33  # 1452 pixels; paper: 795x600


def test_fig1_plotter_before_after(benchmark):
    config = AnalysisConfig(shadow_precision=256, max_expression_depth=4)

    def experiment():
        naive = run_plotter(width=WIDTH, height=HEIGHT, config=config)
        fixed = run_plotter(
            width=WIDTH, height=HEIGHT, fixed=True, config=config
        )
        return naive, fixed

    naive, fixed = benchmark.pedantic(experiment, rounds=1, iterations=1)

    causes = naive.analysis.reported_root_causes()
    fragments = [format_expr(c.symbolic_expression) for c in causes]
    headline = [
        f for f in fragments if f.startswith("(- (sqrt (+ (*")
    ]
    lines = [
        "Figure 1 / Section 3 — complex plotter case study",
        f"grid: {WIDTH}x{HEIGHT} = {naive.total_pixels} pixels"
        " (paper: 795x600 = 477000)",
        "",
        f"naive csqrt:  {naive.incorrect_pixels} incorrect values of"
        f" {naive.total_pixels}"
        f" ({naive.incorrect_pixels / naive.total_pixels:.0%};"
        " paper: 231878/477000 = 49%)",
        f"fixed csqrt:  {fixed.incorrect_pixels} incorrect values of"
        f" {fixed.total_pixels}"
        f" ({fixed.incorrect_pixels / fixed.total_pixels:.0%})",
        "",
        "extracted root-cause fragment (paper: (- (sqrt (+ (* x x) (* y y))) x)):",
        f"  {headline[0] if headline else fragments[:1]}",
    ]
    write_result("fig1_plotter", "\n".join(lines))

    benchmark.extra_info["incorrect_before"] = naive.incorrect_pixels
    benchmark.extra_info["incorrect_after"] = fixed.incorrect_pixels
    assert naive.incorrect_pixels > 0
    assert fixed.incorrect_pixels < naive.incorrect_pixels
    assert headline, fragments
