#!/usr/bin/env python3
"""Static-analysis cost and agreement benchmark → ``BENCH_static.json``.

Measures the interval/condition-number static pass
(:mod:`repro.staticanalysis`) against the dynamic shadow analysis it
rides along with, and gates on the properties the subsystem promises:

* **Cost** — full-corpus ``lint`` (compile + fixpoint + diagnostics
  for all 86 benchmarks) must take **< 10%** of one cold dynamic
  corpus analysis at the same precision/point count.  The static pass
  exists to be cheap enough to run on every analysis by default.
* **Agreement** — every dynamically flagged root-cause location must
  be statically ranked (score above the dynamic threshold Tℓ), up to
  the small allowlist of interval-domain limitations shared with
  ``tests/staticanalysis/test_agreement.py``.  The fraction is
  recorded and gated at ``--min-agreement`` (default 0.80).
* **Determinism** — two lint sweeps must produce byte-identical
  diagnostics (the CI snapshot job depends on it).

Usage::

    PYTHONPATH=src python benchmarks/bench_static.py \
        [--points 8] [--precision 256] [--repeat 2] \
        [--min-agreement 0.8] [--out BENCH_static.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.api import AnalysisSession
from repro.core import AnalysisConfig
from repro.fpcore import load_corpus
from repro.staticanalysis import cross_check, lint_core, static_report


def lint_sweep(corpus):
    """One full-corpus lint; returns (wall seconds, diagnostics-dict)."""
    start = time.perf_counter()
    diagnostics = {
        core.name: [d.to_dict() for d in lint_core(core)] for core in corpus
    }
    return time.perf_counter() - start, diagnostics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=8)
    parser.add_argument("--precision", type=int, default=256)
    parser.add_argument("--repeat", type=int, default=2,
                        help="lint sweeps (fastest wins; also checks "
                             "byte-determinism across sweeps)")
    parser.add_argument("--min-agreement", type=float, default=0.80)
    parser.add_argument("--out", default="BENCH_static.json")
    args = parser.parse_args(argv)

    corpus = load_corpus()

    # --- static cost + determinism ---------------------------------
    sweeps = [lint_sweep(corpus) for __ in range(max(1, args.repeat))]
    static_seconds = min(seconds for seconds, __ in sweeps)
    deterministic = all(
        json.dumps(diags, sort_keys=True)
        == json.dumps(sweeps[0][1], sort_keys=True)
        for __, diags in sweeps[1:]
    )

    # --- cold dynamic corpus analysis ------------------------------
    session = AnalysisSession(
        config=AnalysisConfig(shadow_precision=args.precision),
        num_points=args.points,
        seed=0,
    )
    start = time.perf_counter()
    results = session.analyze_batch(corpus)
    dynamic_seconds = time.perf_counter() - start

    # --- static-vs-dynamic agreement -------------------------------
    matched = 0
    missed = []
    for core, result in zip(corpus, results):
        dynamic_locs = sorted({c.loc for c in result.root_causes if c.loc})
        if not dynamic_locs:
            continue
        report = result.extra.get("static")
        if report is None:  # REPRO_STATIC=0 or attach failure
            report = static_report(core=core)
            cross_check(
                report,
                [
                    type("Rec", (), {"loc": loc, "max_local_error": 0.0})()
                    for loc in dynamic_locs
                ],
            )
        agreement = report.agreement
        matched += len(agreement["matched"])
        missed.extend(
            {"benchmark": core.name, **miss} for miss in agreement["missed"]
        )
    dynamic_sites = matched + len(missed)
    fraction = 1.0 if dynamic_sites == 0 else matched / dynamic_sites

    flagged = sum(1 for __, diags in (sweeps[0],) for d in diags.values() if d)
    report = {
        "corpus_size": len(corpus),
        "programs_flagged": flagged,
        "static_seconds": static_seconds,
        "dynamic_seconds": dynamic_seconds,
        "static_fraction_of_dynamic": static_seconds / dynamic_seconds,
        "deterministic": deterministic,
        "agreement": {
            "dynamic_sites": dynamic_sites,
            "matched": matched,
            "missed": missed,
            "fraction": fraction,
        },
        "points": args.points,
        "precision": args.precision,
    }

    failures = []
    if report["static_fraction_of_dynamic"] >= 0.10:
        failures.append(
            f"full-corpus lint took "
            f"{report['static_fraction_of_dynamic'] * 100:.1f}% of the "
            "cold dynamic analysis (budget: < 10%)"
        )
    if not deterministic:
        failures.append("lint sweeps are not byte-identical")
    if fraction < args.min_agreement:
        failures.append(
            f"static-dynamic agreement {fraction:.1%} below "
            f"{args.min_agreement:.0%}"
        )

    report["failures"] = failures
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {args.out}; lint {static_seconds:.2f}s vs dynamic "
        f"{dynamic_seconds:.2f}s "
        f"({report['static_fraction_of_dynamic'] * 100:.1f}%), "
        f"agreement {fraction:.1%}"
    )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
