"""Micro-benchmarks of the substrates (proper multi-round timings).

Not a paper table, but the numbers behind the overhead story: cost of
1000-bit shadow arithmetic, of the interpreter, and of one fully
analysed operation.
"""

from __future__ import annotations

from repro.bigfloat import BigFloat, Context, apply
from repro.core import AnalysisConfig, analyze_program
from repro.fpcore import parse_fpcore
from repro.machine import Interpreter, compile_fpcore

PAPER_CONTEXT = Context(precision=1000)
X = BigFloat.from_float(1.2345678901234567)
Y = BigFloat.from_float(9.876543210987654)

PROGRAM = compile_fpcore(
    parse_fpcore("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))")
)


def bench_bigfloat_mul_1000_bits(benchmark):
    benchmark(apply, "*", [X, Y], PAPER_CONTEXT)


def bench_bigfloat_div_1000_bits(benchmark):
    benchmark(apply, "/", [X, Y], PAPER_CONTEXT)


def bench_bigfloat_exp_1000_bits(benchmark):
    benchmark(apply, "exp", [X], PAPER_CONTEXT)


def bench_bigfloat_sin_1000_bits(benchmark):
    benchmark(apply, "sin", [X], PAPER_CONTEXT)


def bench_interpreter_native_run(benchmark):
    benchmark(lambda: Interpreter(PROGRAM).run([2.5]))


def bench_full_analysis_run(benchmark):
    config = AnalysisConfig(shadow_precision=256)

    def run():
        analyze_program(PROGRAM, [[2.5]], config=config)

    benchmark(run)


def bench_full_analysis_run_paper_precision(benchmark):
    config = AnalysisConfig(shadow_precision=1000)

    def run():
        analyze_program(PROGRAM, [[2.5]], config=config)

    benchmark(run)
