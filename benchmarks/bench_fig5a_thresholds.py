"""Figure 5a: number of computations flagged vs local-error threshold.

The paper sweeps the Tℓ threshold of the influences system and counts
how many computations are marked "significantly erroneous".  Higher
thresholds flag fewer computations (monotone decreasing curve); users
pick the threshold to trade thoroughness against report volume.
"""

from __future__ import annotations

from repro.api import AnalysisSession

from conftest import SWEEP_CONFIG, write_result

THRESHOLDS = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]


def test_fig5a_threshold_sweep(benchmark, sweep_corpus):
    # One session across the sweep: programs and sampled inputs are
    # compiled/drawn once and reused for all eight thresholds.
    session = AnalysisSession(config=SWEEP_CONFIG, num_points=8, seed=5)

    def experiment():
        flagged_by_threshold = {}
        for threshold in THRESHOLDS:
            config = SWEEP_CONFIG.with_(local_error_threshold=threshold)
            total_flagged = 0
            total_reported = 0
            for core in sweep_corpus:
                analysis = session.analyze(core, config=config).raw
                total_flagged += len(analysis.candidate_records())
                total_reported += len(analysis.reported_root_causes())
            flagged_by_threshold[threshold] = (total_flagged, total_reported)
        return flagged_by_threshold

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        "Figure 5a — computations flagged vs local-error threshold",
        f"({len(sweep_corpus)} benchmarks x 8 points)",
        "",
        f"{'threshold (bits)':>16} {'flagged ops':>12} {'reported':>9}",
    ]
    for threshold in THRESHOLDS:
        flagged, reported = results[threshold]
        lines.append(f"{threshold:>16.1f} {flagged:>12} {reported:>9}")
    lines.append("")
    lines.append("(monotone decreasing, as in the paper's Figure 5a)")
    write_result("fig5a_thresholds", "\n".join(lines))

    counts = [results[t][0] for t in THRESHOLDS]
    benchmark.extra_info["flagged_counts"] = counts
    assert counts == sorted(counts, reverse=True)
    assert counts[0] > counts[-1]
