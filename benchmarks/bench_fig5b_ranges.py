"""Figure 5b: benchmarks improved vs input-characteristics kind.

The paper compares improvability with ranges off, a single range, and
sign-split ranges, finding little difference *on the FPBench
micro-benchmarks* ("this could be due to the fact that these programs
are small micro-benchmarks") — while the case studies (e.g. baz's
x~113 pole) show characteristics matter on real code.  We reproduce
the sweep; our corpus includes pole-adjacent benchmarks, so a modest
benefit for ranges over 'none' is the expected shape.
"""

from __future__ import annotations

from repro.core.config import (
    CHARACTERISTICS_NONE,
    CHARACTERISTICS_RANGE,
    CHARACTERISTICS_REPRESENTATIVE,
    CHARACTERISTICS_SIGN_SPLIT,
)
from repro.eval import evaluate_suite

from conftest import SWEEP_CONFIG, SWEEP_SETTINGS, write_result

KINDS = [
    CHARACTERISTICS_NONE,
    CHARACTERISTICS_REPRESENTATIVE,
    CHARACTERISTICS_RANGE,
    CHARACTERISTICS_SIGN_SPLIT,
]


def test_fig5b_characteristics_sweep(benchmark, sweep_corpus):
    def experiment():
        improved = {}
        for kind in KINDS:
            config = SWEEP_CONFIG.with_(input_characteristics=kind)
            summary = evaluate_suite(
                sweep_corpus, config=config, num_points=10,
                settings=SWEEP_SETTINGS,
            )
            improved[kind] = (
                summary.herbgrind_improvable,
                summary.oracle_erroneous,
            )
        return improved

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        "Figure 5b — benchmarks improved vs input-characteristic kind",
        f"({len(sweep_corpus)} benchmarks)",
        "",
        f"{'characteristics':<18} {'improved':>9} {'erroneous':>10}",
    ]
    for kind in KINDS:
        improved, erroneous = results[kind]
        lines.append(f"{kind:<18} {improved:>9} {erroneous:>10}")
    lines += [
        "",
        "(paper: differences small on micro-benchmarks; ranges matter on",
        " non-uniform real code like the baz example — see",
        " examples/improve_with_ranges.py)",
    ]
    write_result("fig5b_ranges", "\n".join(lines))

    benchmark.extra_info.update(
        {kind: results[kind][0] for kind in KINDS}
    )
    # Shape: characteristics never hurt badly, sign-split at least ties
    # the blind configuration.
    assert results[CHARACTERISTICS_SIGN_SPLIT][0] >= results[CHARACTERISTICS_NONE][0]
