"""Section 8.1: the improvability evaluation over the 86-benchmark suite.

Paper's numbers (different corpus instantiation, so shape not absolute
values is the target):

* oracle finds 30 of 86 with significant error (> 5 bits);
* Herbgrind detects significant error for 29 of those (96%);
* Herbgrind produces candidate root causes for 29;
* Herbie finds the candidates improvable for 25 (86% / 83% end-to-end).

Shape target: Herbgrind detects (nearly) everything the oracle flags,
reports candidates for almost all of them, and a large majority are
improvable end to end.
"""

from __future__ import annotations

from repro.eval import evaluate_suite

from conftest import SWEEP_CONFIG, SWEEP_SETTINGS, write_result


def test_sec81_improvability(benchmark, corpus):
    def experiment():
        return evaluate_suite(
            corpus, config=SWEEP_CONFIG, num_points=12, settings=SWEEP_SETTINGS
        )

    summary = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        "Section 8.1 — improvability over the benchmark suite",
        "",
        f"{'quantity':<42}{'ours':>6}{'paper':>8}",
        f"{'benchmarks':<42}{summary.total:>6}{86:>8}",
        f"{'oracle: significant error (>5 bits)':<42}"
        f"{summary.oracle_erroneous:>6}{30:>8}",
        f"{'oracle: improvable':<42}{summary.oracle_improvable:>6}{30:>8}",
        f"{'herbgrind: detected (of erroneous)':<42}"
        f"{summary.herbgrind_detected:>6}{29:>8}",
        f"{'herbgrind: candidates reported':<42}"
        f"{summary.herbgrind_reported:>6}{29:>8}",
        f"{'herbgrind: improvable end-to-end':<42}"
        f"{summary.herbgrind_improvable:>6}{25:>8}",
        "",
        f"end-to-end success rate: {summary.end_to_end_rate():.0%}"
        f" (paper: 83%)",
        "",
        "per-benchmark outcomes (erroneous only):",
    ]
    for outcome in summary.outcomes:
        if not outcome.oracle.has_significant_error:
            continue
        improvement = outcome.best_improvement
        delta = (
            f"{improvement.initial_error:5.1f} -> {improvement.best_error:5.1f}"
            if improvement is not None else "    -"
        )
        lines.append(
            f"  {outcome.name:<28} detected={str(outcome.herbgrind_detected):<5}"
            f" causes={outcome.reported_count:<3} {delta}"
        )
    write_result("sec81_improvability", "\n".join(lines))

    benchmark.extra_info.update(
        {
            "oracle_erroneous": summary.oracle_erroneous,
            "herbgrind_detected": summary.herbgrind_detected,
            "herbgrind_improvable": summary.herbgrind_improvable,
        }
    )
    # Shape assertions.
    assert summary.oracle_erroneous >= 20
    assert summary.herbgrind_detected >= 0.9 * summary.oracle_erroneous
    assert summary.herbgrind_reported >= 0.85 * summary.oracle_erroneous
    assert summary.herbgrind_improvable >= 0.6 * summary.oracle_erroneous
