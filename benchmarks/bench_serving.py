"""Serving-subsystem benchmark: seeded traffic replay over HTTP.

Measures what the ``repro.serve`` subsystem adds on top of raw
analysis — warm-path latency, in-flight dedupe, batch sharding — and
gates on what it must preserve: byte-identical results.

Sections (all recorded in ``BENCH_serving.json``):

* **Warm vs cold latency** — per-request wall clock for first-touch
  (cold: full analysis through the worker pool) and repeat requests
  (warm: memory LRU / sharded store) over a corpus slice.  Reported
  as p50/p99; gated: warm p50 must be at most 5% of cold p50 — the
  point of a result store is that repeats cost I/O, not analysis.
* **Traffic replay** — a seeded request mix at a configurable
  hit ratio replayed through one keep-alive client, the serving
  analogue of re-running a corpus: total wall, requests/sec, and the
  server's own hit/miss/computed counters.
* **Dedupe effectiveness** — N concurrent identical cold requests
  from N clients; gated: the server computes exactly once.
* **Batch throughput** — one ``/v1/batch`` of fresh requests sharded
  over the pool with work-stealing; requests/sec and shard count.
* **Parity gate** — every served body byte-identical to
  ``AnalysisSession.analyze(request).to_json()`` in-process; the
  benchmark *fails* on any mismatch.

Usage:
    PYTHONPATH=src python benchmarks/bench_serving.py \
        [--slice 6] [--warm-reps 20] [--replay 60] [--hit-ratio 0.7] \
        [--dedupe-clients 8] [--batch 12] [--workers 2] \
        [--precision 256] [--points 3] [--seed 7] \
        [--out BENCH_serving.json]

CI runs a small-budget smoke subset; the checked-in BENCH_serving.json
comes from a full local run.
"""

from __future__ import annotations

import argparse
import asyncio
import concurrent.futures
import json
import shutil
import statistics
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.api import AnalysisSession, request_digest
from repro.api.store import ShardedResultStore
from repro.core import AnalysisConfig
from repro.fpcore import load_corpus
from repro.serve import AnalysisService, ReproServer, ServeClient


class _BenchServer:
    """A live server on a background event-loop thread."""

    def __init__(self, store_dir: str, workers: int) -> None:
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None
        self._store_dir = store_dir
        self._workers = workers
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._amain()), daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60)
        if self.error is not None:
            raise self.error
        if self.port is None:
            raise RuntimeError("benchmark server did not start")

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            service = AnalysisService(
                store=ShardedResultStore(self._store_dir),
                workers=self._workers,
            )
            server = ReproServer(service)
            _, self.port = await server.start()
        except BaseException as exc:  # noqa: BLE001 — report, don't hang
            self.error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await server.stop(drain=True)

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=120)

    def client(self) -> ServeClient:
        return ServeClient(port=self.port)


def _percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; robust for small sample counts."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _latency_summary(samples: Sequence[float]) -> Dict[str, float]:
    return {
        "samples": len(samples),
        "p50_ms": round(_percentile(samples, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1e3, 3),
        "mean_ms": round(statistics.fmean(samples) * 1e3, 3),
    }


def _select_slice(session: AnalysisSession, size: int):
    """The ``size`` most expensive corpus benchmarks that analyze
    cleanly.

    Serving exists for analyses whose cost dwarfs an HTTP round trip
    (the loop benchmarks run for hundreds of milliseconds at the
    paper's 1000-bit shadow precision), so the latency gate measures
    that regime; trivial 1ms cores would gate the HTTP stack instead.
    """
    probe = AnalysisSession(
        config=session.config, num_points=session.num_points,
        seed=session.seed, result_cache_size=0,
    )
    timed = []
    for core in load_corpus():
        request = probe.request(core)
        start = time.perf_counter()
        try:
            probe.analyze(request)
        except Exception:  # noqa: BLE001 — skip cores the backend rejects
            continue
        timed.append((time.perf_counter() - start, request))
    timed.sort(key=lambda pair: -pair[0])
    return [request for _, request in timed[:size]]


def bench_latency(client: ServeClient, requests, warm_reps: int):
    cold, warm = [], []
    for request in requests:
        start = time.perf_counter()
        reply = client.analyze(request)
        cold.append(time.perf_counter() - start)
        assert reply.source == "computed", reply.source
        for _ in range(warm_reps):
            start = time.perf_counter()
            reply = client.analyze(request)
            warm.append(time.perf_counter() - start)
            assert reply.source in ("memory", "store"), reply.source
    cold_summary = _latency_summary(cold)
    warm_summary = _latency_summary(warm)
    ratio = warm_summary["p50_ms"] / max(cold_summary["p50_ms"], 1e-9)
    return {
        "cold": cold_summary,
        "warm": warm_summary,
        "warm_over_cold_p50": round(ratio, 5),
        "gate_limit": 0.05,
        "passed": ratio <= 0.05,
    }


def bench_replay(client: ServeClient, session, requests, length: int,
                 hit_ratio: float, seed: int):
    """A seeded mix of repeats and fresh requests through one client."""
    import random

    rng = random.Random(seed)
    sent = list(requests)  # the latency section already warmed these
    before = client.stats()["service"]
    latencies = []
    fresh_seed = 1000
    wall_start = time.perf_counter()
    for _ in range(length):
        if sent and rng.random() < hit_ratio:
            request = rng.choice(sent)
        else:
            fresh_seed += 1
            request = session.request(
                rng.choice(requests).core, seed=fresh_seed
            )
            sent.append(request)
        start = time.perf_counter()
        client.analyze(request)
        latencies.append(time.perf_counter() - start)
    wall = time.perf_counter() - wall_start
    after = client.stats()["service"]
    return {
        "length": length,
        "hit_ratio": hit_ratio,
        "wall_seconds": round(wall, 3),
        "requests_per_second": round(length / wall, 1),
        "latency": _latency_summary(latencies),
        "served": {
            key: after[key] - before[key]
            for key in ("computed", "memory_hits", "store_hits",
                        "dedupe_hits")
        },
    }


def bench_dedupe(server: _BenchServer, session, template, clients: int):
    """N concurrent identical cold requests must compute exactly once."""
    request = session.request(template.core, seed=31337)
    barrier = threading.Barrier(clients)

    def fire():
        with server.client() as client:
            barrier.wait()
            return client.analyze(request).source

    with server.client() as client:
        before = client.stats()["service"]
    with concurrent.futures.ThreadPoolExecutor(clients) as executor:
        sources = list(executor.map(lambda _: fire(), range(clients)))
    with server.client() as client:
        after = client.stats()["service"]
    computed = after["computed"] - before["computed"]
    return {
        "clients": clients,
        "computed": computed,
        "dedupe_hits": after["dedupe_hits"] - before["dedupe_hits"],
        "sources": sorted(sources),
        "passed": computed == 1,
    }


def bench_batch(client: ServeClient, session, requests, size: int,
                shard_size: int):
    """One cold /v1/batch sharded across the pool."""
    batch = [
        session.request(requests[i % len(requests)].core, seed=5000 + i)
        for i in range(size)
    ]
    start = time.perf_counter()
    envelope = client.batch(batch, shard_size=shard_size)
    wall = time.perf_counter() - start
    return {
        "size": size,
        "shard_size": shard_size,
        "errors": envelope["errors"],
        "wall_seconds": round(wall, 3),
        "requests_per_second": round(size / wall, 1),
    }


def parity_gate(client: ServeClient, session, requests):
    """Served bytes must equal the in-process serialization."""
    failures: List[str] = []
    for request in requests:
        expected = session.analyze(request).to_json()
        served = client.analyze(request).text
        if served != expected:
            failures.append(request_digest(request))
    return {"checked": len(requests), "failures": failures,
            "identical": not failures}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--slice", type=int, default=6,
                        help="corpus benchmarks in the serving slice "
                             "(the slowest ones, by a probe run)")
    parser.add_argument("--warm-reps", type=int, default=20,
                        help="warm repetitions per benchmark")
    parser.add_argument("--replay", type=int, default=60,
                        help="requests in the seeded traffic replay")
    parser.add_argument("--hit-ratio", type=float, default=0.7,
                        help="replay probability of repeating a request")
    parser.add_argument("--dedupe-clients", type=int, default=8)
    parser.add_argument("--batch", type=int, default=12,
                        help="requests in the cold batch")
    parser.add_argument("--shard-size", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--precision", type=int, default=1000,
                        help="shadow precision for the serving slice "
                             "(default: the paper's 1000 bits)")
    parser.add_argument("--points", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)

    config = AnalysisConfig(shadow_precision=args.precision)
    session = AnalysisSession(
        config=config, num_points=args.points, seed=args.seed
    )
    requests = _select_slice(session, args.slice)
    print(f"serving slice: {len(requests)} corpus benchmarks, "
          f"precision={args.precision}, points={args.points}")

    store_dir = tempfile.mkdtemp(prefix="bench-serving-")
    server = _BenchServer(store_dir, args.workers)
    report = {
        "schema_version": 1,
        "settings": {
            "slice": [r.name for r in requests],
            "warm_reps": args.warm_reps,
            "replay": args.replay,
            "hit_ratio": args.hit_ratio,
            "dedupe_clients": args.dedupe_clients,
            "batch": args.batch,
            "batch_shard_size": args.shard_size,
            "workers": args.workers,
            "shadow_precision": args.precision,
            "points": args.points,
            "seed": args.seed,
        },
    }
    failures: List[str] = []
    try:
        client = server.client()
        report["latency"] = bench_latency(client, requests,
                                          args.warm_reps)
        lat = report["latency"]
        print(f"latency: cold p50 {lat['cold']['p50_ms']}ms, "
              f"warm p50 {lat['warm']['p50_ms']}ms "
              f"(ratio {lat['warm_over_cold_p50']})")
        if not lat["passed"]:
            failures.append("warm_p50_gate")

        report["replay"] = bench_replay(
            client, session, requests, args.replay, args.hit_ratio,
            args.seed,
        )
        print(f"replay: {report['replay']['requests_per_second']} req/s "
              f"over {args.replay} requests "
              f"(served: {report['replay']['served']})")

        report["dedupe"] = bench_dedupe(
            server, session, requests[0], args.dedupe_clients
        )
        print(f"dedupe: {report['dedupe']['clients']} clients -> "
              f"{report['dedupe']['computed']} computation(s)")
        if not report["dedupe"]["passed"]:
            failures.append("dedupe_gate")

        report["batch"] = bench_batch(
            client, session, requests, args.batch, args.shard_size
        )
        print(f"batch: {report['batch']['requests_per_second']} req/s "
              f"({args.batch} cold requests, "
              f"shard_size={args.shard_size})")

        report["parity"] = parity_gate(client, session, requests)
        print(f"parity: {report['parity']['checked']} benchmarks, "
              f"identical={report['parity']['identical']}")
        if not report["parity"]["identical"]:
            failures.append("parity_gate")

        report["server_stats"] = client.stats()
        client.close()
    finally:
        server.stop()
        shutil.rmtree(store_dir, ignore_errors=True)

    report["failures"] = failures
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}" + (f"; FAILED: {failures}" if failures
                                 else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
